//! `streamlin` — linear analysis and optimization of stream programs.
//!
//! A from-scratch Rust reproduction of *Linear Analysis and Optimization of
//! Stream Programs* (Lamb, MEng thesis, MIT 2003; PLDI 2003 with Thies and
//! Amarasinghe): a StreamIt-dialect frontend, the linear extraction
//! analysis, the combination/frequency/redundancy transformations, the
//! automatic optimization selector, an instrumented execution engine, the
//! paper's nine-benchmark suite, and a harness that regenerates every table
//! and figure of its evaluation.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`lang`] | `streamlin-lang` | lexer, parser, AST |
//! | [`graph`] | `streamlin-graph` | elaboration, stream IR, steady-state rates |
//! | [`core`] | `streamlin-core` | extraction, combination, frequency, redundancy, selection |
//! | [`runtime`] | `streamlin-runtime` | flattening, execution engine, profiling |
//! | [`service`] | `streamlin-service` | the `streamlind` daemon: plan cache, streams, admission |
//! | [`benchmarks`] | `streamlin-benchmarks` | the nine paper benchmarks |
//! | [`matrix`], [`fft`], [`support`] | substrates | linear algebra, FFT, op counting |
//!
//! # Quick start
//!
//! ```
//! use streamlin::prelude::*;
//!
//! // 1. Write a stream program in the StreamIt dialect.
//! let program = streamlin::lang::parse(
//!     "void->void pipeline Main { add Src(); add F(); add G(); add K(); }
//!      void->float filter Src { float x; work push 1 { push(x++); } }
//!      float->float filter F { work pop 1 push 1 { push(0.5 * pop()); } }
//!      float->float filter G { work pop 1 push 1 { push(4 * pop() + 1); } }
//!      float->void filter K { work pop 1 { println(pop()); } }",
//! )?;
//!
//! // 2. Elaborate, analyze, optimize.
//! let graph = streamlin::graph::elaborate(&program)?;
//! let analysis = analyze_graph(&graph);
//! assert_eq!(analysis.linear_count(), 2);
//! let optimized = replace(&graph, &analysis, &ReplaceOptions::maximal_linear());
//! assert_eq!(optimized.stats().linear, 1); // F and G fused: y = 2x + 1
//!
//! // 3. Execute both and compare.
//! let base = profile(&OptStream::from_graph(&graph), 10, MatMulStrategy::Unrolled)?;
//! let opt = profile(&optimized, 10, MatMulStrategy::Unrolled)?;
//! assert_eq!(base.outputs, opt.outputs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use streamlin_benchmarks as benchmarks;
pub use streamlin_core as core;
pub use streamlin_fft as fft;
pub use streamlin_graph as graph;
pub use streamlin_lang as lang;
pub use streamlin_matrix as matrix;
pub use streamlin_runtime as runtime;
pub use streamlin_service as service;
pub use streamlin_support as support;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use streamlin_core::combine::{analyze_graph, replace, ReplaceOptions, ReplaceTarget};
    pub use streamlin_core::cost::CostModel;
    pub use streamlin_core::extract::extract;
    pub use streamlin_core::node::LinearNode;
    pub use streamlin_core::opt::OptStream;
    pub use streamlin_core::select::{select, SelectOptions};
    pub use streamlin_graph::elaborate::{elaborate, elaborate_named};
    pub use streamlin_graph::ir::Stream;
    pub use streamlin_lang::parse;
    pub use streamlin_runtime::measure::{
        profile, profile_mode, profile_sched, ExecMode, Scheduler,
    };
    pub use streamlin_runtime::MatMulStrategy;
    pub use streamlin_support::OpCounter;
}
