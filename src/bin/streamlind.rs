//! `streamlind` — the persistent streaming daemon.
//!
//! Keeps compiled programs (plan cache), per-stream engine state, and
//! the worker pool resident across requests, speaking the line-delimited
//! JSON protocol of `streamlin::service::proto` over stdio (default) or
//! TCP:
//!
//! ```console
//! $ streamlind                              # stdio: one request per line
//! $ streamlind --listen 127.0.0.1:0         # TCP; prints the bound address
//! $ streamlind --workers 8 --max-streams 32 # admission budget and stream cap
//! $ streamlind --metrics --trace-out traces # per-stream telemetry lanes
//! $ streamlind --quantum 8                  # default cycle quantum
//! $ streamlind --watchdog 2000              # default stall watchdog (ms)
//! ```
//!
//! Example session:
//!
//! ```text
//! > {"op":"open","id":"s1","program":"...","threads":2,"mode":"fast"}
//! < {"cached":false,"compile_ms":3.1,"id":"s1","ok":true,"op":"open",...}
//! > {"op":"read","id":"s1","n":4}
//! < {"delivered":4,"id":"s1","ok":true,"op":"read","values":[0,1,2,3]}
//! > {"op":"shutdown"}
//! < {"ok":true,"op":"shutdown"}
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use streamlin::service::{server, Service, ServiceOpts};

struct Args {
    listen: Option<String>,
    opts: ServiceOpts,
}

fn usage() -> ! {
    eprintln!(
        "usage: streamlind [--listen <addr>] [--workers <n>] [--max-streams <n>]\n\
         \x20                [--metrics] [--trace-out <dir>] [--quantum <n>]\n\
         \x20                [--watchdog <ms>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: None,
        opts: ServiceOpts::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => args.listen = Some(it.next().unwrap_or_else(|| usage())),
            "--workers" => {
                args.opts.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--max-streams" => {
                args.opts.max_streams = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--metrics" => {
                args.opts.instrument = true;
                args.opts.metrics = true;
            }
            "--trace-out" => {
                args.opts.instrument = true;
                args.opts.trace_dir = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--quantum" => {
                args.opts.quantum = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&q| q >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--watchdog" => {
                args.opts.watchdog_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms| ms >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "-h" | "--help" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(dir) = &args.opts.trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("streamlind: cannot create trace dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let svc = Service::new(args.opts);
    let result = match &args.listen {
        Some(addr) => server::serve_tcp(Arc::new(svc), addr),
        None => server::serve_stdio(&svc),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("streamlind: {e}");
            ExitCode::FAILURE
        }
    }
}
