//! `trace_check` — validates a Chrome trace-event JSON file.
//!
//! Trace viewers (`chrome://tracing`, Perfetto) fail *silently* on
//! malformed input, so CI runs this on a fresh `streamlinc --trace-out`
//! artifact to catch exporter regressions:
//!
//! ```console
//! $ streamlinc assets/fir.str --trace-out trace.json --quiet > /dev/null
//! $ trace_check trace.json
//! trace.json: 1234 events (980 spans over 5 lanes, 200 counters, 5 named lanes)
//! ```
//!
//! Exits 0 when the file parses and satisfies the shape the viewers
//! require (see [`streamlin::runtime::telemetry::validate_trace`]),
//! 1 with the first violation otherwise.

use std::process::ExitCode;

use streamlin::runtime::telemetry::validate_trace;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_trace(&text) {
        Ok(shape) => {
            println!(
                "{path}: {} events ({} spans over {} lanes, {} counters, {} named lanes)",
                shape.events, shape.spans, shape.lanes, shape.counters, shape.named_lanes
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("trace_check: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}
