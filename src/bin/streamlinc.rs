//! `streamlinc` — command-line driver for the streamlin compiler.
//!
//! Parses a StreamIt-dialect program, runs the linear analysis and the
//! requested optimization, executes it, and reports structure and
//! operation counts:
//!
//! ```console
//! $ streamlinc program.str                        # autosel, 1000 outputs
//! $ streamlinc program.str --config freq -n 5000
//! $ streamlinc program.str --sched dynamic        # data-driven engine
//! $ streamlinc program.str --mode fast            # uncounted, SIMD kernels
//! $ streamlinc program.str --threads 4            # pipeline-parallel stages
//! $ streamlinc program.str --threads 4 --fission auto   # split the bottleneck
//! $ streamlinc program.str --fission 2            # force a fission width
//! $ streamlinc program.str --emit-graph           # print the structures
//! $ streamlinc program.str --quiet                # program output only
//! ```

use std::process::ExitCode;

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions, ReplaceTarget};
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::prelude::*;

struct Args {
    path: String,
    config: String,
    sched: Scheduler,
    mode: ExecMode,
    matmul: Option<MatMulStrategy>,
    /// `Some(n)`: run the pipeline-parallel executor over at most `n`
    /// stages (`--sched static` without `--threads` stays the classic
    /// single-threaded plan engine).
    threads: Option<usize>,
    /// Data-parallel fission of the dominant node: `auto` asks the cost
    /// model, a number forces a width, `off` (default) disables it.
    fission: streamlin::runtime::fission::Fission,
    outputs: usize,
    emit_graph: bool,
    quiet: bool,
}

impl Args {
    /// The matrix-multiply strategy to execute with: an explicit
    /// `--matmul` wins; otherwise `fast` mode selects the vectorized
    /// dense kernel and `measured` mode the paper's unrolled one.
    fn strategy(&self) -> MatMulStrategy {
        self.matmul.unwrap_or_else(|| self.mode.default_strategy())
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: streamlinc <program.str> [--config baseline|linear|freq|redund|autosel]\n\
         \x20                [--sched auto|static|dynamic] [--mode measured|fast]\n\
         \x20                [--matmul unrolled|diagonal|blocked|simd] [--threads <n>]\n\
         \x20                [--fission auto|off|<w>] [-n <outputs>] [--emit-graph] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        path: String::new(),
        config: "autosel".into(),
        sched: Scheduler::Auto,
        mode: ExecMode::Measured,
        matmul: None,
        threads: None,
        fission: streamlin::runtime::fission::Fission::Off,
        outputs: 1000,
        emit_graph: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => args.config = it.next().unwrap_or_else(|| usage()),
            "--sched" => {
                args.sched = match it.next().as_deref() {
                    Some("auto") => Scheduler::Auto,
                    Some("static") => Scheduler::Static,
                    Some("dynamic") => Scheduler::Dynamic,
                    _ => usage(),
                }
            }
            "--mode" => {
                args.mode = match it.next().as_deref() {
                    Some("measured") => ExecMode::Measured,
                    Some("fast") => ExecMode::Fast,
                    _ => usage(),
                }
            }
            "--matmul" => {
                args.matmul = Some(match it.next().as_deref() {
                    Some("unrolled") => MatMulStrategy::Unrolled,
                    Some("diagonal") => MatMulStrategy::Diagonal,
                    Some("blocked") => MatMulStrategy::Blocked,
                    Some("simd") => MatMulStrategy::Simd,
                    _ => usage(),
                })
            }
            "--threads" => {
                args.threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&t| t >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--fission" => {
                use streamlin::runtime::fission::Fission;
                args.fission = match it.next().as_deref() {
                    Some("auto") => Fission::Auto,
                    Some("off") => Fission::Off,
                    Some(v) => match v.parse() {
                        Ok(w) if w >= 1 => Fission::Width(w),
                        _ => usage(),
                    },
                    None => usage(),
                }
            }
            "-n" | "--outputs" => {
                args.outputs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--emit-graph" => args.emit_graph = true,
            "--quiet" => args.quiet = true,
            "-h" | "--help" => usage(),
            other if args.path.is_empty() && !other.starts_with('-') => {
                args.path = other.to_string()
            }
            _ => usage(),
        }
    }
    if args.path.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("streamlinc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let source = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path))?;
    let program = parse(&source).map_err(|e| e.to_string())?;
    let graph = elaborate(&program).map_err(|e| e.to_string())?;
    let analysis = analyze_graph(&graph);

    if !args.quiet {
        eprintln!(
            "parsed {} declarations; {} filters ({} linear)",
            program.decls.len(),
            graph.filter_count(),
            analysis.linear_count()
        );
    }

    let opt = match args.config.as_str() {
        "baseline" => replace(&graph, &analysis, &ReplaceOptions::per_filter()),
        "linear" => replace(&graph, &analysis, &ReplaceOptions::maximal_linear()),
        "freq" => replace(&graph, &analysis, &ReplaceOptions::maximal_freq()),
        "redund" => replace(
            &graph,
            &analysis,
            &ReplaceOptions {
                combine: true,
                target: ReplaceTarget::Redund,
            },
        ),
        "autosel" => {
            select(
                &graph,
                &analysis,
                &CostModel::default(),
                &SelectOptions::default(),
            )
            .map_err(|e| e.to_string())?
            .opt
        }
        other => return Err(format!("unknown config `{other}`")),
    };

    if args.emit_graph {
        use streamlin::runtime::fission::{fiss_bottleneck, Fission};
        eprintln!("structure: {}", opt.describe());
        if args.sched == Scheduler::Dynamic {
            eprintln!("schedule: data-driven (dynamic scheduler requested)");
        } else {
            let planned = streamlin::runtime::flat::flatten(&opt, args.strategy())
                .map_err(|e| e.to_string())
                .and_then(|f| {
                    streamlin::runtime::plan::compile(&f)
                        .map(|plan| (f, plan))
                        .map_err(|e| e.to_string())
                });
            match planned {
                Ok((flat, plan)) => {
                    // Show the fission decision, and describe the graph
                    // that will actually execute (the fissed one when the
                    // pass fires).
                    let threads = args.threads.unwrap_or(1);
                    let fissed = if args.fission == Fission::Off {
                        eprintln!("fission: off");
                        None
                    } else {
                        match fiss_bottleneck(
                            &flat,
                            &plan,
                            args.fission,
                            threads,
                            &CostModel::default(),
                        ) {
                            // Report engagement only once the fissed plan
                            // actually compiles — the profiler falls back
                            // whole when it exceeds plan bounds, and the
                            // diagnostic must describe the run that
                            // happens.
                            Ok((f2, info)) => match streamlin::runtime::plan::compile(&f2) {
                                Ok(p2) => {
                                    eprintln!("fission: {}", info.summary());
                                    Some((f2, p2))
                                }
                                Err(e) => {
                                    eprintln!(
                                        "fission: none ({} planned, but its schedule failed: {e})",
                                        info.summary()
                                    );
                                    None
                                }
                            },
                            Err(reason) => {
                                eprintln!("fission: none ({reason})");
                                None
                            }
                        }
                    };
                    let (flat, plan) = fissed.unwrap_or((flat, plan));
                    eprintln!("schedule: {}", plan.summary());
                    if args.threads.is_some() {
                        let part = streamlin::runtime::partition::partition(
                            &flat,
                            &plan,
                            threads,
                            &CostModel::default(),
                        );
                        eprintln!("pipeline: {}", part.summary());
                    }
                }
                Err(e) => eprintln!("schedule: dynamic fallback ({e})"),
            }
        }
    }

    let prof = match (args.threads, args.fission) {
        (None, streamlin::runtime::fission::Fission::Off) => {
            profile_mode(&opt, args.outputs, args.strategy(), args.sched, args.mode)
        }
        (threads, fission) => streamlin::runtime::measure::profile_fission(
            &opt,
            args.outputs,
            args.strategy(),
            args.sched,
            args.mode,
            threads.unwrap_or(1),
            fission,
        ),
    }
    .map_err(|e| e.to_string())?;
    if args.quiet {
        for v in &prof.outputs {
            println!("{v}");
        }
    } else {
        let stats = opt.stats();
        eprintln!(
            "nodes: {} ({} interpreted, {} linear, {} freq, {} redund)",
            stats.filters, stats.originals, stats.linear, stats.freq, stats.redund
        );
        let mut sched_desc = if prof.threads > 1 {
            format!("{} scheduler, {} threads", prof.sched.label(), prof.threads)
        } else {
            format!("{} scheduler", prof.sched.label())
        };
        if prof.fission > 1 {
            sched_desc.push_str(&format!(", fission x{}", prof.fission));
        }
        match args.mode {
            ExecMode::Measured => eprintln!(
                "{} outputs in {:?} [{sched_desc}]: {:.1} flops/output, {:.1} mults/output",
                prof.outputs.len(),
                prof.wall,
                prof.flops_per_output(),
                prof.mults_per_output()
            ),
            ExecMode::Fast => eprintln!(
                "{} outputs in {:?} [{sched_desc}, fast/{}]: {:.0} outputs/sec (uncounted)",
                prof.outputs.len(),
                prof.wall,
                args.strategy().label(),
                prof.outputs.len() as f64 / prof.wall.as_secs_f64().max(1e-9),
            ),
        }
        for v in prof.outputs.iter().take(10) {
            println!("{v}");
        }
        if prof.outputs.len() > 10 {
            println!("... ({} more)", prof.outputs.len() - 10);
        }
    }
    Ok(())
}
