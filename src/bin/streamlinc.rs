//! `streamlinc` — command-line driver for the streamlin compiler.
//!
//! Parses a StreamIt-dialect program, runs the linear analysis and the
//! requested optimization, executes it, and reports structure and
//! operation counts:
//!
//! ```console
//! $ streamlinc program.str                        # autosel, 1000 outputs
//! $ streamlinc program.str --config freq -n 5000
//! $ streamlinc program.str --sched dynamic        # data-driven engine
//! $ streamlinc program.str --mode fast            # uncounted, SIMD kernels
//! $ streamlinc program.str --threads 4            # pipeline-parallel stages
//! $ streamlinc program.str --threads 4 --fission auto   # split the bottleneck
//! $ streamlinc program.str --fission 2            # force a fission width
//! $ streamlinc program.str --emit-graph           # print the structures
//! $ streamlinc program.str --metrics              # telemetry summary table
//! $ streamlinc program.str --trace-out t.json     # Chrome trace-event file
//! $ streamlinc program.str --quiet                # program output only
//! $ streamlinc program.str --lint                 # spanned diagnostics, no run
//! $ streamlinc program.str --deny-lints           # CI: non-zero exit on lints
//! $ streamlinc program.str --threads 4 --watchdog-ms 2000   # stall watchdog
//! $ streamlinc program.str --threads 4 --fault-inject 7:panic@s1  # drill
//! ```

use std::process::ExitCode;
use std::time::Duration;

use streamlin::runtime::measure::{profile_supervised, Supervision};
use streamlin::support::{InjectFaults, Probe, Recorder};

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions, ReplaceTarget};
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::prelude::*;

struct Args {
    path: String,
    config: String,
    sched: Scheduler,
    mode: ExecMode,
    matmul: Option<MatMulStrategy>,
    /// `Some(n)`: run the pipeline-parallel executor over at most `n`
    /// stages (`--sched static` without `--threads` stays the classic
    /// single-threaded plan engine).
    threads: Option<usize>,
    /// Data-parallel fission of the dominant node: `auto` asks the cost
    /// model, a number forces a width, `off` (default) disables it.
    fission: streamlin::runtime::fission::Fission,
    outputs: usize,
    emit_graph: bool,
    /// Print the telemetry summary (where time went: phases, stages,
    /// rings, nodes) after the run.
    metrics: bool,
    /// Write a Chrome trace-event JSON timeline of the run here.
    trace_out: Option<String>,
    quiet: bool,
    /// Deterministic fault plan (`--fault-inject <seed>:<spec>`): a
    /// supervised drill of the pipeline executor's failure paths. See
    /// the fault module's spec grammar (`panic@s1`, `wedge`, `die`,
    /// `slow=50`, `delay@c2=100`, `refuse#1`, `nofission`).
    fault: Option<InjectFaults>,
    /// Wall-clock no-progress deadline for the pipeline watchdog, in
    /// milliseconds (`--watchdog-ms N`).
    watchdog_ms: Option<u64>,
    /// Cycle quantum of the pipeline pacing protocol (`--quantum N`,
    /// original steady cycles). `0`: env `STREAMLIN_CYCLE_QUANTUM`, else
    /// the built-in default of 4.
    quantum: u64,
    /// `--lint`: print every advisory diagnostic the static analysis
    /// produced (spanned, one line each) and skip execution.
    lint: bool,
    /// `--deny-lints`: like `--lint`, but exit non-zero if any lint
    /// fired (for CI).
    deny_lints: bool,
}

impl Args {
    /// Whether the run needs an instrumented (Recorder) profile: any of
    /// the telemetry outputs, or `--emit-graph` (whose decision dump is
    /// sourced from the recorder's notes).
    fn instrumented(&self) -> bool {
        self.metrics || self.trace_out.is_some() || self.emit_graph
    }

    /// The matrix-multiply strategy to execute with: an explicit
    /// `--matmul` wins; otherwise `fast` mode selects the vectorized
    /// dense kernel and `measured` mode the paper's unrolled one.
    fn strategy(&self) -> MatMulStrategy {
        self.matmul.unwrap_or_else(|| self.mode.default_strategy())
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: streamlinc <program.str> [--config baseline|linear|freq|redund|autosel]\n\
         \x20                [--sched auto|static|dynamic] [--mode measured|fast]\n\
         \x20                [--matmul unrolled|diagonal|blocked|simd] [--threads <n>]\n\
         \x20                [--fission auto|off|<w>] [-n <outputs>] [--emit-graph]\n\
         \x20                [--metrics] [--trace-out <file>] [--quiet]\n\
         \x20                [--watchdog-ms <n>] [--fault-inject <seed>:<spec>[,<spec>...]]\n\
         \x20                [--quantum <n>] [--no-bytecode] [--lint] [--deny-lints]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        path: String::new(),
        config: "autosel".into(),
        sched: Scheduler::Auto,
        mode: ExecMode::Measured,
        matmul: None,
        threads: None,
        fission: streamlin::runtime::fission::Fission::Off,
        outputs: 1000,
        emit_graph: false,
        metrics: false,
        trace_out: None,
        quiet: false,
        fault: None,
        watchdog_ms: None,
        quantum: 0,
        lint: false,
        deny_lints: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => args.config = it.next().unwrap_or_else(|| usage()),
            "--sched" => {
                args.sched = match it.next().as_deref() {
                    Some("auto") => Scheduler::Auto,
                    Some("static") => Scheduler::Static,
                    Some("dynamic") => Scheduler::Dynamic,
                    _ => usage(),
                }
            }
            "--mode" => {
                args.mode = match it.next().as_deref() {
                    Some("measured") => ExecMode::Measured,
                    Some("fast") => ExecMode::Fast,
                    _ => usage(),
                }
            }
            "--matmul" => {
                args.matmul = Some(match it.next().as_deref() {
                    Some("unrolled") => MatMulStrategy::Unrolled,
                    Some("diagonal") => MatMulStrategy::Diagonal,
                    Some("blocked") => MatMulStrategy::Blocked,
                    Some("simd") => MatMulStrategy::Simd,
                    _ => usage(),
                })
            }
            "--threads" => {
                args.threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&t| t >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--fission" => {
                use streamlin::runtime::fission::Fission;
                args.fission = match it.next().as_deref() {
                    Some("auto") => Fission::Auto,
                    Some("off") => Fission::Off,
                    Some(v) => match v.parse() {
                        Ok(w) if w >= 1 => Fission::Width(w),
                        _ => usage(),
                    },
                    None => usage(),
                }
            }
            "-n" | "--outputs" => {
                args.outputs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--fault-inject" => {
                let spec = it.next().unwrap_or_else(|| usage());
                args.fault = Some(InjectFaults::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("streamlinc: bad --fault-inject spec: {e}");
                    std::process::exit(2);
                }));
            }
            "--watchdog-ms" => {
                args.watchdog_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms| ms >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--quantum" => {
                args.quantum = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&q| q >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--no-bytecode" => streamlin::runtime::set_bytecode_tier(false),
            "--lint" => args.lint = true,
            "--deny-lints" => {
                args.lint = true;
                args.deny_lints = true;
            }
            "--emit-graph" => args.emit_graph = true,
            "--metrics" => args.metrics = true,
            "--trace-out" => args.trace_out = Some(it.next().unwrap_or_else(|| usage())),
            "--quiet" => args.quiet = true,
            "-h" | "--help" => usage(),
            other if args.path.is_empty() && !other.starts_with('-') => {
                args.path = other.to_string()
            }
            _ => usage(),
        }
    }
    if args.path.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("streamlinc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let source = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path))?;
    // The recorder's creation instant is the trace epoch, so it exists
    // before the first compile phase; uninstrumented runs never build one
    // and execute the NoProbe-monomorphized engines.
    let mut rec = args.instrumented().then(Recorder::new);
    let t0 = rec.as_ref().map_or(0, |r| r.now());
    let program = parse(&source).map_err(|e| e.to_string())?;
    if let Some(r) = rec.as_mut() {
        r.phase("parse", t0);
    }
    let t0 = rec.as_ref().map_or(0, |r| r.now());
    let graph = elaborate(&program).map_err(|e| e.to_string())?;
    if let Some(r) = rec.as_mut() {
        r.phase("elaborate", t0);
    }
    if args.lint {
        // One line per distinct (position, code, message, declaration):
        // a declaration instantiated many times reports each finding once.
        let mut lints: Vec<(u32, u32, &'static str, String, String)> = Vec::new();
        graph.for_each_filter(&mut |inst| {
            for l in &inst.facts.lints {
                lints.push((
                    l.span.line,
                    l.span.col,
                    l.code,
                    l.message.clone(),
                    inst.decl_name.clone(),
                ));
            }
        });
        lints.sort();
        lints.dedup();
        for (line, col, code, msg, decl) in &lints {
            println!(
                "{}:{line}:{col}: warning[{code}]: {msg} (in filter {decl})",
                args.path
            );
        }
        if !args.quiet {
            eprintln!("{} lint(s)", lints.len());
        }
        if args.deny_lints && !lints.is_empty() {
            return Err(format!("--deny-lints: {} lint(s)", lints.len()));
        }
        return Ok(());
    }

    let analysis = analyze_graph(&graph);

    if !args.quiet {
        eprintln!(
            "parsed {} declarations; {} filters ({} linear)",
            program.decls.len(),
            graph.filter_count(),
            analysis.linear_count()
        );
    }

    let t0 = rec.as_ref().map_or(0, |r| r.now());
    let opt = match args.config.as_str() {
        "baseline" => replace(&graph, &analysis, &ReplaceOptions::per_filter()),
        "linear" => replace(&graph, &analysis, &ReplaceOptions::maximal_linear()),
        "freq" => replace(&graph, &analysis, &ReplaceOptions::maximal_freq()),
        "redund" => replace(
            &graph,
            &analysis,
            &ReplaceOptions {
                combine: true,
                target: ReplaceTarget::Redund,
            },
        ),
        "autosel" => {
            select(
                &graph,
                &analysis,
                &CostModel::default(),
                &SelectOptions::default(),
            )
            .map_err(|e| e.to_string())?
            .opt
        }
        other => return Err(format!("unknown config `{other}`")),
    };
    if let Some(r) = rec.as_mut() {
        r.phase("select", t0);
    }

    if args.emit_graph {
        eprintln!("structure: {}", opt.describe());
    }

    // `--threads`/`--fission` select the pipeline executor (a lone
    // `--fission` runs it with a 1-stage budget, matching the fission
    // pass's threads argument); otherwise the classic engines run.
    let pipeline_threads = match (args.threads, args.fission) {
        (None, streamlin::runtime::fission::Fission::Off) => None,
        (threads, _) => Some(threads.unwrap_or(1)),
    };
    // Every CLI run goes through the supervised profiler: with no
    // `--fault-inject`/`--watchdog-ms` it monomorphizes to the exact
    // unsupervised engines; with either, the supervisor watches the run
    // and degrades to the single-threaded static plan on infrastructure
    // failures instead of hanging or dying.
    let sup = Supervision {
        watchdog: args.watchdog_ms.map(Duration::from_millis),
        fallback: true,
        quantum: args.quantum,
    };
    let prof = profile_supervised(
        &opt,
        args.outputs,
        args.strategy(),
        args.sched,
        args.mode,
        pipeline_threads,
        args.fission,
        &sup,
        args.fault.as_ref(),
        rec.as_mut(),
    )
    .map_err(|e| e.to_string())?;
    if let Some(reason) = &prof.degraded {
        if !args.quiet {
            eprintln!("streamlinc: degraded to the single-threaded static plan ({reason})");
        }
    }

    if args.emit_graph {
        // The decision dump: fission engagement/refusal, schedule shape,
        // partition and pool — straight from the telemetry notes the
        // profiler recorded, so the text dump and the exported trace
        // describe the same run.
        for (key, text) in &rec.as_ref().expect("emit-graph runs instrumented").notes {
            eprintln!("{key}: {text}");
        }
    }
    if args.metrics {
        eprint!(
            "{}",
            rec.as_ref().expect("--metrics runs instrumented").summary()
        );
    }
    if let Some(path) = &args.trace_out {
        let trace = rec
            .as_ref()
            .expect("--trace-out runs instrumented")
            .chrome_trace();
        std::fs::write(path, trace).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            eprintln!("trace written to {path}");
        }
    }
    if args.quiet {
        for v in &prof.outputs {
            println!("{v}");
        }
    } else {
        let stats = opt.stats();
        eprintln!(
            "nodes: {} ({} interpreted, {} linear, {} freq, {} redund)",
            stats.filters, stats.originals, stats.linear, stats.freq, stats.redund
        );
        let mut sched_desc = if prof.threads > 1 {
            format!("{} scheduler, {} threads", prof.sched.label(), prof.threads)
        } else {
            format!("{} scheduler", prof.sched.label())
        };
        if prof.fission > 1 {
            sched_desc.push_str(&format!(", fission x{}", prof.fission));
        }
        match args.mode {
            ExecMode::Measured => eprintln!(
                "{} outputs in {:?} [{sched_desc}]: {:.1} flops/output, {:.1} mults/output",
                prof.outputs.len(),
                prof.wall,
                prof.flops_per_output(),
                prof.mults_per_output()
            ),
            ExecMode::Fast => eprintln!(
                "{} outputs in {:?} [{sched_desc}, fast/{}]: {:.0} outputs/sec (uncounted)",
                prof.outputs.len(),
                prof.wall,
                args.strategy().label(),
                prof.outputs.len() as f64 / prof.wall.as_secs_f64().max(1e-9),
            ),
        }
        for v in prof.outputs.iter().take(10) {
            println!("{v}");
        }
        if prof.outputs.len() > 10 {
            println!("... ({} more)", prof.outputs.len() - 10);
        }
    }
    Ok(())
}
