//! The zero-cost telemetry contract: instrumenting a run with a
//! [`Recorder`] probe must not change what the run computes. For every
//! benchmark program, every execution mode, pipeline budget and fission
//! width, `profile_recorded` (probe on) must produce printed output
//! **bit-identical** to the NoProbe-monomorphized engines (probe off),
//! with identical operation tallies and firing counts — the probe
//! observes the run, it never participates in it.
//!
//! A second group pins the *shape* of what was observed: the Chrome
//! trace export parses under the workspace's own JSON reader, satisfies
//! the viewer invariants ([`validate_trace`]), carries one named lane
//! per worker plus the coordinator, and the recorder's firing totals
//! agree with the profile's own counters.

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions};
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::core::OptStream;
use streamlin::runtime::fission::Fission;
use streamlin::runtime::measure::{profile_fission, profile_mode, profile_recorded};
use streamlin::runtime::telemetry::validate_trace;
use streamlin::runtime::{ExecMode, Scheduler};
use streamlin::support::Recorder;

fn configs(bench: &streamlin::benchmarks::Benchmark) -> Vec<(&'static str, OptStream)> {
    let analysis = analyze_graph(bench.graph());
    vec![
        (
            "baseline",
            replace(bench.graph(), &analysis, &ReplaceOptions::per_filter()),
        ),
        (
            "autosel",
            select(
                bench.graph(),
                &analysis,
                &CostModel::default(),
                &SelectOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
            .opt,
        ),
    ]
}

/// Asserts one probe-on run against its probe-off reference.
fn assert_identical(
    name: &str,
    label: &str,
    what: &str,
    mode: ExecMode,
    reference: &streamlin::runtime::Profile,
    probed: &streamlin::runtime::Profile,
) {
    assert_eq!(
        probed.sched, reference.sched,
        "{name} {label} {what}: scheduler drifted under the probe"
    );
    assert_eq!(
        probed.outputs.len(),
        reference.outputs.len(),
        "{name} {label} {what}: output counts differ"
    );
    for (i, (a, b)) in reference.outputs.iter().zip(&probed.outputs).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name} {label} {what}: output {i} differs: {a} vs {b}"
        );
    }
    assert_eq!(
        reference.firings, probed.firings,
        "{name} {label} {what}: firing counts differ under the probe"
    );
    if mode == ExecMode::Measured {
        assert_eq!(
            reference.ops, probed.ops,
            "{name} {label} {what}: tallies differ under the probe"
        );
    }
}

/// The full matrix for one benchmark: modes × threads {1, 2} × fission
/// {off, 2}, probe on vs probe off, plus the classic (non-pipeline)
/// engines under both schedulers.
fn check(bench: &streamlin::benchmarks::Benchmark, outputs: usize) {
    for (label, opt) in configs(bench) {
        for mode in [ExecMode::Measured, ExecMode::Fast] {
            let strategy = mode.default_strategy();
            // The classic engines: threads = None routes profile_recorded
            // through the same plan/dynamic executors as profile_mode.
            for sched in [Scheduler::Auto, Scheduler::Dynamic] {
                let reference = profile_mode(&opt, outputs, strategy, sched, mode)
                    .unwrap_or_else(|e| panic!("{} {label}: {e}", bench.name()));
                let mut rec = Recorder::new();
                let probed = profile_recorded(
                    &opt,
                    outputs,
                    strategy,
                    sched,
                    mode,
                    None,
                    Fission::Off,
                    &mut rec,
                )
                .unwrap_or_else(|e| panic!("{} {label} probed: {e}", bench.name()));
                let what = format!("{} {}", sched.label(), mode.label());
                assert_identical(bench.name(), label, &what, mode, &reference, &probed);
            }
            // The pipeline executor across stage budgets and fission widths.
            for threads in [1usize, 2] {
                for fission in [Fission::Off, Fission::Width(2)] {
                    let reference = profile_fission(
                        &opt,
                        outputs,
                        strategy,
                        Scheduler::Auto,
                        mode,
                        threads,
                        fission,
                    )
                    .unwrap_or_else(|e| panic!("{} {label}: {e}", bench.name()));
                    let mut rec = Recorder::new();
                    let probed = profile_recorded(
                        &opt,
                        outputs,
                        strategy,
                        Scheduler::Auto,
                        mode,
                        Some(threads),
                        fission,
                        &mut rec,
                    )
                    .unwrap_or_else(|e| panic!("{} {label} probed: {e}", bench.name()));
                    let what = format!("{} t{threads} fiss={:?}", mode.label(), probed.fission);
                    assert_identical(bench.name(), label, &what, mode, &reference, &probed);
                    assert_eq!(
                        probed.fission,
                        reference.fission,
                        "{} {label} {what}: fission decision drifted under the probe",
                        bench.name()
                    );
                }
            }
        }
    }
}

#[test]
fn fir_probe_is_invisible() {
    check(&streamlin::benchmarks::fir(64), 512);
}

#[test]
fn rate_convert_probe_is_invisible() {
    check(&streamlin::benchmarks::rate_convert(), 256);
}

#[test]
fn target_detect_probe_is_invisible() {
    check(&streamlin::benchmarks::target_detect(), 256);
}

#[test]
fn fm_radio_probe_is_invisible() {
    check(&streamlin::benchmarks::fm_radio(), 128);
}

#[test]
fn radar_probe_is_invisible() {
    check(&streamlin::benchmarks::radar(8, 2), 64);
}

#[test]
fn filter_bank_probe_is_invisible() {
    check(&streamlin::benchmarks::filter_bank(), 128);
}

#[test]
fn vocoder_probe_is_invisible() {
    check(&streamlin::benchmarks::vocoder(), 64);
}

#[test]
fn oversampler_probe_is_invisible() {
    check(&streamlin::benchmarks::oversampler(), 512);
}

#[test]
fn dtoa_probe_is_invisible_on_the_dynamic_fallback() {
    // dtoa's feedback loop has no static plan: every configuration runs
    // the dynamic engine, and the probe must be invisible there too.
    check(&streamlin::benchmarks::dtoa(), 256);
}

// ---- trace shape ------------------------------------------------------------

#[test]
fn recorded_trace_has_viewer_shape_and_consistent_totals() {
    let bench = streamlin::benchmarks::fir(64);
    let opt = configs(&bench).pop().unwrap().1;
    let mut rec = Recorder::new();
    let prof = profile_recorded(
        &opt,
        512,
        ExecMode::Fast.default_strategy(),
        Scheduler::Auto,
        ExecMode::Fast,
        Some(2),
        Fission::Width(2),
        &mut rec,
    )
    .expect("instrumented pipeline run");

    let trace = rec.chrome_trace();
    let shape = validate_trace(&trace).expect("exported trace must satisfy viewer invariants");
    assert!(shape.spans > 0, "a run must record firing spans");
    assert!(
        shape.lanes >= prof.threads,
        "every worker gets a span lane: {} lanes for {} stages",
        shape.lanes,
        prof.threads
    );
    assert!(
        shape.named_lanes > prof.threads,
        "coordinator + every stage get thread_name metadata"
    );
    assert!(shape.counters > 0, "ring occupancy must be sampled");

    // The recorder's firing total is the profile's firing total: the
    // probe saw every firing the engines performed. The synthesized
    // fission splitter/joiner are recorded (they occupy trace lanes) but
    // deliberately excluded from the engine's firing counter — that
    // counter must stay invariant across fission widths — so subtract
    // their batches before comparing.
    let recorded: u64 = rec.lanes.values().map(|l| l.firings).sum();
    let plumbing: u64 = rec
        .nodes
        .values()
        .filter(|n| n.name.starts_with("fiss-split") || n.name.starts_with("fiss-join"))
        .map(|n| n.firings)
        .sum();
    assert_eq!(
        recorded - plumbing,
        prof.firings,
        "recorded firings (minus fission plumbing) == performed firings"
    );

    // Phase spans cover the lowering pipeline.
    let compile_ns = rec.compile_ns();
    assert!(compile_ns > 0, "compile phases were timed");
}

#[test]
fn single_threaded_trace_validates_too() {
    let bench = streamlin::benchmarks::rate_convert();
    let opt = configs(&bench).remove(0).1;
    let mut rec = Recorder::new();
    profile_recorded(
        &opt,
        256,
        ExecMode::Measured.default_strategy(),
        Scheduler::Auto,
        ExecMode::Measured,
        None,
        Fission::Off,
        &mut rec,
    )
    .expect("instrumented classic run");
    let shape = validate_trace(&rec.chrome_trace()).expect("valid trace");
    assert!(shape.spans > 0);
    assert!(shape.named_lanes >= 1, "the engine lane is named");
}
