//! Calibration of the optimization selector against the paper's reported
//! qualitative decisions (§5.2): FIR moves to the frequency domain; Radar
//! refuses both maximal combination and frequency translation; automatic
//! selection is never worse (in executed multiplications) than either
//! maximal configuration.

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions};
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::runtime::measure::profile;
use streamlin::runtime::MatMulStrategy;

fn autosel(bench: &streamlin::benchmarks::Benchmark) -> streamlin::core::OptStream {
    let analysis = analyze_graph(bench.graph());
    select(
        bench.graph(),
        &analysis,
        &CostModel::default(),
        &SelectOptions::default(),
    )
    .unwrap()
    .opt
}

#[test]
fn fir_256_selects_frequency() {
    let opt = autosel(&streamlin::benchmarks::fir(256));
    assert_eq!(opt.stats().freq, 1, "{}", opt.describe());
}

#[test]
fn fir_4_stays_direct() {
    let opt = autosel(&streamlin::benchmarks::fir(4));
    let stats = opt.stats();
    assert_eq!(stats.freq, 0, "{}", opt.describe());
    assert_eq!(stats.linear, 1);
}

#[test]
fn radar_selects_no_frequency_nodes() {
    // "the selection algorithm ... transforming none to the frequency
    // domain" (§5.2).
    let opt = autosel(&streamlin::benchmarks::radar(12, 4));
    assert_eq!(opt.stats().freq, 0, "{}", opt.describe());
}

#[test]
fn autosel_mults_never_worse_than_maximal() {
    for bench in [
        streamlin::benchmarks::fir(256),
        streamlin::benchmarks::rate_convert(),
        streamlin::benchmarks::fm_radio(),
        streamlin::benchmarks::radar(8, 2),
        streamlin::benchmarks::filter_bank(),
        streamlin::benchmarks::oversampler(),
    ] {
        // Use the full default window: frequency stages push whole blocks
        // (the Oversampler chain emits >1000 items per firing), so short
        // windows are dominated by startup and overstate freq cost.
        let n = bench.default_outputs();
        let analysis = analyze_graph(bench.graph());
        let run = |opt: &streamlin::core::OptStream| {
            profile(opt, n, MatMulStrategy::Unrolled)
                .unwrap()
                .mults_per_output()
        };
        let auto = run(&autosel(&bench));
        let linear = run(&replace(
            bench.graph(),
            &analysis,
            &ReplaceOptions::maximal_linear(),
        ));
        let freq = run(&replace(
            bench.graph(),
            &analysis,
            &ReplaceOptions::maximal_freq(),
        ));
        // Small tolerance: the selector optimizes modeled cost, not the
        // exact counter, so allow 10% slack.
        let best = linear.min(freq);
        assert!(
            auto <= best * 1.10,
            "{}: autosel {auto:.1} vs best maximal {best:.1}",
            bench.name()
        );
    }
}

#[test]
fn fm_radio_autosel_beats_both_maximal_options() {
    // The paper highlights FMRadio as a case where selection mixes linear
    // and frequency regions to beat both (Figure 5-2).
    let bench = streamlin::benchmarks::fm_radio();
    let analysis = analyze_graph(bench.graph());
    let n = 256;
    let run = |opt: &streamlin::core::OptStream| {
        profile(opt, n, MatMulStrategy::Unrolled)
            .unwrap()
            .mults_per_output()
    };
    let auto = run(&autosel(&bench));
    let linear = run(&replace(
        bench.graph(),
        &analysis,
        &ReplaceOptions::maximal_linear(),
    ));
    let freq = run(&replace(
        bench.graph(),
        &analysis,
        &ReplaceOptions::maximal_freq(),
    ));
    assert!(
        auto <= linear && auto <= freq,
        "auto {auto:.1}, linear {linear:.1}, freq {freq:.1}"
    );
}
