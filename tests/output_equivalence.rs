//! The central end-to-end correctness statement: every optimization
//! configuration — including automatic selection, redundancy elimination
//! and the ATLAS-substitute matmul — produces program output identical to
//! the unoptimized baseline, on every benchmark.

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions, ReplaceTarget};
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::runtime::measure::{first_mismatch, profile};
use streamlin::runtime::MatMulStrategy;

fn check(bench: &streamlin::benchmarks::Benchmark, outputs: usize) {
    let analysis = analyze_graph(bench.graph());
    let baseline = profile(
        &replace(bench.graph(), &analysis, &ReplaceOptions::per_filter()),
        outputs,
        MatMulStrategy::Unrolled,
    )
    .unwrap_or_else(|e| panic!("{} baseline: {e}", bench.name()));

    let autosel = select(
        bench.graph(),
        &analysis,
        &CostModel::default(),
        &SelectOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
    .opt;

    let configs: Vec<(&str, streamlin::core::OptStream, MatMulStrategy)> = vec![
        ("autosel", autosel, MatMulStrategy::Unrolled),
        (
            "redund",
            replace(
                bench.graph(),
                &analysis,
                &ReplaceOptions {
                    combine: true,
                    target: ReplaceTarget::Redund,
                },
            ),
            MatMulStrategy::Unrolled,
        ),
        (
            "atlas",
            replace(bench.graph(), &analysis, &ReplaceOptions::maximal_linear()),
            MatMulStrategy::Blocked,
        ),
        (
            "diagonal",
            replace(bench.graph(), &analysis, &ReplaceOptions::maximal_linear()),
            MatMulStrategy::Diagonal,
        ),
    ];
    for (label, opt, strategy) in configs {
        let prof = profile(&opt, outputs, strategy)
            .unwrap_or_else(|e| panic!("{} {label}: {e}", bench.name()));
        if let Some(i) = first_mismatch(&baseline.outputs, &prof.outputs, 1e-5, 1e-5) {
            panic!(
                "{} {label}: output {i} differs: {} vs {}",
                bench.name(),
                baseline.outputs[i],
                prof.outputs[i]
            );
        }
    }
}

#[test]
fn fir_all_configs() {
    check(&streamlin::benchmarks::fir(64), 512);
}

#[test]
fn rate_convert_all_configs() {
    check(&streamlin::benchmarks::rate_convert(), 256);
}

#[test]
fn target_detect_all_configs() {
    check(&streamlin::benchmarks::target_detect(), 256);
}

#[test]
fn fm_radio_all_configs() {
    check(&streamlin::benchmarks::fm_radio(), 128);
}

#[test]
fn radar_all_configs() {
    check(&streamlin::benchmarks::radar(8, 2), 64);
}

#[test]
fn filter_bank_all_configs() {
    check(&streamlin::benchmarks::filter_bank(), 128);
}

#[test]
fn vocoder_all_configs() {
    check(&streamlin::benchmarks::vocoder(), 64);
}

#[test]
fn oversampler_all_configs() {
    check(&streamlin::benchmarks::oversampler(), 512);
}

#[test]
fn dtoa_all_configs() {
    check(&streamlin::benchmarks::dtoa(), 256);
}
