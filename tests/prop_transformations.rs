//! Property-based tests of the paper's transformations: for random linear
//! nodes and random inputs, the transformed implementation must reproduce
//! the original structure's output exactly (frequency: to FFT tolerance).

use proptest::prelude::*;
use streamlin::core::expand::expand;
use streamlin::core::frequency::{FreqExec, FreqSpec, FreqStrategy};
use streamlin::core::node::LinearNode;
use streamlin::core::pipeline::combine_pipeline;
use streamlin::core::redundancy::{RedundExec, RedundSpec};
use streamlin::core::reference::{run_reference, RefStream};
use streamlin::core::splitjoin::combine_splitjoin;
use streamlin::fft::FftKind;
use streamlin::graph::ir::Splitter;
use streamlin::support::OpCounter;

/// A random linear node with bounded rates and small integer-ish entries.
fn arb_node(max_peek: usize, max_push: usize) -> impl Strategy<Value = LinearNode> {
    (1..=max_peek, 1..=max_push).prop_flat_map(move |(peek, push)| {
        let entries = proptest::collection::vec(-4..=4i32, peek * push);
        let offsets = proptest::collection::vec(-2..=2i32, push);
        (Just(peek), Just(push), 1..=peek, entries, offsets).prop_map(
            |(peek, push, pop, entries, offsets)| {
                LinearNode::from_coeffs(
                    peek,
                    pop,
                    push,
                    |i, j| entries[i * push + j] as f64,
                    &offsets.iter().map(|&v| v as f64).collect::<Vec<_>>(),
                )
            },
        )
    })
}

fn input(len: usize, seed: i64) -> Vec<f64> {
    (0..len)
        .map(|i| (((i as i64 * 37 + seed * 11) % 19) - 9) as f64)
        .collect()
}

fn assert_prefix_close(a: &[f64], b: &[f64], tol: f64) -> Result<(), TestCaseError> {
    let n = a.len().min(b.len());
    for i in 0..n {
        prop_assert!(
            (a[i] - b[i]).abs() < tol,
            "outputs differ at {i}: {} vs {}",
            a[i],
            b[i]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transformation 1: k-fold expansion == k firings.
    #[test]
    fn expansion_matches_repeated_firing(node in arb_node(5, 3), k in 1usize..=4, seed in 0i64..100) {
        let e2 = node.peek() + (k - 1) * node.pop();
        let expanded = expand(&node, e2, k * node.pop(), k * node.push()).unwrap();
        let x = input(e2 + 4 * k * node.pop(), seed);
        let got = expanded.fire_sequence(&x);
        let want = node.fire_sequence(&x);
        assert_prefix_close(&got, &want, 1e-9)?;
    }

    /// Transformation 2: pipeline combination == running the two nodes
    /// back to back.
    #[test]
    fn pipeline_combination_is_equivalent(
        a in arb_node(4, 3),
        b in arb_node(4, 3),
        seed in 0i64..100,
    ) {
        let combined = combine_pipeline(&a, &b).unwrap();
        let x = input(64, seed);
        let want = run_reference(
            &RefStream::Pipeline(vec![RefStream::Node(a), RefStream::Node(b)]),
            &x,
        );
        let got = combined.fire_sequence(&x);
        prop_assume!(!got.is_empty() && !want.is_empty());
        assert_prefix_close(&got, &want, 1e-9)?;
    }

    /// Transformation 3: duplicate splitjoin combination == the parallel
    /// structure (children constrained to a common pop rate).
    #[test]
    fn duplicate_splitjoin_combination_is_equivalent(
        a in arb_node(4, 3),
        b in arb_node(4, 3),
        seed in 0i64..100,
    ) {
        // Use each child's push as its joiner weight; both then fire once
        // per joiner cycle, so schedulability needs equal pops.
        prop_assume!(a.pop() == b.pop());
        let weights = vec![a.push(), b.push()];
        let children = vec![a, b];
        let combined = combine_splitjoin(&Splitter::Duplicate, &children, &weights).unwrap();
        let x = input(80, seed);
        let want = run_reference(
            &RefStream::SplitJoin {
                split: Splitter::Duplicate,
                children: children.into_iter().map(RefStream::Node).collect(),
                join: weights,
            },
            &x,
        );
        let got = combined.fire_sequence(&x);
        prop_assume!(!got.is_empty() && !want.is_empty());
        assert_prefix_close(&got, &want, 1e-9)?;
    }

    /// Transformation 4: round-robin splitjoins after rewriting.
    #[test]
    fn roundrobin_splitjoin_combination_is_equivalent(
        a in arb_node(3, 2),
        b in arb_node(3, 2),
        va in 1usize..=3,
        vb in 1usize..=3,
        seed in 0i64..100,
    ) {
        // Joiner weights = pushes per splitter cycle keep it schedulable:
        // child k fires va/pop... constrain to pop dividing weight stream.
        prop_assume!(va.is_multiple_of(a.pop()) && vb.is_multiple_of(b.pop()));
        let wa = va / a.pop() * a.push();
        let wb = vb / b.pop() * b.push();
        let split = Splitter::RoundRobin(vec![va, vb]);
        let weights = vec![wa, wb];
        let children = vec![a, b];
        let combined = combine_splitjoin(&split, &children, &weights).unwrap();
        let x = input(96, seed);
        let want = run_reference(
            &RefStream::SplitJoin {
                split,
                children: children.into_iter().map(RefStream::Node).collect(),
                join: weights,
            },
            &x,
        );
        let got = combined.fire_sequence(&x);
        prop_assume!(!got.is_empty() && !want.is_empty());
        assert_prefix_close(&got, &want, 1e-9)?;
    }

    /// Transformations 5/6: the frequency implementations reproduce the
    /// direct node.
    #[test]
    fn frequency_implementations_are_equivalent(
        node in arb_node(6, 2),
        naive in proptest::bool::ANY,
        tuned in proptest::bool::ANY,
        seed in 0i64..100,
    ) {
        let strategy = if naive { FreqStrategy::Naive } else { FreqStrategy::Optimized };
        let kind = if tuned { FftKind::Tuned } else { FftKind::Simple };
        let spec = FreqSpec::new(&node, strategy, kind, None).unwrap();
        let mut exec = FreqExec::new(spec);
        let mut ops = OpCounter::new();
        let x = input(160, seed);
        let got = exec.run_over(&x, &mut ops);
        let want = node.fire_sequence(&x);
        prop_assume!(!got.is_empty());
        assert_prefix_close(&got, &want, 1e-6)?;
    }

    /// Transformation 7: redundancy elimination reproduces the direct node
    /// and never uses more multiplications.
    #[test]
    fn redundancy_elimination_is_equivalent(node in arb_node(6, 2), seed in 0i64..100) {
        let spec = RedundSpec::new(&node);
        prop_assert!(spec.mults_per_firing() <= spec.direct_mults_per_firing());
        let mut exec = RedundExec::new(spec);
        let mut ops = OpCounter::new();
        let x = input(96, seed);
        let got = exec.run_over(&x, &mut ops);
        let want = node.fire_sequence(&x);
        prop_assert_eq!(got.len(), want.len());
        assert_prefix_close(&got, &want, 1e-9)?;
    }

    /// Chained pipeline combination is associative in effect.
    #[test]
    fn pipeline_combination_associates(
        a in arb_node(3, 2),
        b in arb_node(3, 2),
        c in arb_node(3, 2),
        seed in 0i64..100,
    ) {
        let left = combine_pipeline(&combine_pipeline(&a, &b).unwrap(), &c).unwrap();
        let right = combine_pipeline(&a, &combine_pipeline(&b, &c).unwrap()).unwrap();
        let x = input(96, seed);
        let lo = left.fire_sequence(&x);
        let ro = right.fire_sequence(&x);
        prop_assume!(!lo.is_empty() && !ro.is_empty());
        assert_prefix_close(&lo, &ro, 1e-9)?;
    }
}
