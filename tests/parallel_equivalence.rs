//! Pipeline-parallel determinism: for every benchmark program, running the
//! partitioned static plan over `--threads {1, 2, 4}` worker threads
//! produces printed output **bit-identical** to the single-threaded static
//! plan, and — because pipeline runs are quantized to whole steady cycles
//! by a thread-count-independent pacing protocol — identical operation
//! tallies and firing counts across every thread count.
//!
//! The pipeline executor runs each stage's slice of the compiled schedule
//! verbatim (same batch sizes, same kernels, same interpreter), so output
//! equality here is exact: `f64::to_bits`, not a tolerance. Feedback
//! programs (dtoa) have no static plan; `profile_threads` must fall back
//! to the single-threaded data-driven engine and still match.

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions};
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::core::OptStream;
use streamlin::runtime::measure::{profile_mode, profile_threads, ExecMode, Scheduler};
use streamlin::runtime::MatMulStrategy;

fn configs(bench: &streamlin::benchmarks::Benchmark) -> Vec<(&'static str, OptStream)> {
    let analysis = analyze_graph(bench.graph());
    vec![
        (
            "baseline",
            replace(bench.graph(), &analysis, &ReplaceOptions::per_filter()),
        ),
        (
            "autosel",
            select(
                bench.graph(),
                &analysis,
                &CostModel::default(),
                &SelectOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
            .opt,
        ),
    ]
}

fn check(bench: &streamlin::benchmarks::Benchmark, outputs: usize) {
    for (label, opt) in configs(bench) {
        for mode in [ExecMode::Measured, ExecMode::Fast] {
            // The single-threaded static plan is the output reference
            // (dynamic fallback for feedback programs, via Auto).
            let reference = profile_mode(
                &opt,
                outputs,
                MatMulStrategy::Unrolled,
                Scheduler::Auto,
                mode,
            )
            .unwrap_or_else(|e| panic!("{} {label} reference: {e}", bench.name()));

            let mut sweep = Vec::new();
            for threads in [1usize, 2, 4] {
                let prof = profile_threads(
                    &opt,
                    outputs,
                    MatMulStrategy::Unrolled,
                    Scheduler::Auto,
                    mode,
                    threads,
                )
                .unwrap_or_else(|e| panic!("{} {label} threads={threads}: {e}", bench.name()));
                assert_eq!(
                    prof.sched,
                    reference.sched,
                    "{} {label} threads={threads}: scheduler drifted",
                    bench.name()
                );
                assert_eq!(
                    prof.outputs.len(),
                    reference.outputs.len(),
                    "{} {label} threads={threads}: output counts differ",
                    bench.name()
                );
                for (i, (a, b)) in reference.outputs.iter().zip(&prof.outputs).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} {label} {} threads={threads}: output {i} differs: {a} vs {b}",
                        bench.name(),
                        mode.label()
                    );
                }
                sweep.push((threads, prof));
            }

            // Tallies and firing counts must agree across the whole thread
            // sweep (in Fast mode the tallies are all zero by construction,
            // but the firing counts still pin the cycle quantization).
            let (_, one) = &sweep[0];
            for (threads, prof) in &sweep[1..] {
                assert_eq!(
                    one.firings,
                    prof.firings,
                    "{} {label} {}: firings differ at threads={threads}",
                    bench.name(),
                    mode.label()
                );
                if mode == ExecMode::Measured {
                    assert_eq!(
                        one.ops,
                        prof.ops,
                        "{} {label}: tallies differ at threads={threads}",
                        bench.name()
                    );
                }
            }
        }
    }
}

#[test]
fn fir_pipeline_is_deterministic() {
    check(&streamlin::benchmarks::fir(64), 512);
}

#[test]
fn rate_convert_pipeline_is_deterministic() {
    check(&streamlin::benchmarks::rate_convert(), 256);
}

#[test]
fn target_detect_pipeline_is_deterministic() {
    check(&streamlin::benchmarks::target_detect(), 256);
}

#[test]
fn fm_radio_pipeline_is_deterministic() {
    check(&streamlin::benchmarks::fm_radio(), 128);
}

#[test]
fn radar_pipeline_is_deterministic() {
    check(&streamlin::benchmarks::radar(8, 2), 64);
}

#[test]
fn filter_bank_pipeline_is_deterministic() {
    check(&streamlin::benchmarks::filter_bank(), 128);
}

#[test]
fn vocoder_pipeline_is_deterministic() {
    check(&streamlin::benchmarks::vocoder(), 64);
}

#[test]
fn oversampler_pipeline_is_deterministic() {
    check(&streamlin::benchmarks::oversampler(), 512);
}

#[test]
fn dtoa_pipeline_falls_back_identically() {
    // dtoa has a noise-shaping feedback loop: no static plan exists, and
    // `profile_threads` must run the dynamic fallback for every thread
    // count with identical results.
    check(&streamlin::benchmarks::dtoa(), 256);
}
