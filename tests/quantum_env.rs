//! Pins the handling of `STREAMLIN_CYCLE_QUANTUM` overrides: an invalid
//! value must never be silently swallowed — the CLI warns (once) and
//! falls back to the default, the daemon refuses the `open` with a
//! structured `bad_request` — while explicit quantum knobs always win
//! without consulting the environment.
//!
//! Every test passes the variable to a subprocess via `Command::env`,
//! so nothing here mutates this process's environment (the suites can
//! run in parallel).

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use streamlin_support::json::{self, Json};

const PROGRAM: &str = "void->void pipeline Main { add S(); add K(); } \
     void->float filter S { work push 1 { push(1.0); } } \
     float->void filter K { work pop 1 { println(pop()); } }";

fn streamlinc(quantum_env: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_streamlinc"))
        .args(["assets/fir.str", "-n", "8", "--threads", "2", "--quiet"])
        .env("STREAMLIN_CYCLE_QUANTUM", quantum_env)
        .output()
        .expect("binary runs")
}

#[test]
fn cli_warns_once_and_falls_back_on_invalid_quantum_env() {
    let out = streamlinc("banana");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::str::from_utf8(&out.stdout).unwrap().lines().count(),
        8,
        "run must still produce its outputs"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr
            .lines()
            .filter(|l| l.contains("ignoring invalid quantum override"))
            .count(),
        1,
        "exactly one warning expected, stderr: {stderr}"
    );
    assert!(
        stderr.contains("STREAMLIN_CYCLE_QUANTUM"),
        "warning should name the variable: {stderr}"
    );
}

#[test]
fn cli_is_silent_on_valid_quantum_env() {
    let out = streamlinc("8");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("quantum"),
        "no warning for a valid value: {stderr}"
    );
}

#[test]
fn daemon_refuses_open_under_invalid_quantum_env() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_streamlind"))
        .args(["--workers", "2"])
        .env("STREAMLIN_CYCLE_QUANTUM", "0")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn streamlind");
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let mut roundtrip = |req: String| -> Json {
        writeln!(stdin, "{req}").expect("write request");
        let line = lines.next().expect("daemon answered").expect("read line");
        json::parse(&line).expect("response parses")
    };

    // Without an explicit quantum the bad environment value is a
    // structured refusal naming the variable.
    let open = roundtrip(format!(
        "{{\"op\":\"open\",\"id\":\"a\",\"program\":\"{PROGRAM}\"}}"
    ));
    assert_eq!(open.get("ok"), Some(&Json::Bool(false)), "{open:?}");
    assert_eq!(
        open.get("error").and_then(Json::as_str),
        Some("bad_request"),
        "{open:?}"
    );
    assert!(
        open.get("detail")
            .and_then(Json::as_str)
            .is_some_and(|d| d.contains("STREAMLIN_CYCLE_QUANTUM")),
        "detail should name the variable: {open:?}"
    );

    // An explicit per-stream quantum never consults the environment.
    let open = roundtrip(format!(
        "{{\"op\":\"open\",\"id\":\"a\",\"program\":\"{PROGRAM}\",\"quantum\":4}}"
    ));
    assert_eq!(open.get("ok"), Some(&Json::Bool(true)), "{open:?}");
    let read = roundtrip("{\"op\":\"read\",\"id\":\"a\",\"n\":4}".to_string());
    assert_eq!(read.get("ok"), Some(&Json::Bool(true)), "{read:?}");

    let bye = roundtrip("{\"op\":\"shutdown\"}".to_string());
    assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
    drop(stdin);
    child.wait().expect("daemon exits");
}
