//! Property test for the extraction analysis (§3.2): generate random
//! linear work functions as *source text*, and check the extracted node's
//! firing semantics against the runtime interpreter executing the same
//! program — analysis and execution must agree item-for-item.

use proptest::prelude::*;
use streamlin::core::combine::analyze_graph;
use streamlin::core::opt::OptStream;
use streamlin::graph::elaborate;
use streamlin::lang::parse;
use streamlin::runtime::measure::profile;
use streamlin::runtime::MatMulStrategy;

/// A random affine work function: for each output, a sum of
/// `coeff * peek(i)` terms plus a constant.
#[derive(Debug, Clone)]
struct RandFilter {
    peek: usize,
    pop: usize,
    terms: Vec<Vec<(usize, i32)>>,
    offsets: Vec<i32>,
}

fn arb_filter() -> impl Strategy<Value = RandFilter> {
    (1usize..=5, 1usize..=3).prop_flat_map(|(peek, push)| {
        let pop = 1usize..=peek;
        let terms = proptest::collection::vec(
            proptest::collection::vec((0..peek, -3..=3i32), 0..=peek),
            push,
        );
        let offsets = proptest::collection::vec(-2..=2i32, push);
        (Just(peek), pop, terms, offsets).prop_map(|(peek, pop, terms, offsets)| RandFilter {
            peek,
            pop,
            terms,
            offsets,
        })
    })
}

impl RandFilter {
    fn render(&self) -> String {
        let mut body = String::new();
        for (j, terms) in self.terms.iter().enumerate() {
            let mut expr = format!("{}", self.offsets[j]);
            for (pos, coeff) in terms {
                expr.push_str(&format!(" + {coeff} * peek({pos})"));
            }
            body.push_str(&format!("push({expr});\n"));
        }
        for _ in 0..self.pop {
            body.push_str("pop();\n");
        }
        format!(
            "void->void pipeline Main {{ add Src(); add F(); add Sink(); }}
             void->float filter Src {{ float x; work push 1 {{ push(sin(x++)); }} }}
             float->float filter F {{
                 work peek {} pop {} push {} {{
                     {body}
                 }}
             }}
             float->void filter Sink {{ work pop 1 {{ println(pop()); }} }}",
            self.peek,
            self.pop,
            self.terms.len(),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn extraction_agrees_with_interpretation(f in arb_filter()) {
        let program = parse(&f.render()).unwrap();
        let graph = elaborate(&program).unwrap();
        let analysis = analyze_graph(&graph);
        // The generated filter is affine by construction: extraction must
        // find it (source and sink are the non-linear ones).
        prop_assert_eq!(analysis.linear_count(), 1);

        let interp = profile(&OptStream::from_graph(&graph), 64, MatMulStrategy::Unrolled).unwrap();
        let node_based = profile(
            &streamlin::core::combine::replace(
                &graph,
                &analysis,
                &streamlin::core::combine::ReplaceOptions::per_filter(),
            ),
            64,
            MatMulStrategy::Unrolled,
        )
        .unwrap();
        prop_assert_eq!(interp.outputs.len(), node_based.outputs.len());
        for (a, b) in interp.outputs.iter().zip(&node_based.outputs) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
