//! Scheduler equivalence: for every benchmark program and every
//! optimization configuration, the compiled static plan produces printed
//! output **bit-identical** to the data-driven scheduler. The two engines
//! share firing semantics (same interpreter, same kernels, same
//! accumulation order in the batched linear path), so equality here is
//! exact — `f64::to_bits`, not a tolerance.

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions, ReplaceTarget};
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::core::OptStream;
use streamlin::runtime::measure::{profile_mode, ExecMode, Scheduler};
use streamlin::runtime::MatMulStrategy;

/// CI runs this suite once per execution mode: `STREAMLIN_TEST_MODE=fast`
/// selects the uncounted production path, which must print the same bits
/// under either scheduler just like the measured path does.
fn test_mode() -> ExecMode {
    match std::env::var("STREAMLIN_TEST_MODE").as_deref() {
        Ok("fast") => ExecMode::Fast,
        _ => ExecMode::Measured,
    }
}

/// `STREAMLIN_TEST_THREADS=n` routes the static side of the comparison
/// through the pipeline-parallel executor with at most `n` stages — the
/// data-driven scheduler must still see the same bits (CI runs the suite
/// once more with 2 threads).
fn test_threads() -> Option<usize> {
    std::env::var("STREAMLIN_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// `STREAMLIN_TEST_FISSION=w` additionally fisses the dominant node at
/// width `w` on the static side (a no-op where the pass refuses) — the
/// dynamic scheduler must still see identical bits.
fn test_fission() -> streamlin::runtime::fission::Fission {
    match std::env::var("STREAMLIN_TEST_FISSION")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(w) if w > 1 => streamlin::runtime::fission::Fission::Width(w),
        _ => streamlin::runtime::fission::Fission::Off,
    }
}

fn configs(bench: &streamlin::benchmarks::Benchmark) -> Vec<(&'static str, OptStream)> {
    let analysis = analyze_graph(bench.graph());
    vec![
        (
            "baseline",
            replace(bench.graph(), &analysis, &ReplaceOptions::per_filter()),
        ),
        (
            "linear",
            replace(bench.graph(), &analysis, &ReplaceOptions::maximal_linear()),
        ),
        (
            "freq",
            replace(bench.graph(), &analysis, &ReplaceOptions::maximal_freq()),
        ),
        (
            "redund",
            replace(
                bench.graph(),
                &analysis,
                &ReplaceOptions {
                    combine: true,
                    target: ReplaceTarget::Redund,
                },
            ),
        ),
        (
            "autosel",
            select(
                bench.graph(),
                &analysis,
                &CostModel::default(),
                &SelectOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
            .opt,
        ),
    ]
}

fn check(bench: &streamlin::benchmarks::Benchmark, outputs: usize) {
    for (label, opt) in configs(bench) {
        let mode = test_mode();
        let dynamic = profile_mode(
            &opt,
            outputs,
            MatMulStrategy::Unrolled,
            Scheduler::Dynamic,
            mode,
        )
        .unwrap_or_else(|e| panic!("{} {label} dynamic: {e}", bench.name()));
        // Feedback programs have no static plan; `Auto` must still run
        // them (via the fallback) with identical output.
        let sched = if opt.has_feedback() {
            Scheduler::Auto
        } else {
            Scheduler::Static
        };
        let staticp = match (test_threads(), test_fission()) {
            (None, streamlin::runtime::fission::Fission::Off) => {
                profile_mode(&opt, outputs, MatMulStrategy::Unrolled, sched, mode)
            }
            (threads, fission) => streamlin::runtime::measure::profile_fission(
                &opt,
                outputs,
                MatMulStrategy::Unrolled,
                sched,
                mode,
                threads.unwrap_or(1),
                fission,
            ),
        }
        .unwrap_or_else(|e| panic!("{} {label} static: {e}", bench.name()));
        if !opt.has_feedback() {
            assert_eq!(
                staticp.sched,
                Scheduler::Static,
                "{} {label}: expected a compiled plan",
                bench.name()
            );
        }
        assert_eq!(
            dynamic.outputs.len(),
            staticp.outputs.len(),
            "{} {label}: output counts differ",
            bench.name()
        );
        for (i, (a, b)) in dynamic.outputs.iter().zip(&staticp.outputs).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} {label}: output {i} differs: {a} (dynamic) vs {b} (static)",
                bench.name()
            );
        }
    }
}

#[test]
fn fir_static_plan_is_bit_identical() {
    check(&streamlin::benchmarks::fir(64), 512);
}

#[test]
fn rate_convert_static_plan_is_bit_identical() {
    check(&streamlin::benchmarks::rate_convert(), 256);
}

#[test]
fn target_detect_static_plan_is_bit_identical() {
    check(&streamlin::benchmarks::target_detect(), 256);
}

#[test]
fn fm_radio_static_plan_is_bit_identical() {
    check(&streamlin::benchmarks::fm_radio(), 128);
}

#[test]
fn radar_static_plan_is_bit_identical() {
    check(&streamlin::benchmarks::radar(8, 2), 64);
}

#[test]
fn filter_bank_static_plan_is_bit_identical() {
    check(&streamlin::benchmarks::filter_bank(), 128);
}

#[test]
fn vocoder_static_plan_is_bit_identical() {
    check(&streamlin::benchmarks::vocoder(), 64);
}

#[test]
fn oversampler_static_plan_is_bit_identical() {
    check(&streamlin::benchmarks::oversampler(), 512);
}

#[test]
fn dtoa_static_plan_is_bit_identical() {
    // dtoa has a noise-shaping feedback loop: no static plan exists, and
    // `Auto` must transparently run the dynamic fallback.
    check(&streamlin::benchmarks::dtoa(), 256);
}

#[test]
fn every_feedback_free_benchmark_compiles_a_plan() {
    for b in streamlin::benchmarks::all_default() {
        let analysis = analyze_graph(b.graph());
        let opt = replace(b.graph(), &analysis, &ReplaceOptions::per_filter());
        let prof = profile_mode(
            &opt,
            64,
            MatMulStrategy::Unrolled,
            Scheduler::Auto,
            test_mode(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        let expected = if opt.has_feedback() {
            Scheduler::Dynamic
        } else {
            Scheduler::Static
        };
        assert_eq!(prof.sched, expected, "{}", b.name());
    }
}
