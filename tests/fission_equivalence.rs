//! Data-parallel fission determinism: for every benchmark program,
//! running with `--fission {off, 2, 4}` produces printed output
//! **bit-identical** to the unfissed static plan, and — because the
//! synthesized splitter/joiner move items without arithmetic, priming
//! firings run uncounted, the workers perform exactly the original
//! node's firings, and the pipeline coordinator quantizes every run to
//! the same number of original steady cycles — identical operation
//! tallies and firing counts across every fission width, including
//! width 1 (no fission).
//!
//! Programs whose dominant node is not safely duplicable (stateful
//! filters, printers) simply run unfissed — the assertions then pin that
//! the pass is a clean no-op. Feedback programs (dtoa) have no static
//! plan at all; fission must refuse and the dynamic fallback must still
//! match. Direct refusal unit tests for stateful filters and feedback
//! loops live at the bottom.

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions};
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::core::OptStream;
use streamlin::runtime::fission::{fissability, Fission};
use streamlin::runtime::measure::{profile_fission, ExecMode, Scheduler};
use streamlin::runtime::MatMulStrategy;

/// `STREAMLIN_TEST_THREADS=n` sets the pipeline stage budget the fissed
/// graphs run under (CI exercises 2); the default also uses 2 so the
/// fission workers actually land in different stages.
fn test_threads() -> usize {
    std::env::var("STREAMLIN_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

fn configs(bench: &streamlin::benchmarks::Benchmark) -> Vec<(&'static str, OptStream)> {
    let analysis = analyze_graph(bench.graph());
    vec![
        (
            "baseline",
            replace(bench.graph(), &analysis, &ReplaceOptions::per_filter()),
        ),
        (
            "autosel",
            select(
                bench.graph(),
                &analysis,
                &CostModel::default(),
                &SelectOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
            .opt,
        ),
    ]
}

/// Runs the width sweep for one benchmark; returns true if fission
/// actually engaged for at least one (config, width) combination.
fn check(bench: &streamlin::benchmarks::Benchmark, outputs: usize) -> bool {
    let threads = test_threads();
    let mut engaged = false;
    for (label, opt) in configs(bench) {
        for mode in [ExecMode::Measured, ExecMode::Fast] {
            let reference = profile_fission(
                &opt,
                outputs,
                MatMulStrategy::Unrolled,
                Scheduler::Auto,
                mode,
                threads,
                Fission::Off,
            )
            .unwrap_or_else(|e| panic!("{} {label} unfissed: {e}", bench.name()));
            assert_eq!(reference.fission, 1);

            for width in [2usize, 4] {
                let prof = profile_fission(
                    &opt,
                    outputs,
                    MatMulStrategy::Unrolled,
                    Scheduler::Auto,
                    mode,
                    threads,
                    Fission::Width(width),
                )
                .unwrap_or_else(|e| panic!("{} {label} fission={width}: {e}", bench.name()));
                engaged |= prof.fission > 1;
                assert_eq!(
                    prof.sched,
                    reference.sched,
                    "{} {label} fission={width}: scheduler drifted",
                    bench.name()
                );
                assert_eq!(
                    prof.outputs.len(),
                    reference.outputs.len(),
                    "{} {label} fission={width}: output counts differ",
                    bench.name()
                );
                for (i, (a, b)) in reference.outputs.iter().zip(&prof.outputs).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} {label} {} fission={width}: output {i} differs: {a} vs {b}",
                        bench.name(),
                        mode.label()
                    );
                }
                assert_eq!(
                    reference.firings,
                    prof.firings,
                    "{} {label} {}: firings differ at fission={width}",
                    bench.name(),
                    mode.label()
                );
                if mode == ExecMode::Measured {
                    assert_eq!(
                        reference.ops,
                        prof.ops,
                        "{} {label}: tallies differ at fission={width}",
                        bench.name()
                    );
                }
            }
        }
    }
    engaged
}

#[test]
fn fir_fission_is_deterministic_and_engages() {
    // FIR's dominant node is duplicable in every configuration (the
    // direct linear kernel under baseline, the optimized frequency stage
    // under autosel), so fission must actually fire here.
    assert!(check(&streamlin::benchmarks::fir(64), 512));
}

#[test]
fn rate_convert_fission_is_deterministic() {
    check(&streamlin::benchmarks::rate_convert(), 256);
}

#[test]
fn target_detect_fission_is_deterministic() {
    check(&streamlin::benchmarks::target_detect(), 256);
}

#[test]
fn fm_radio_fission_is_deterministic() {
    check(&streamlin::benchmarks::fm_radio(), 128);
}

#[test]
fn radar_fission_is_deterministic() {
    check(&streamlin::benchmarks::radar(8, 2), 64);
}

#[test]
fn filter_bank_fission_is_deterministic() {
    check(&streamlin::benchmarks::filter_bank(), 128);
}

#[test]
fn vocoder_fission_is_deterministic() {
    check(&streamlin::benchmarks::vocoder(), 64);
}

#[test]
fn oversampler_fission_is_deterministic() {
    check(&streamlin::benchmarks::oversampler(), 512);
}

#[test]
fn dtoa_fission_refuses_feedback_and_falls_back_identically() {
    // dtoa has a noise-shaping feedback loop: no static plan exists, so
    // fission must refuse (no plan to read firings from) and every
    // width must run the identical single-threaded dynamic fallback.
    assert!(!check(&streamlin::benchmarks::dtoa(), 256));
}

// ---- refusal unit tests -----------------------------------------------------

fn flat_for(src: &str) -> streamlin::runtime::flat::FlatGraph {
    let p = streamlin::lang::parse(src).unwrap();
    let g = streamlin::graph::elaborate(&p).unwrap();
    streamlin::runtime::flat::flatten(&OptStream::from_graph(&g), MatMulStrategy::Unrolled).unwrap()
}

#[test]
fn stateful_filters_are_refused_fission() {
    let flat = flat_for(
        "void->void pipeline Main { add S(); add Acc(); add K(); }
         void->float filter S { float x; work push 1 { push(x++); } }
         float->float filter Acc {
             float total;
             work pop 1 push 1 { total += pop(); push(total); }
         }
         float->void filter K { work pop 1 { println(pop()); } }",
    );
    let acc = flat
        .nodes
        .iter()
        .find(|n| n.name.starts_with("Acc"))
        .expect("accumulator is in the flat graph");
    let err = fissability(acc).unwrap_err();
    assert!(err.contains("mutates persistent state"), "{err}");

    // A filter whose state lives in an array cell is just as stateful.
    let flat = flat_for(
        "void->void pipeline Main { add S(); add H(); add K(); }
         void->float filter S { float x; work push 1 { push(x++); } }
         float->float filter H {
             float[4] hist; int idx;
             work pop 1 push 1 { hist[idx] = pop(); idx = (idx + 1) % 4; push(hist[0]); }
         }
         float->void filter K { work pop 1 { println(pop()); } }",
    );
    let h = flat.nodes.iter().find(|n| n.name.starts_with("H")).unwrap();
    assert!(fissability(h).is_err());
}

#[test]
fn init_work_filters_are_refused_fission() {
    let flat = flat_for(
        "void->void pipeline Main { add S(); add P(); add K(); }
         void->float filter S { float x; work push 1 { push(x++); } }
         float->float filter P {
             initWork pop 2 push 1 { push(pop() + pop()); }
             work pop 1 push 1 { push(pop()); }
         }
         float->void filter K { work pop 1 { println(pop()); } }",
    );
    let p = flat.nodes.iter().find(|n| n.name.starts_with("P")).unwrap();
    let err = fissability(p).unwrap_err();
    assert!(err.contains("initWork"), "{err}");
}

#[test]
fn feedback_loops_are_refused_fission() {
    // The whole feedback program has no static plan, so profile-level
    // fission refuses; and the loop's member filters sit behind
    // `Scheduler::Auto`'s dynamic fallback where the pass never runs.
    let opt = {
        let p = streamlin::lang::parse(
            "void->void pipeline Main { add S(); add FB(); add K(); }
             void->float filter S { float x; work push 1 { push(x++); } }
             float->void filter K { work pop 1 { println(pop()); } }
             float->float feedbackloop FB {
                 join roundrobin(1, 1);
                 body Adder();
                 loop Id();
                 split duplicate;
                 enqueue 0;
             }
             float->float filter Adder { work pop 2 push 1 { push(pop() + pop()); } }
             float->float filter Id { work pop 1 push 1 { push(pop()); } }",
        )
        .unwrap();
        let g = streamlin::graph::elaborate(&p).unwrap();
        OptStream::from_graph(&g)
    };
    for width in [2usize, 4] {
        let prof = profile_fission(
            &opt,
            16,
            MatMulStrategy::Unrolled,
            Scheduler::Auto,
            ExecMode::Measured,
            2,
            Fission::Width(width),
        )
        .unwrap();
        assert_eq!(prof.fission, 1, "feedback graph must stay unfissed");
        assert_eq!(prof.sched, Scheduler::Dynamic);
        assert_eq!(&prof.outputs[..4], &[0.0, 1.0, 3.0, 6.0]);
    }
}
