//! Random-graph differential fuzzing of the whole execution stack.
//!
//! A property-based generator (built on the offline `proptest` stand-in
//! in `tools/proptest`) produces well-formed `void->void` programs —
//! pipelines and splitjoins of stateless, linear-extractable (FIR-like)
//! and stateful filters with random rates — and every generated program
//! is executed five ways:
//!
//! * the data-driven dynamic engine,
//! * the single-threaded static plan,
//! * the pipeline-parallel executor (`STREAMLIN_TEST_THREADS` stages),
//! * the pipeline executor with the dominant node fissed at widths 2
//!   and 4 (when the node is duplicable; the pass refusing is part of
//!   the property — the run must then be a clean no-op),
//! * the dynamic engine over the *fissed* graph (the synthesized
//!   splitter/worker/joiner nodes under data-driven scheduling),
//! * and the pipeline executor once more under **supervision with a
//!   seeded injected worker panic** — the run must complete (on the
//!   pipeline, or via the watchdog-guarded single-threaded fallback)
//!   with the same bits,
//! * plus a **bytecode ablation**: the single-threaded static plan run
//!   again with the bytecode tier disabled (`STREAMLIN_NO_BYTECODE`
//!   semantics via `set_bytecode_tier(false)`), pinning the flattened
//!   instruction dispatch against the tree-walking reference.
//!
//! The differential property: all of them print **bit-identical**
//! outputs, and — within the cycle-quantized pipeline family, where the
//! determinism contract promises it — operation tallies and firing
//! counts are identical across fission widths including width 1. (The
//! dynamic and single-threaded static engines stop at the exact output
//! target rather than on cycle boundaries, so their tallies measure a
//! different run length by design; their printed output is the pinned
//! surface.) Both optimization configs run: `interp` (no replacement —
//! the fission targets are stateless interpreted filters) and `autosel`
//! (linear extraction may turn them into linear/frequency kernels).

use std::time::Duration;

use proptest::prelude::*;
use streamlin::core::combine::analyze_graph;
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::core::OptStream;
use streamlin::runtime::fission::Fission;
use streamlin::runtime::measure::{
    profile_fission, profile_mode, profile_supervised, ExecMode, Scheduler, Supervision,
};
use streamlin::runtime::{set_bytecode_tier, MatMulStrategy};
use streamlin::support::InjectFaults;

/// FNV-1a over the rendered program: a deterministic per-case fault seed,
/// so every fuzz case drills a *different* (but reproducible) fault site.
fn fault_seed(src: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in src.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn test_threads() -> usize {
    std::env::var("STREAMLIN_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

// ---- program generator ------------------------------------------------------

/// One mid-pipeline stage of a generated program.
#[derive(Debug, Clone)]
enum Stage {
    /// FIR-like stateless filter: `push(Σ cᵢ·peek(iᵢ) + b)` per output.
    Stateless {
        peek: usize,
        pop: usize,
        push: usize,
        coeffs: Vec<i32>,
    },
    /// Stateful accumulator (must never be fissed).
    Stateful { pop: usize, push: usize },
    /// Heavy sliding-window filter (a loop over the whole peek window) —
    /// expensive enough to become the dominant node, and
    /// linear-extractable under `autosel`.
    Heavy { peek: usize, scale_q: i32 },
    /// Round-robin splitjoin of two stateless branches.
    SplitJoin {
        pops: [usize; 2],
        pushes: [usize; 2],
        coeffs: [i32; 2],
    },
    /// Occasionally-uncertifiable filter: a state-guarded extra `push`
    /// sits behind a threshold the run never reaches, so the static
    /// analysis cannot certify the push rate (range `[push, push+1]`)
    /// and the engines must keep it on the checked tape path — where it
    /// behaves exactly at the declared rate.
    Wobbly { pop: usize, push: usize, coeff: i32 },
}

#[derive(Debug, Clone)]
struct Spec {
    stages: Vec<Stage>,
    /// Items the source pushes per firing.
    src_push: usize,
}

/// Renders a spec as StreamIt-dialect source. All coefficients are small
/// dyadic rationals, so the printed program round-trips exactly.
fn render(spec: &Spec) -> String {
    use std::fmt::Write as _;
    let mut adds = String::new();
    let mut decls = String::new();
    for (i, stage) in spec.stages.iter().enumerate() {
        let _ = write!(adds, " add F{i}();");
        match stage {
            Stage::Stateless {
                peek,
                pop,
                push,
                coeffs,
            } => {
                let mut body = String::new();
                for j in 0..*push {
                    let mut terms = Vec::new();
                    for (t, c) in coeffs.iter().enumerate() {
                        let pos = (t * 3 + j) % peek;
                        terms.push(format!("{}.0 * 0.25 * peek({pos})", c));
                    }
                    let _ = write!(body, "push({} + {}.5); ", terms.join(" + "), j);
                }
                for _ in 0..*pop {
                    body.push_str("pop(); ");
                }
                let _ = writeln!(
                    decls,
                    "float->float filter F{i} {{ work peek {peek} pop {pop} push {push} {{ {body} }} }}"
                );
            }
            Stage::Stateful { pop, push } => {
                let mut body = String::from("acc = acc * 0.5 + pop(); ");
                for _ in 1..*pop {
                    body.push_str("acc += pop(); ");
                }
                for j in 0..*push {
                    let _ = write!(body, "push(acc + {j}.0); ");
                }
                let _ = writeln!(
                    decls,
                    "float->float filter F{i} {{ float acc; work pop {pop} push {push} {{ {body} }} }}"
                );
            }
            Stage::Heavy { peek, scale_q } => {
                let _ = write!(
                    decls,
                    "float->float filter F{i} {{
                         work peek {peek} pop 1 push 1 {{
                             float s = 0;
                             for (int k = 0; k < {peek}; k++) s += ({scale_q}.0 * 0.125) * peek(k);
                             push(s);
                             pop();
                         }}
                     }}\n"
                );
            }
            Stage::SplitJoin {
                pops,
                pushes,
                coeffs,
            } => {
                let _ = write!(
                    decls,
                    "float->float splitjoin F{i} {{
                         split roundrobin({}, {});
                         add B{i}a(); add B{i}b();
                         join roundrobin({}, {});
                     }}\n",
                    pops[0], pops[1], pushes[0], pushes[1]
                );
                for (tag, (o, (u, c))) in ["a", "b"]
                    .iter()
                    .zip(pops.iter().zip(pushes.iter().zip(coeffs.iter())))
                {
                    let mut body = String::new();
                    for j in 0..*u {
                        let _ = write!(body, "push({c}.0 * 0.5 * peek({})); ", j % o);
                    }
                    for _ in 0..*o {
                        body.push_str("pop(); ");
                    }
                    let _ = writeln!(
                        decls,
                        "float->float filter B{i}{tag} {{ work peek {o} pop {o} push {u} {{ {body} }} }}"
                    );
                }
            }
            Stage::Wobbly { pop, push, coeff } => {
                let mut body = String::new();
                for j in 0..*push {
                    let _ = write!(body, "push({coeff}.0 * 0.25 * peek({}) + {j}.5); ", j % pop);
                }
                body.push_str("if (t > 1000000000.0) push(t); t = t + 0.5; ");
                for _ in 0..*pop {
                    body.push_str("pop(); ");
                }
                let _ = writeln!(
                    decls,
                    "float->float filter F{i} {{ float t; work pop {pop} push {push} {{ {body} }} }}"
                );
            }
        }
    }
    let mut src = String::new();
    let _ = writeln!(
        src,
        "void->void pipeline Main {{ add Src();{adds} add Snk(); }}"
    );
    let mut pushes = String::new();
    for j in 0..spec.src_push {
        let _ = write!(pushes, "push(x * 0.75 - {j}.25); x = x + 1.0; ");
    }
    let _ = writeln!(
        src,
        "void->float filter Src {{ float x; work push {} {{ {pushes} }} }}",
        spec.src_push
    );
    src.push_str("float->void filter Snk { work pop 1 { println(pop()); } }\n");
    src.push_str(&decls);
    src
}

fn stage_strategy() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (
            2usize..6,
            1usize..3,
            1usize..3,
            proptest::collection::vec(-4i32..=4, 1..3)
        )
            .prop_map(|(peek_extra, pop, push, coeffs)| Stage::Stateless {
                peek: pop + peek_extra,
                pop,
                push,
                coeffs,
            }),
        (1usize..3, 1usize..3).prop_map(|(pop, push)| Stage::Stateful { pop, push }),
        (6usize..24, 1i32..5).prop_map(|(peek, scale_q)| Stage::Heavy { peek, scale_q }),
        (
            1usize..3,
            1usize..3,
            1usize..3,
            1usize..3,
            -3i32..=3,
            -3i32..=3
        )
            .prop_map(|(o1, o2, u1, u2, c1, c2)| Stage::SplitJoin {
                pops: [o1, o2],
                pushes: [u1, u2],
                coeffs: [c1, c2],
            }),
        (1usize..3, 1usize..3, -3i32..=3).prop_map(|(pop, push, coeff)| Stage::Wobbly {
            pop,
            push,
            coeff
        }),
    ]
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (proptest::collection::vec(stage_strategy(), 1..4), 1usize..3)
        .prop_map(|(stages, src_push)| Spec { stages, src_push })
}

// ---- the differential property ---------------------------------------------

fn assert_bits_equal(label: &str, reference: &[f64], got: &[f64]) {
    assert_eq!(reference.len(), got.len(), "{label}: output count differs");
    for (i, (a, b)) in reference.iter().zip(got).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: output {i} differs: {a} vs {b}"
        );
    }
}

/// Runs the differential property; returns true if fission engaged for
/// at least one (config, width) combination.
fn check_spec(spec: &Spec) -> bool {
    let mut engaged = false;
    let src = render(spec);
    let program = streamlin::lang::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let graph = streamlin::graph::elaborate(&program).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let analysis = analyze_graph(&graph);
    // Wobbly stages must have defeated certification (their push count is
    // state-dependent), everything else here is statically provable.
    for (i, stage) in spec.stages.iter().enumerate() {
        let decl = format!("F{i}");
        graph.for_each_filter(&mut |inst| {
            if inst.decl_name == decl {
                let certified = inst.facts.work.cert.is_some();
                match stage {
                    Stage::Wobbly { .. } => {
                        assert!(!certified, "{decl} must be uncertifiable\n{src}")
                    }
                    _ => assert!(
                        certified,
                        "{decl} must certify: {:?}\n{src}",
                        inst.facts.work.uncertified
                    ),
                }
            }
        });
    }
    let configs = vec![
        ("interp", OptStream::from_graph(&graph)),
        (
            "autosel",
            select(
                &graph,
                &analysis,
                &CostModel::default(),
                &SelectOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{e}\n{src}"))
            .opt,
        ),
    ];
    let outputs = 48;
    let threads = test_threads();
    for (label, opt) in configs {
        let dynamic = profile_mode(
            &opt,
            outputs,
            MatMulStrategy::Unrolled,
            Scheduler::Dynamic,
            ExecMode::Measured,
        )
        .unwrap_or_else(|e| panic!("{label} dynamic: {e}\n{src}"));
        let static1 = profile_mode(
            &opt,
            outputs,
            MatMulStrategy::Unrolled,
            Scheduler::Static,
            ExecMode::Measured,
        )
        .unwrap_or_else(|e| panic!("{label} static: {e}\n{src}"));
        assert_bits_equal(label, &dynamic.outputs, &static1.outputs);

        // The bytecode ablation family: the same plan with interpreted
        // work functions forced back onto the tree-walker must print the
        // same bits. (Restore the tier before unwrapping so an engine
        // error can't leave it disabled for concurrent tests.)
        set_bytecode_tier(false);
        let treewalk = profile_mode(
            &opt,
            outputs,
            MatMulStrategy::Unrolled,
            Scheduler::Static,
            ExecMode::Measured,
        );
        set_bytecode_tier(true);
        let treewalk = treewalk.unwrap_or_else(|e| panic!("{label} tree-walk: {e}\n{src}"));
        assert_bits_equal(label, &dynamic.outputs, &treewalk.outputs);
        assert_eq!(
            static1.ops, treewalk.ops,
            "{label}: tallies differ with bytecode disabled\n{src}"
        );

        // The cycle-quantized pipeline family: tallies and firing counts
        // must match across fission widths, including width 1.
        let unfissed = profile_fission(
            &opt,
            outputs,
            MatMulStrategy::Unrolled,
            Scheduler::Auto,
            ExecMode::Measured,
            threads,
            Fission::Off,
        )
        .unwrap_or_else(|e| panic!("{label} pipeline: {e}\n{src}"));
        assert_bits_equal(label, &dynamic.outputs, &unfissed.outputs);
        for width in [2usize, 4] {
            let fissed = profile_fission(
                &opt,
                outputs,
                MatMulStrategy::Unrolled,
                Scheduler::Auto,
                ExecMode::Measured,
                threads,
                Fission::Width(width),
            )
            .unwrap_or_else(|e| panic!("{label} fission={width}: {e}\n{src}"));
            engaged |= fissed.fission > 1;
            assert_bits_equal(label, &dynamic.outputs, &fissed.outputs);
            assert_eq!(
                unfissed.firings, fissed.firings,
                "{label}: firings differ at fission={width}\n{src}"
            );
            assert_eq!(
                unfissed.ops, fissed.ops,
                "{label}: tallies differ at fission={width}\n{src}"
            );
        }

        // Robustness: the same pipeline run once more with a seeded
        // worker panic under supervision. Whatever the fault hits (or
        // misses — a seed can land on a step the run never reaches), the
        // property is the same: the run completes, either on the pipeline
        // or via the single-threaded fallback, and prints the same bits.
        let fault =
            InjectFaults::parse(&format!("{}:panic", fault_seed(&src))).expect("valid fault spec");
        let sup = Supervision {
            watchdog: Some(Duration::from_secs(5)),
            fallback: true,
            quantum: 0,
        };
        let drilled = profile_supervised(
            &opt,
            outputs,
            MatMulStrategy::Unrolled,
            Scheduler::Auto,
            ExecMode::Measured,
            Some(threads),
            Fission::Off,
            &sup,
            Some(&fault),
            None,
        )
        .unwrap_or_else(|e| panic!("{label} fault drill: {e}\n{src}"));
        assert_bits_equal(label, &dynamic.outputs, &drilled.outputs);

        // The fissed graph under the *dynamic* scheduler: the synthesized
        // split/worker/join nodes must behave identically data-driven.
        let fissed_dynamic = profile_fission(
            &opt,
            outputs,
            MatMulStrategy::Unrolled,
            Scheduler::Dynamic,
            ExecMode::Measured,
            1,
            Fission::Width(2),
        )
        .unwrap_or_else(|e| panic!("{label} fissed dynamic: {e}\n{src}"));
        assert_bits_equal(label, &dynamic.outputs, &fissed_dynamic.outputs);
    }
    engaged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_graphs_agree_across_all_engines(spec in spec_strategy()) {
        check_spec(&spec);
    }
}

/// A pinned regression case: heavy dominant filter behind a splitjoin,
/// stateful neighbor — exercises refusal, fission and both overlap kinds
/// in one program.
#[test]
fn pinned_mixed_graph_agrees_and_fission_engages() {
    let engaged = check_spec(&Spec {
        stages: vec![
            Stage::SplitJoin {
                pops: [2, 1],
                pushes: [1, 2],
                coeffs: [2, -1],
            },
            Stage::Heavy {
                peek: 12,
                scale_q: 3,
            },
            Stage::Stateful { pop: 2, push: 1 },
        ],
        src_push: 2,
    });
    assert!(engaged, "the heavy sliding-window filter must be fissed");
}

/// A pinned case with an uncertifiable stage in the middle: the checked
/// tape path must coexist with certified neighbors on every engine.
#[test]
fn pinned_uncertifiable_stage_agrees_across_engines() {
    check_spec(&Spec {
        stages: vec![
            Stage::Stateless {
                peek: 3,
                pop: 1,
                push: 2,
                coeffs: vec![2, -1],
            },
            Stage::Wobbly {
                pop: 2,
                push: 1,
                coeff: 2,
            },
            Stage::Heavy {
                peek: 8,
                scale_q: 2,
            },
        ],
        src_push: 1,
    });
}
