//! Integration tests for the `streamlinc` command-line driver, run against
//! the checked-in benchmark sources in `assets/`.

use std::process::Command;

fn streamlinc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_streamlinc"))
}

#[test]
fn compiles_and_runs_the_fir_asset() {
    let out = streamlinc()
        .args(["assets/fir.str", "-n", "64", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines.len(), 64);
    for l in lines {
        l.parse::<f64>().expect("numeric program output");
    }
}

#[test]
fn all_configs_agree_on_rate_convert_asset() {
    let mut outputs = Vec::new();
    for config in ["baseline", "linear", "freq", "autosel"] {
        let out = streamlinc()
            .args([
                "assets/rateconvert.str",
                "--config",
                config,
                "-n",
                "128",
                "--quiet",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{config}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let vals: Vec<f64> = std::str::from_utf8(&out.stdout)
            .unwrap()
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        outputs.push((config, vals));
    }
    let (_, base) = &outputs[0];
    for (config, vals) in &outputs[1..] {
        assert_eq!(vals.len(), base.len(), "{config}");
        for (a, b) in base.iter().zip(vals) {
            assert!((a - b).abs() < 1e-6, "{config}: {a} vs {b}");
        }
    }
}

#[test]
fn schedulers_agree_on_the_fir_asset() {
    let run = |sched: &str| -> Vec<String> {
        let out = streamlinc()
            .args(["assets/fir.str", "--sched", sched, "-n", "64", "--quiet"])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{sched}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::str::from_utf8(&out.stdout)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    };
    let stat = run("static");
    let dyn_ = run("dynamic");
    assert_eq!(stat.len(), 64);
    // Textual equality is bit-level equality of the printed floats.
    assert_eq!(stat, dyn_);
}

#[test]
fn rejects_unknown_scheduler() {
    let out = streamlinc()
        .args(["assets/fir.str", "--sched", "nope"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn reports_errors_for_bad_programs() {
    let dir = std::env::temp_dir().join("streamlinc_bad.str");
    std::fs::write(&dir, "void->void pipeline Main { add Missing(); }").unwrap();
    let out = streamlinc()
        .arg(dir.to_str().unwrap())
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("Missing"));
}

#[test]
fn rejects_unknown_config() {
    let out = streamlinc()
        .args(["assets/fir.str", "--config", "nope"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn fission_flag_prints_identical_output_and_reports_the_decision() {
    // The unfissed run is the byte-exact reference for every width; the
    // emit-graph run must name the fissed node (FIR freq's dominant node
    // is duplicable, so `--fission 2` must engage, not silently no-op).
    let reference = streamlinc()
        .args([
            "assets/fir.str",
            "--config",
            "freq",
            "--threads",
            "2",
            "-n",
            "96",
            "--quiet",
        ])
        .output()
        .expect("binary runs");
    assert!(reference.status.success());
    for width in ["2", "4", "auto"] {
        let out = streamlinc()
            .args([
                "assets/fir.str",
                "--config",
                "freq",
                "--threads",
                "2",
                "--fission",
                width,
                "--emit-graph",
                "-n",
                "96",
                "--quiet",
            ])
            .output()
            .expect("binary runs");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "--fission {width}: {stderr}");
        assert_eq!(
            out.stdout, reference.stdout,
            "--fission {width}: output bytes differ from the unfissed run"
        );
        assert!(
            stderr.contains("fission: freq"),
            "--fission {width}: decision missing from --emit-graph: {stderr}"
        );
    }
}

#[test]
fn fault_injection_flag_degrades_to_identical_output() {
    // Clean pipeline run = the byte-exact reference.
    let reference = streamlinc()
        .args(["assets/fir.str", "--threads", "2", "-n", "64", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );

    // Same run with an injected worker panic: the supervisor must fall
    // back to the single-threaded static plan, say so on stderr, and
    // print byte-identical program output.
    let out = streamlinc()
        .args([
            "assets/fir.str",
            "--threads",
            "2",
            "--fault-inject",
            "7:panic@s1",
            "--watchdog-ms",
            "2000",
            "-n",
            "64",
        ])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(
        stderr.contains("degraded to the single-threaded static plan"),
        "degradation notice missing: {stderr}"
    );

    let quiet = streamlinc()
        .args([
            "assets/fir.str",
            "--threads",
            "2",
            "--fault-inject",
            "7:panic@s1",
            "-n",
            "64",
            "--quiet",
        ])
        .output()
        .expect("binary runs");
    assert!(
        quiet.status.success(),
        "{}",
        String::from_utf8_lossy(&quiet.stderr)
    );
    assert_eq!(
        quiet.stdout, reference.stdout,
        "faulted run must print byte-identical program output"
    );
}

#[test]
fn rejects_malformed_fault_specs() {
    let out = streamlinc()
        .args(["assets/fir.str", "--fault-inject", "notaspec"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("bad --fault-inject spec"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn lint_reports_multiple_spanned_diagnostics_in_one_run() {
    let out = streamlinc()
        .args(["assets/lintbait.str", "--lint", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut codes: Vec<&str> = stdout
        .lines()
        .filter_map(|l| {
            let start = l.find("warning[")? + "warning[".len();
            let end = l[start..].find(']')? + start;
            Some(&l[start..end])
        })
        .collect();
    codes.sort_unstable();
    codes.dedup();
    assert!(
        codes.len() >= 2,
        "expected at least 2 distinct lint codes, got {codes:?} from:\n{stdout}"
    );
    // Every diagnostic is spanned: `path:line:col:`.
    for l in stdout.lines() {
        assert!(
            l.starts_with("assets/lintbait.str:"),
            "unspanned diagnostic: {l}"
        );
        let mut parts = l.split(':');
        parts.next();
        parts.next().unwrap().parse::<u32>().expect("line number");
        parts.next().unwrap().parse::<u32>().expect("column");
    }
}

#[test]
fn deny_lints_fails_on_lintbait_and_passes_clean_assets() {
    let out = streamlinc()
        .args(["assets/lintbait.str", "--deny-lints", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "lintbait must fail --deny-lints");

    for asset in ["assets/fir.str", "assets/rateconvert.str"] {
        let out = streamlinc()
            .args([asset, "--deny-lints", "--quiet"])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{asset} should be lint-clean: {}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn lintbait_still_runs_despite_lints() {
    let out = streamlinc()
        .args(["assets/lintbait.str", "-n", "8", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::str::from_utf8(&out.stdout).unwrap().lines().count(), 8);
}

#[test]
fn provable_rate_violation_is_a_spanned_compile_error() {
    let dir = std::env::temp_dir().join("streamlinc-lint-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad_rate.str");
    std::fs::write(
        &path,
        "void->void pipeline Main { add S(); add K(); }\n\
         void->float filter S { work push 2 { push(1.0); } }\n\
         float->void filter K { work pop 1 { println(pop()); } }\n",
    )
    .unwrap();
    let out = streamlinc()
        .args([path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("declared push rate is 2 but the body always pushes 1"),
        "{stderr}"
    );
    assert!(stderr.contains("at 2:"), "span missing: {stderr}");
}
