//! Determinism guarantees: operation counts and program outputs are
//! identical across runs (wall time is the only nondeterministic
//! measurement), and the selection DP is stable.

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions};
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::runtime::measure::profile;
use streamlin::runtime::MatMulStrategy;

#[test]
fn operation_counts_are_reproducible() {
    let b = streamlin::benchmarks::fm_radio();
    let analysis = analyze_graph(b.graph());
    let opt = replace(b.graph(), &analysis, &ReplaceOptions::maximal_freq());
    let p1 = profile(&opt, 200, MatMulStrategy::Unrolled).unwrap();
    let p2 = profile(&opt, 200, MatMulStrategy::Unrolled).unwrap();
    assert_eq!(p1.ops, p2.ops);
    assert_eq!(p1.outputs, p2.outputs);
    assert_eq!(p1.firings, p2.firings);
}

#[test]
fn selection_is_stable() {
    let b = streamlin::benchmarks::vocoder();
    let analysis = analyze_graph(b.graph());
    let s1 = select(
        b.graph(),
        &analysis,
        &CostModel::default(),
        &SelectOptions::default(),
    )
    .unwrap();
    let s2 = select(
        b.graph(),
        &analysis,
        &CostModel::default(),
        &SelectOptions::default(),
    )
    .unwrap();
    assert_eq!(s1.cost, s2.cost);
    assert_eq!(s1.opt.describe(), s2.opt.describe());
}

#[test]
fn extraction_is_pure() {
    let b = streamlin::benchmarks::filter_bank();
    let a1 = analyze_graph(b.graph());
    let a2 = analyze_graph(b.graph());
    assert_eq!(a1.nodes.len(), a2.nodes.len());
    for (id, n1) in &a1.nodes {
        assert!(a2.nodes[id].approx_eq(n1, 0.0, 0.0));
    }
}
