//! Differential suite: the slot-resolved work-function interpreter
//! ([`streamlin::graph::lower`]) against the name-based AST interpreter
//! ([`streamlin::graph::exec`]) it replaced on the firing path.
//!
//! For **every filter instance of all nine benchmarks**, both interpreters
//! execute the same firing sequence over the same synthetic tape; pushed
//! values, printed values, pop counts, floating-point operation tallies
//! and the final persistent state must agree exactly. A third run with
//! counting hooks disabled (the `Fast`-mode analogue: identical code, the
//! tally is a no-op) must produce bit-identical values, and a
//! program-level check pins `Measured` vs `Fast` outputs across the full
//! engines.
//!
//! The **bytecode tier** ([`streamlin::graph::bytecode`]) is a third
//! compared family: the compiled form of every work phase (including its
//! fused dot-product loops) runs the same firings and must match the
//! tree-walkers on every dimension — values, pops, tallies, state.

use std::collections::HashMap;

use streamlin::benchmarks::Benchmark;
use streamlin::core::opt::OptStream;
use streamlin::graph::exec::{Env, Host, Interp};
use streamlin::graph::ir::FilterInst;
use streamlin::graph::lower::{SlotInterp, SlotStore};
use streamlin::graph::value::{Cell, EvalError, Value};
use streamlin::runtime::measure::{profile_mode, ExecMode, Scheduler};
use streamlin::runtime::MatMulStrategy;

/// Fuel per firing, matching the runtime engine's budget.
const FIRING_FUEL: u64 = 50_000_000;

/// Firings per filter (the first may be an `initWork` phase).
const FIRINGS: usize = 3;

/// Test host over a synthetic tape: counts operations when `count` is
/// set, mirroring the runtime's `Measured`/`Fast` split.
#[derive(Default)]
struct TapeHost {
    input: Vec<f64>,
    cursor: usize,
    pushed: Vec<f64>,
    printed: Vec<f64>,
    count: bool,
    adds: u64,
    muls: u64,
    divs: u64,
    others: u64,
}

impl Host for TapeHost {
    fn peek(&mut self, i: usize) -> Result<f64, EvalError> {
        self.input
            .get(self.cursor + i)
            .copied()
            .ok_or_else(|| EvalError::new("peek past end of test tape"))
    }
    fn pop(&mut self) -> Result<f64, EvalError> {
        let v = self.peek(0)?;
        self.cursor += 1;
        Ok(v)
    }
    fn push(&mut self, v: f64) -> Result<(), EvalError> {
        self.pushed.push(v);
        Ok(())
    }
    fn print(&mut self, v: Value, _newline: bool) -> Result<(), EvalError> {
        self.printed.push(v.as_f64()?);
        Ok(())
    }
    fn count_add(&mut self) {
        self.adds += self.count as u64;
    }
    fn count_mul(&mut self) {
        self.muls += self.count as u64;
    }
    fn count_div(&mut self) {
        self.divs += self.count as u64;
    }
    fn count_other(&mut self) {
        self.others += self.count as u64;
    }
}

/// A deterministic, nonzero, sign-varying tape.
fn tape(len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i * 37 + 11) % 97) as f64 / 13.0 - 3.5)
        .collect()
}

/// Tape length covering `FIRINGS` firings of the filter.
fn tape_len(inst: &FilterInst) -> usize {
    let init = inst.init_work.as_ref().unwrap_or(&inst.work);
    let pops = init.pop + (FIRINGS - 1) * inst.work.pop;
    pops + init.peek.max(inst.work.peek) + 4
}

struct RunResult {
    pushed: Vec<f64>,
    printed: Vec<f64>,
    popped: usize,
    tallies: [u64; 4],
    /// Final persistent state, name → cell.
    state: HashMap<String, Cell>,
}

/// Runs `FIRINGS` firings through the name-based AST interpreter.
fn run_name_based(inst: &FilterInst, input: &[f64]) -> RunResult {
    let mut state = inst.state.clone();
    let mut host = TapeHost {
        input: input.to_vec(),
        count: true,
        ..TapeHost::default()
    };
    for k in 0..FIRINGS {
        let phase = match (&inst.init_work, k) {
            (Some(iw), 0) => iw,
            _ => &inst.work,
        };
        let mut interp = Interp::new(&mut host, FIRING_FUEL);
        let mut env = Env::new(&mut state);
        interp
            .exec_block(&mut env, &phase.body)
            .unwrap_or_else(|e| panic!("{} (name-based): {}", inst.name, e.message));
    }
    RunResult {
        popped: host.cursor,
        pushed: host.pushed,
        printed: host.printed,
        tallies: [host.adds, host.muls, host.divs, host.others],
        state,
    }
}

/// Runs `FIRINGS` firings through the slot-resolved interpreter.
fn run_slot_based(inst: &FilterInst, input: &[f64], count: bool) -> RunResult {
    let lowered = &inst.lowered;
    let mut globals: Vec<Cell> = lowered
        .globals
        .iter()
        .map(|n| inst.state[n].clone())
        .collect();
    let mut frame = vec![
        Cell::Scalar(streamlin::lang::ast::DataType::Int, Value::Int(0));
        lowered.frame_slots()
    ];
    let mut host = TapeHost {
        input: input.to_vec(),
        count,
        ..TapeHost::default()
    };
    for k in 0..FIRINGS {
        let code = match (&lowered.init_work, k) {
            (Some(iw), 0) => iw,
            _ => &lowered.work,
        };
        let mut interp = SlotInterp::new(&mut host, FIRING_FUEL);
        let mut store = SlotStore {
            globals: &mut globals,
            frame: &mut frame,
        };
        interp
            .exec_work(&mut store, &code.body)
            .unwrap_or_else(|e| panic!("{} (slot-based): {}", inst.name, e.message));
    }
    let state = lowered.globals.iter().cloned().zip(globals).collect();
    RunResult {
        popped: host.cursor,
        pushed: host.pushed,
        printed: host.printed,
        tallies: [host.adds, host.muls, host.divs, host.others],
        state,
    }
}

/// Runs `FIRINGS` firings through the compiled bytecode tier.
fn run_bytecode(inst: &FilterInst, input: &[f64], count: bool) -> RunResult {
    let lowered = &inst.lowered;
    let mut globals: Vec<Cell> = lowered
        .globals
        .iter()
        .map(|n| inst.state[n].clone())
        .collect();
    let mut frame = vec![
        Cell::Scalar(streamlin::lang::ast::DataType::Int, Value::Int(0));
        lowered.frame_slots()
    ];
    let mut host = TapeHost {
        input: input.to_vec(),
        count,
        ..TapeHost::default()
    };
    for k in 0..FIRINGS {
        let code = match (&lowered.init_work, k) {
            (Some(iw), 0) => iw,
            _ => &lowered.work,
        };
        let mut store = SlotStore {
            globals: &mut globals,
            frame: &mut frame,
        };
        streamlin::graph::bytecode::exec(&code.code, &mut store, &mut host, FIRING_FUEL)
            .unwrap_or_else(|e| panic!("{} (bytecode): {}", inst.name, e.message));
    }
    let state = lowered.globals.iter().cloned().zip(globals).collect();
    RunResult {
        popped: host.cursor,
        pushed: host.pushed,
        printed: host.printed,
        tallies: [host.adds, host.muls, host.divs, host.others],
        state,
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn check_benchmark(bench: &Benchmark) {
    let mut filters = Vec::new();
    bench
        .graph()
        .for_each_filter(&mut |f| filters.push(f.clone()));
    assert!(!filters.is_empty());
    for inst in &filters {
        let input = tape(tape_len(inst));
        let name_based = run_name_based(inst, &input);
        let slot_counted = run_slot_based(inst, &input, true);
        let slot_uncounted = run_slot_based(inst, &input, false);

        let ctx = format!("{} :: {}", bench.name(), inst.name);
        // Outputs are bit-identical between the interpreters…
        assert_eq!(
            bits(&name_based.pushed),
            bits(&slot_counted.pushed),
            "{ctx}: pushed values diverge"
        );
        assert_eq!(
            bits(&name_based.printed),
            bits(&slot_counted.printed),
            "{ctx}: printed values diverge"
        );
        assert_eq!(
            name_based.popped, slot_counted.popped,
            "{ctx}: pop counts diverge"
        );
        // …the FLOP tallies agree…
        assert_eq!(
            name_based.tallies, slot_counted.tallies,
            "{ctx}: operation tallies diverge (adds/muls/divs/others)"
        );
        // …the persistent state ends identical…
        assert_eq!(
            name_based.state, slot_counted.state,
            "{ctx}: final filter state diverges"
        );
        // …and disabling the counting hooks (the Fast-mode analogue)
        // changes nothing about the values.
        assert_eq!(
            bits(&slot_counted.pushed),
            bits(&slot_uncounted.pushed),
            "{ctx}: counting changed pushed values"
        );
        assert_eq!(
            bits(&slot_counted.printed),
            bits(&slot_uncounted.printed),
            "{ctx}: counting changed printed values"
        );
        assert_eq!(
            slot_uncounted.tallies,
            [0, 0, 0, 0],
            "{ctx}: no-count tallied"
        );

        // The bytecode tier agrees with the tree-walkers on every
        // dimension, in both tally monomorphizations.
        let byte_counted = run_bytecode(inst, &input, true);
        let byte_uncounted = run_bytecode(inst, &input, false);
        assert_eq!(
            bits(&byte_counted.pushed),
            bits(&slot_counted.pushed),
            "{ctx}: bytecode pushed values diverge"
        );
        assert_eq!(
            bits(&byte_counted.printed),
            bits(&slot_counted.printed),
            "{ctx}: bytecode printed values diverge"
        );
        assert_eq!(
            byte_counted.popped, slot_counted.popped,
            "{ctx}: bytecode pop counts diverge"
        );
        assert_eq!(
            byte_counted.tallies, slot_counted.tallies,
            "{ctx}: bytecode operation tallies diverge"
        );
        assert_eq!(
            byte_counted.state, slot_counted.state,
            "{ctx}: bytecode final filter state diverges"
        );
        assert_eq!(
            bits(&byte_uncounted.pushed),
            bits(&byte_counted.pushed),
            "{ctx}: counting changed bytecode pushed values"
        );
        assert_eq!(
            byte_uncounted.tallies,
            [0, 0, 0, 0],
            "{ctx}: bytecode no-count tallied"
        );
    }
}

macro_rules! per_filter_differential {
    ($($test:ident => $bench:expr;)*) => {$(
        #[test]
        fn $test() {
            check_benchmark(&$bench);
        }
    )*}
}

per_filter_differential! {
    fir_filters_match => streamlin::benchmarks::fir(256);
    rate_convert_filters_match => streamlin::benchmarks::rate_convert();
    target_detect_filters_match => streamlin::benchmarks::target_detect();
    fm_radio_filters_match => streamlin::benchmarks::fm_radio();
    radar_filters_match => streamlin::benchmarks::radar(4, 4);
    filter_bank_filters_match => streamlin::benchmarks::filter_bank();
    vocoder_filters_match => streamlin::benchmarks::vocoder();
    oversampler_filters_match => streamlin::benchmarks::oversampler();
    dtoa_filters_match => streamlin::benchmarks::dtoa();
}

/// Program level: the fully interpreted configuration of every benchmark
/// prints bit-identical outputs under `Measured` and `Fast` (same
/// schedule, same slot-resolved interpreter, different tally
/// monomorphization).
#[test]
fn interpreted_programs_match_across_modes() {
    for bench in streamlin::benchmarks::all_default() {
        let opt = OptStream::from_graph(bench.graph());
        let n = bench.default_outputs().min(200);
        let measured = profile_mode(
            &opt,
            n,
            MatMulStrategy::Unrolled,
            Scheduler::Auto,
            ExecMode::Measured,
        )
        .unwrap_or_else(|e| panic!("{} measured: {e}", bench.name()));
        let fast = profile_mode(
            &opt,
            n,
            MatMulStrategy::Unrolled,
            Scheduler::Auto,
            ExecMode::Fast,
        )
        .unwrap_or_else(|e| panic!("{} fast: {e}", bench.name()));
        assert_eq!(
            bits(&measured.outputs),
            bits(&fast.outputs),
            "{}: interpreted outputs differ between modes",
            bench.name()
        );
        assert_eq!(fast.ops.flops(), 0, "{}: Fast mode tallied", bench.name());
        assert!(
            measured.ops.flops() > 0,
            "{}: Measured mode tallied nothing",
            bench.name()
        );
    }
}
