//! The service determinism contract: a program driven through the
//! `streamlind` daemon — in any interleaving with other streams, any
//! read batching, and across plan-cache hits — produces output
//! **bit-identical** to the one-shot profiler `streamlinc` runs.
//!
//! Values cross the wire as JSON numbers in Rust's shortest-round-trip
//! formatting, which parses back bit-exactly for finite `f64` (pinned by
//! `support::json`'s unit tests), so comparing wire values against
//! in-process profiles by `to_bits` is exact, not approximate.
//!
//! Also covered, per the PR 9 acceptance criteria: the plan-cache-hit
//! rerun (counters prove elaborate/lower/analyze/plan were skipped), the
//! per-stream fault drill (one stream's worker dies; only that stream
//! degrades, neighbors stay healthy and bit-identical), admission
//! saturation as a structured refusal (never a hang), and a subprocess
//! lifecycle smoke of the actual binary over stdio.

use std::io::{BufRead, BufReader, Write};

use streamlin::core::combine::analyze_graph;
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::runtime::fission::Fission;
use streamlin::runtime::measure::{profile_fission, profile_mode};
use streamlin::runtime::{ExecMode, Scheduler};
use streamlin::service::{Service, ServiceOpts};
use streamlin::support::json::{self, Json};

/// A service with a roomy admission budget (tests that exercise
/// saturation build their own tight one).
fn roomy() -> Service {
    Service::new(ServiceOpts {
        workers: 16,
        ..ServiceOpts::default()
    })
}

fn open_line(id: &str, program: &str, extra: &[(&str, Json)]) -> String {
    let mut pairs = vec![
        ("op", Json::Str("open".into())),
        ("id", Json::Str(id.into())),
        ("program", Json::Str(program.into())),
    ];
    pairs.extend(extra.iter().cloned());
    Json::obj(pairs).dump()
}

fn request_ok(svc: &Service, line: &str) -> Json {
    let resp = json::parse(&svc.handle(line)).expect("response parses");
    assert_eq!(
        resp.get("ok"),
        Some(&Json::Bool(true)),
        "request failed: {line} -> {resp:?}"
    );
    resp
}

/// Reads `n` values from a stream and appends them to `into`.
fn read_into(svc: &Service, id: &str, n: usize, into: &mut Vec<f64>) -> Json {
    let resp = request_ok(
        svc,
        &format!("{{\"op\":\"read\",\"id\":\"{id}\",\"n\":{n}}}"),
    );
    let values = resp.get("values").and_then(Json::as_arr).expect("values");
    assert_eq!(values.len(), n, "read returned a short batch");
    into.extend(values.iter().map(|v| v.as_num().expect("numeric value")));
    resp
}

fn assert_bits_equal(name: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{name}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{name}: value {i} differs ({g} vs {w})"
        );
    }
}

/// One-shot reference with the same knobs the daemon resolves.
fn reference(
    bench: &streamlin::benchmarks::Benchmark,
    n: usize,
    mode: ExecMode,
    threads: Option<usize>,
) -> Vec<f64> {
    let analysis = analyze_graph(bench.graph());
    let opt = select(
        bench.graph(),
        &analysis,
        &CostModel::default(),
        &SelectOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
    .opt;
    let prof = match threads {
        Some(t) => profile_fission(
            &opt,
            n,
            mode.default_strategy(),
            Scheduler::Auto,
            mode,
            t,
            Fission::Off,
        ),
        None => profile_mode(&opt, n, mode.default_strategy(), Scheduler::Auto, mode),
    }
    .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    assert_eq!(prof.outputs.len(), n, "{}: short reference", bench.name());
    prof.outputs
}

/// Non-finite samples must survive the wire. JSON has no spelling for
/// `inf`/`-inf`/`nan` — the writer degrades them to `null` — so the
/// protocol carries them as string sentinels (`proto::encode_sample`).
/// This pins the full round trip: a program whose arithmetic produces
/// every non-finite class, driven through the daemon, decodes back to
/// the one-shot profile (bit-identical for everything representable;
/// NaN compared by class, since the sentinel does not preserve payload
/// bits).
#[test]
fn non_finite_samples_survive_the_wire() {
    let program = "void->void pipeline Main { add S(); add K(); } \
         void->float filter S { int n; work push 1 { \
             float zero = 0; \
             if (n == 0) { push(1.0 / zero); } \
             if (n == 1) { push((0 - 1.0) / zero); } \
             if (n == 2) { push(sqrt(0 - 1.0)); } \
             if (n == 3) { push(2.5); } \
             n = (n + 1) % 4; } } \
         float->void filter K { work pop 1 { println(pop()); } }";
    let n = 8;

    // One-shot reference through the same selection the daemon runs.
    let parsed = streamlin::lang::parse(program).expect("parses");
    let graph = streamlin::graph::elaborate(&parsed).expect("elaborates");
    let analysis = analyze_graph(&graph);
    let opt = select(
        &graph,
        &analysis,
        &CostModel::default(),
        &SelectOptions::default(),
    )
    .expect("selects")
    .opt;
    let want = profile_mode(
        &opt,
        n,
        ExecMode::Fast.default_strategy(),
        Scheduler::Auto,
        ExecMode::Fast,
    )
    .expect("profiles")
    .outputs;
    assert!(
        want.iter().any(|v| v.is_infinite()) && want.iter().any(|v| v.is_nan()),
        "the program must actually produce non-finite samples: {want:?}"
    );

    let svc = roomy();
    request_ok(
        &svc,
        &open_line("nf", program, &[("mode", Json::Str("fast".into()))]),
    );
    let resp = request_ok(
        &svc,
        &format!("{{\"op\":\"read\",\"id\":\"nf\",\"n\":{n}}}"),
    );
    let values = resp.get("values").and_then(Json::as_arr).expect("values");
    assert_eq!(values.len(), n);
    let got: Vec<f64> = values
        .iter()
        .map(|v| streamlin::service::proto::decode_sample(v).expect("decodable sample"))
        .collect();
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        if w.is_nan() {
            assert!(g.is_nan(), "value {i}: expected NaN, got {g}");
        } else {
            assert_eq!(g.to_bits(), w.to_bits(), "value {i} differs ({g} vs {w})");
        }
    }
}

/// All nine paper benchmarks, single stream each, read in uneven batches
/// — bit-identical to the one-shot profiler — then reopened to pin the
/// plan-cache-hit rerun on every program (including DToA's feedback
/// loop, which runs data-driven).
#[test]
fn nine_benchmarks_single_stream_bit_identical_and_cache_hits() {
    let svc = roomy();
    for bench in streamlin::benchmarks::all_default() {
        let n = bench.default_outputs().min(200);
        let want = reference(&bench, n, ExecMode::Fast, None);
        let open = request_ok(
            &svc,
            &open_line(
                bench.name(),
                bench.source(),
                &[("mode", Json::Str("fast".into()))],
            ),
        );
        assert_eq!(
            open.get("cached"),
            Some(&Json::Bool(false)),
            "{}: first open must be a cold compile",
            bench.name()
        );
        let mut got = Vec::new();
        // Uneven batching: the value sequence must not depend on it.
        let mut remaining = n;
        for batch in [1usize, 7, 64].iter().cycle() {
            let batch = (*batch).min(remaining);
            if batch == 0 {
                break;
            }
            read_into(&svc, bench.name(), batch, &mut got);
            remaining -= batch;
        }
        assert_bits_equal(bench.name(), &got, &want);
        request_ok(
            &svc,
            &format!("{{\"op\":\"close\",\"id\":\"{}\"}}", bench.name()),
        );

        // Cache-hit rerun: same program and knobs, fresh stream state.
        let rerun_id = format!("{}-rerun", bench.name());
        let open = request_ok(
            &svc,
            &open_line(
                &rerun_id,
                bench.source(),
                &[("mode", Json::Str("fast".into()))],
            ),
        );
        assert_eq!(
            open.get("cached"),
            Some(&Json::Bool(true)),
            "{}: rerun must hit the plan cache",
            bench.name()
        );
        let m = 32.min(n);
        let mut again = Vec::new();
        read_into(&svc, &rerun_id, m, &mut again);
        assert_bits_equal(&format!("{} rerun", bench.name()), &again, &want[..m]);
        request_ok(&svc, &format!("{{\"op\":\"close\",\"id\":\"{rerun_id}\"}}"));
    }
    // Nine cold compiles, nine hits — the counters are the proof that
    // the reruns skipped the front end entirely.
    let stats = request_ok(&svc, "{\"op\":\"stats\"}");
    let cache = stats.get("cache").expect("cache stats");
    assert_eq!(cache.get("misses").and_then(Json::as_num), Some(9.0));
    assert_eq!(cache.get("hits").and_then(Json::as_num), Some(9.0));
}

/// Concurrent named streams — a 2-stage pipeline, a measured
/// single-threaded stream, and a second session of the *same* cached
/// pipeline program — interleaved request by request. Every stream's
/// output must equal its one-shot reference, invariant under the
/// interleaving.
#[test]
fn interleaved_streams_stay_bit_identical() {
    let svc = roomy();
    let fir = streamlin::benchmarks::fir(256);
    let radio = streamlin::benchmarks::fm_radio();
    let n = 120;
    let want_fir = reference(&fir, n, ExecMode::Fast, Some(2));
    let want_radio = reference(&radio, n, ExecMode::Measured, None);

    request_ok(
        &svc,
        &open_line(
            "a",
            fir.source(),
            &[
                ("mode", Json::Str("fast".into())),
                ("threads", Json::Num(2.0)),
            ],
        ),
    );
    request_ok(&svc, &open_line("b", radio.source(), &[]));
    let open_c = request_ok(
        &svc,
        &open_line(
            "c",
            fir.source(),
            &[
                ("mode", Json::Str("fast".into())),
                ("threads", Json::Num(2.0)),
            ],
        ),
    );
    assert_eq!(
        open_c.get("cached"),
        Some(&Json::Bool(true)),
        "same program and knobs share one artifact"
    );

    let mut got_a = Vec::new();
    let mut got_b = Vec::new();
    let mut got_c = Vec::new();
    // Deliberately unequal batches so the three streams are always at
    // different positions in their runs.
    while got_a.len() < n || got_b.len() < n || got_c.len() < n {
        if got_a.len() < n {
            read_into(&svc, "a", 8.min(n - got_a.len()), &mut got_a);
        }
        if got_b.len() < n {
            read_into(&svc, "b", 5.min(n - got_b.len()), &mut got_b);
        }
        if got_c.len() < n {
            read_into(&svc, "c", 13.min(n - got_c.len()), &mut got_c);
        }
    }
    assert_bits_equal("fir via pipeline stream a", &got_a, &want_fir);
    assert_bits_equal("fm_radio measured stream b", &got_b, &want_radio);
    assert_bits_equal("fir second session c", &got_c, &want_fir);
    for id in ["a", "b", "c"] {
        request_ok(&svc, &format!("{{\"op\":\"close\",\"id\":\"{id}\"}}"));
    }
    // All claims returned.
    let stats = request_ok(&svc, "{\"op\":\"stats\"}");
    let workers = stats.get("workers").expect("workers");
    assert_eq!(workers.get("in_use").and_then(Json::as_num), Some(0.0));
}

/// The per-stream fault drill: a seeded `die@s0` kills one stream's
/// stage-0 worker mid-run. That stream degrades onto the canonical
/// single-threaded plan — same values, bit for bit — while its neighbor
/// pipeline stream never notices, and the dead stream's surplus worker
/// claim returns to the admission budget.
#[test]
fn fault_injected_stream_degrades_alone() {
    let svc = roomy();
    let fir = streamlin::benchmarks::fir(64);
    let n = 150;
    let want = reference(&fir, n, ExecMode::Fast, Some(2));

    let victim_knobs = [
        ("mode", Json::Str("fast".into())),
        ("threads", Json::Num(2.0)),
        ("fault", Json::Str("7:die@s0".into())),
        ("watchdog_ms", Json::Num(1500.0)),
    ];
    request_ok(&svc, &open_line("victim", fir.source(), &victim_knobs));
    request_ok(
        &svc,
        &open_line(
            "bystander",
            fir.source(),
            &[
                ("mode", Json::Str("fast".into())),
                ("threads", Json::Num(2.0)),
            ],
        ),
    );

    let mut got_victim = Vec::new();
    let mut got_bystander = Vec::new();
    while got_victim.len() < n || got_bystander.len() < n {
        if got_victim.len() < n {
            read_into(
                &svc,
                "victim",
                25.min(n - got_victim.len()),
                &mut got_victim,
            );
        }
        if got_bystander.len() < n {
            read_into(
                &svc,
                "bystander",
                25.min(n - got_bystander.len()),
                &mut got_bystander,
            );
        }
    }
    assert_bits_equal("victim (degraded)", &got_victim, &want);
    assert_bits_equal("bystander", &got_bystander, &want);

    let close_victim = request_ok(&svc, "{\"op\":\"close\",\"id\":\"victim\"}");
    assert!(
        close_victim.get("degraded").is_some(),
        "the faulted stream must report its degradation: {close_victim:?}"
    );
    let close_bystander = request_ok(&svc, "{\"op\":\"close\",\"id\":\"bystander\"}");
    assert!(
        close_bystander.get("degraded").is_none(),
        "the neighbor must not degrade: {close_bystander:?}"
    );
}

/// Admission control: a saturated worker budget refuses new pipeline
/// streams with a structured error (fields and all), a bounded wait
/// times out to the same refusal, and closing a neighbor admits the
/// retry. Single-threaded streams still fit in the leftover budget.
#[test]
fn saturation_is_a_structured_refusal_never_a_hang() {
    let svc = Service::new(ServiceOpts {
        workers: 3,
        ..ServiceOpts::default()
    });
    let fir = streamlin::benchmarks::fir(64);
    let knobs = [
        ("mode", Json::Str("fast".into())),
        ("threads", Json::Num(2.0)),
    ];
    let open = request_ok(&svc, &open_line("first", fir.source(), &knobs));
    assert_eq!(open.get("workers").and_then(Json::as_num), Some(2.0));

    let resp = json::parse(&svc.handle(&open_line("second", fir.source(), &knobs))).unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(resp.get("error").and_then(Json::as_str), Some("saturated"));
    assert_eq!(resp.get("need").and_then(Json::as_num), Some(2.0));
    assert_eq!(resp.get("in_use").and_then(Json::as_num), Some(2.0));
    assert_eq!(resp.get("budget").and_then(Json::as_num), Some(3.0));

    // A bounded wait still refuses (nothing releases) instead of hanging.
    let mut wait_knobs = knobs.to_vec();
    wait_knobs.push(("wait_ms", Json::Num(50.0)));
    let resp = json::parse(&svc.handle(&open_line("second", fir.source(), &wait_knobs))).unwrap();
    assert_eq!(resp.get("error").and_then(Json::as_str), Some("saturated"));

    // The leftover budget still admits a single-threaded stream.
    request_ok(
        &svc,
        &open_line("small", fir.source(), &[("mode", Json::Str("fast".into()))]),
    );

    // Freeing the neighbor admits the retry.
    request_ok(&svc, "{\"op\":\"close\",\"id\":\"first\"}");
    request_ok(&svc, &open_line("second", fir.source(), &knobs));
    for id in ["second", "small"] {
        request_ok(&svc, &format!("{{\"op\":\"close\",\"id\":\"{id}\"}}"));
    }
}

/// Protocol robustness: malformed lines, unknown streams, duplicate
/// opens and compile errors are structured failures — the dispatcher
/// answers every line and never falls over.
#[test]
fn protocol_failures_are_structured() {
    let svc = roomy();
    let err = |line: &str| -> String {
        let resp = json::parse(&svc.handle(line)).expect("response parses");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{line}");
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .to_string()
    };
    assert_eq!(err("not json at all"), "bad_request");
    assert_eq!(
        err("{\"op\":\"read\",\"id\":\"ghost\",\"n\":1}"),
        "unknown_stream"
    );
    assert_eq!(err("{\"op\":\"close\",\"id\":\"ghost\"}"), "unknown_stream");
    assert_eq!(
        err(&open_line("bad", "void->void pipeline Main {", &[])),
        "compile_error"
    );
    let fir = streamlin::benchmarks::fir(16);
    request_ok(&svc, &open_line("dup", fir.source(), &[]));
    assert_eq!(
        err(&open_line("dup", fir.source(), &[])),
        "duplicate_stream"
    );
    request_ok(&svc, "{\"op\":\"close\",\"id\":\"dup\"}");
}

/// Stream ids name filesystem artifacts under `--trace-out`, so they are
/// confined to a single path component — an id that could traverse out
/// of the trace directory is refused before anything is compiled or run.
#[test]
fn traversal_stream_ids_are_refused() {
    let svc = roomy();
    let fir = streamlin::benchmarks::fir(16);
    for id in [
        "../../home/user/.bashrc",
        "a/b",
        "a\\b",
        "..",
        ".",
        "",
        "a b",
        "nul\u{0}byte",
    ] {
        let resp = json::parse(&svc.handle(&open_line(id, fir.source(), &[]))).unwrap();
        assert_eq!(
            resp.get("ok"),
            Some(&Json::Bool(false)),
            "id {id:?} must be refused"
        );
        assert_eq!(
            resp.get("error").and_then(Json::as_str),
            Some("bad_request"),
            "id {id:?} must be a bad_request"
        );
    }
    // The allowed punctuation still passes.
    request_ok(&svc, &open_line("ok-id_1.v2", fir.source(), &[]));
    request_ok(&svc, "{\"op\":\"close\",\"id\":\"ok-id_1.v2\"}");
}

/// Racing opens of one id (as concurrent TCP connections can issue):
/// exactly one wins, every loser backs out its ledger claim, and the
/// budget is fully restored once the winner closes — the TOCTOU
/// regression overwrote the winner's entry and leaked its claim,
/// shrinking the admission budget forever.
#[test]
fn racing_opens_of_one_id_admit_exactly_one_stream() {
    let svc = Service::new(ServiceOpts {
        workers: 8,
        ..ServiceOpts::default()
    });
    let fir = streamlin::benchmarks::fir(64);
    let knobs = [
        ("mode", Json::Str("fast".into())),
        ("threads", Json::Num(2.0)),
    ];
    for round in 0..4 {
        let id = format!("contended-{round}");
        let line = open_line(&id, fir.source(), &knobs);
        let wins = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let resp = json::parse(&svc.handle(&line)).expect("response parses");
                        resp.get("ok") == Some(&Json::Bool(true))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("opener thread"))
                .filter(|&won| won)
                .count()
        });
        assert_eq!(wins, 1, "exactly one open of `{id}` may win");
        request_ok(&svc, &format!("{{\"op\":\"close\",\"id\":\"{id}\"}}"));
        let stats = request_ok(&svc, "{\"op\":\"stats\"}");
        let workers = stats.get("workers").expect("workers");
        assert_eq!(
            workers.get("in_use").and_then(Json::as_num),
            Some(0.0),
            "round {round}: losing opens leaked ledger claims"
        );
        assert_eq!(
            stats.get("streams").and_then(Json::as_num),
            Some(0.0),
            "round {round}: stream table not empty"
        );
    }
}

/// Reads execute under per-stream locks, not the global table lock:
/// many client threads hammering their own streams concurrently (as TCP
/// connections do) stay deadlock-free and every stream remains
/// bit-identical to the one-shot reference.
#[test]
fn concurrent_reads_on_distinct_streams_stay_bit_identical() {
    let svc = roomy();
    let fir = streamlin::benchmarks::fir(64);
    let n = 96;
    let want = reference(&fir, n, ExecMode::Fast, None);
    // `Benchmark` holds `Rc`s, so threads share the source text only.
    let src = fir.source();
    std::thread::scope(|s| {
        for t in 0..4 {
            let (svc, want) = (&svc, &want);
            s.spawn(move || {
                let id = format!("par-{t}");
                request_ok(
                    svc,
                    &open_line(&id, src, &[("mode", Json::Str("fast".into()))]),
                );
                let mut got = Vec::new();
                while got.len() < n {
                    read_into(svc, &id, 7.min(n - got.len()), &mut got);
                }
                assert_bits_equal(&id, &got, want);
                request_ok(svc, &format!("{{\"op\":\"close\",\"id\":\"{id}\"}}"));
            });
        }
    });
    let stats = request_ok(&svc, "{\"op\":\"stats\"}");
    assert_eq!(stats.get("streams").and_then(Json::as_num), Some(0.0));
    let workers = stats.get("workers").expect("workers");
    assert_eq!(workers.get("in_use").and_then(Json::as_num), Some(0.0));
}

/// The plan-cache key excludes the execution mode (it only selects the
/// engine's tally; its one compile-time effect is the default matmul
/// strategy, which the resolved `matmul` field already captures): a
/// Measured open of a program compiled Fast with the same strategy hits
/// the cache instead of duplicating the artifact.
#[test]
fn fast_and_measured_share_one_cached_artifact() {
    let svc = roomy();
    let fir = streamlin::benchmarks::fir(64);
    request_ok(
        &svc,
        &open_line(
            "fast",
            fir.source(),
            &[
                ("mode", Json::Str("fast".into())),
                ("matmul", Json::Str("simd".into())),
            ],
        ),
    );
    let open = request_ok(
        &svc,
        &open_line(
            "measured",
            fir.source(),
            &[
                ("mode", Json::Str("measured".into())),
                ("matmul", Json::Str("simd".into())),
            ],
        ),
    );
    assert_eq!(
        open.get("cached"),
        Some(&Json::Bool(true)),
        "Fast and Measured with one matmul strategy must share the artifact"
    );
    for id in ["fast", "measured"] {
        request_ok(&svc, &format!("{{\"op\":\"close\",\"id\":\"{id}\"}}"));
    }
}

/// Lifecycle smoke of the actual binary over stdio: open → batched reads
/// → stats → close → shutdown, every response a parseable ok line, and
/// the values bit-identical to the in-process reference.
#[test]
fn daemon_binary_stdio_lifecycle() {
    let fir = streamlin::benchmarks::fir(64);
    let n = 48;
    let want = reference(&fir, n, ExecMode::Fast, None);

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_streamlind"))
        .args(["--workers", "4"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn streamlind");
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let mut roundtrip = |req: &str| -> Json {
        writeln!(stdin, "{req}").expect("write request");
        let line = lines.next().expect("daemon answered").expect("read line");
        json::parse(&line).expect("response parses")
    };

    let pong = roundtrip("{\"op\":\"ping\"}");
    assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));
    let open = roundtrip(&open_line(
        "s",
        fir.source(),
        &[("mode", Json::Str("fast".into()))],
    ));
    assert_eq!(open.get("ok"), Some(&Json::Bool(true)), "{open:?}");
    let mut got = Vec::new();
    for batch in [1, 16, 31] {
        let resp = roundtrip(&format!("{{\"op\":\"read\",\"id\":\"s\",\"n\":{batch}}}"));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        got.extend(
            resp.get("values")
                .and_then(Json::as_arr)
                .expect("values")
                .iter()
                .map(|v| v.as_num().unwrap()),
        );
    }
    assert_bits_equal("daemon stdio", &got, &want);
    let stats = roundtrip("{\"op\":\"stats\"}");
    assert_eq!(stats.get("streams").and_then(Json::as_num), Some(1.0));
    let close = roundtrip("{\"op\":\"close\",\"id\":\"s\"}");
    assert_eq!(
        close.get("delivered").and_then(Json::as_num),
        Some(n as f64)
    );
    let bye = roundtrip("{\"op\":\"shutdown\"}");
    assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
    drop(stdin);
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status: {status:?}");
}
