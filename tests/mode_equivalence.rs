//! Execution-mode equivalence over the full benchmark suite.
//!
//! Two guarantees pin the `Fast` production path to the `Measured`
//! experiment:
//!
//! * With the same matrix strategy, `Fast` ([`NoCount`]-monomorphized
//!   kernels, including the AVX dispatch where the CPU has it) prints
//!   **bit-identical** output to `Measured` — the zero-cost claim.
//! * The vectorized `Simd` strategy agrees with the paper's `Unrolled`
//!   strategy to within 1e-9 relative tolerance — its accumulation order
//!   differs (eight partial sums per output), its math does not.
//!
//! [`NoCount`]: streamlin::support::NoCount

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions};
use streamlin::runtime::measure::{profile_mode, ExecMode, Scheduler};
use streamlin::runtime::MatMulStrategy;

fn outputs_for(name: &str) -> usize {
    match name {
        "Radar" | "Vocoder" => 64,
        "FMRadio" | "FilterBank" => 128,
        _ => 256,
    }
}

#[test]
fn fast_mode_is_bit_identical_to_measured() {
    for bench in streamlin::benchmarks::all_default() {
        let analysis = analyze_graph(bench.graph());
        let n = outputs_for(bench.name());
        for opts in [
            ReplaceOptions::per_filter(),
            ReplaceOptions::maximal_linear(),
        ] {
            let opt = replace(bench.graph(), &analysis, &opts);
            let strategy = MatMulStrategy::Unrolled;
            let measured = profile_mode(&opt, n, strategy, Scheduler::Auto, ExecMode::Measured)
                .unwrap_or_else(|e| panic!("{} measured: {e}", bench.name()));
            let fast = profile_mode(&opt, n, strategy, Scheduler::Auto, ExecMode::Fast)
                .unwrap_or_else(|e| panic!("{} fast: {e}", bench.name()));
            assert_eq!(
                measured.outputs.len(),
                fast.outputs.len(),
                "{}",
                bench.name()
            );
            for (i, (a, b)) in measured.outputs.iter().zip(&fast.outputs).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: output {i} differs: {a} (measured) vs {b} (fast)",
                    bench.name()
                );
            }
            // Fast mode reports no tallies; measured mode reports the run's.
            assert_eq!(fast.ops.flops(), 0, "{}", bench.name());
            assert_eq!(fast.mode, ExecMode::Fast);
        }
    }
}

#[test]
fn simd_strategy_agrees_with_unrolled_on_every_benchmark() {
    for bench in streamlin::benchmarks::all_default() {
        let analysis = analyze_graph(bench.graph());
        let n = outputs_for(bench.name());
        let opt = replace(bench.graph(), &analysis, &ReplaceOptions::maximal_linear());
        let unrolled = profile_mode(
            &opt,
            n,
            MatMulStrategy::Unrolled,
            Scheduler::Auto,
            ExecMode::Fast,
        )
        .unwrap_or_else(|e| panic!("{} unrolled: {e}", bench.name()));
        let simd = profile_mode(
            &opt,
            n,
            MatMulStrategy::Simd,
            Scheduler::Auto,
            ExecMode::Fast,
        )
        .unwrap_or_else(|e| panic!("{} simd: {e}", bench.name()));
        assert_eq!(
            unrolled.outputs.len(),
            simd.outputs.len(),
            "{}",
            bench.name()
        );
        for (i, (a, b)) in unrolled.outputs.iter().zip(&simd.outputs).enumerate() {
            let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
            assert!(
                (a - b).abs() <= tol,
                "{}: output {i}: {a} (unrolled) vs {b} (simd)",
                bench.name()
            );
        }
    }
}
