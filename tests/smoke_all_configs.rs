//! End-to-end integration: every benchmark × every optimization
//! configuration produces output identical to the unoptimized baseline.

use streamlin_benchmarks as benchmarks;
use streamlin_core::combine::{analyze_graph, replace, ReplaceOptions};
use streamlin_runtime::measure::{first_mismatch, profile};
use streamlin_runtime::MatMulStrategy;

#[test]
fn all_benchmarks_all_configs_agree_with_baseline() {
    for b in benchmarks::all_default() {
        let n = (b.default_outputs() / 4).max(64);
        let analysis = analyze_graph(b.graph());
        let baseline = profile(
            &replace(b.graph(), &analysis, &ReplaceOptions::per_filter()),
            n,
            MatMulStrategy::Unrolled,
        )
        .unwrap_or_else(|e| panic!("{} baseline: {e}", b.name()));

        for (label, opts) in [
            ("linear", ReplaceOptions::maximal_linear()),
            ("freq", ReplaceOptions::maximal_freq()),
        ] {
            let prof = profile(
                &replace(b.graph(), &analysis, &opts),
                n,
                MatMulStrategy::Unrolled,
            )
            .unwrap_or_else(|e| panic!("{} {label}: {e}", b.name()));
            if let Some(i) = first_mismatch(&baseline.outputs, &prof.outputs, 1e-5, 1e-5) {
                panic!(
                    "{} {label}: output {i} differs: {} vs {}",
                    b.name(),
                    baseline.outputs[i],
                    prof.outputs[i]
                );
            }
            eprintln!(
                "{:>12} {:>7}: {:>12.1} mults/out (baseline {:.1})",
                b.name(),
                label,
                prof.mults_per_output(),
                baseline.mults_per_output()
            );
        }
    }
}
