//! Cross-validation of the §7.1 linear-state extension: stateful
//! extraction must agree with the runtime interpreter executing the same
//! filter, including on state-bearing components of the real benchmarks.

use streamlin::core::state_space::extract_stateful;
use streamlin::core::OptStream;
use streamlin::graph::elaborate::{elaborate, elaborate_named};
use streamlin::graph::ir::Stream;
use streamlin::lang::parse;
use streamlin::runtime::measure::profile;
use streamlin::runtime::MatMulStrategy;
use streamlin::support::OpCounter;

/// Runs `filter_src` (a float->float filter named F) both ways: through
/// the engine's interpreter inside a ramp→F→printer program, and through
/// its extracted state-space node over the same ramp.
fn assert_interp_matches_state_space(filter_src: &str, n: usize) {
    let program_src = format!(
        "void->void pipeline Main {{ add Ramp(); add F(); add K(); }}
         void->float filter Ramp {{ float x; work push 1 {{ push(x); x = x + 0.5; }} }}
         {filter_src}
         float->void filter K {{ work pop 1 {{ println(pop()); }} }}"
    );
    let program = parse(&program_src).unwrap();
    let graph = elaborate(&program).unwrap();
    let interp = profile(&OptStream::from_graph(&graph), n, MatMulStrategy::Unrolled).unwrap();

    let Stream::Filter(f) = elaborate_named(&program, "F", &[]).unwrap() else {
        panic!("F is not a filter");
    };
    let node = extract_stateful(&f).unwrap();
    let ramp: Vec<f64> = (0..(n * node.pop() + node.peek()))
        .map(|i| i as f64 * 0.5)
        .collect();
    let mut ops = OpCounter::new();
    let direct = node.run_over(&ramp, &mut ops);
    assert!(direct.len() >= n, "state-space run produced too little");
    for (i, (a, b)) in interp.outputs.iter().zip(&direct).take(n).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "output {i}: interp {a} vs state-space {b}"
        );
    }
}

#[test]
fn delay_agrees_with_interpreter() {
    assert_interp_matches_state_space(
        "float->float filter F {
             float s;
             work pop 1 push 1 { push(s); s = pop(); }
         }",
        64,
    );
}

#[test]
fn leaky_integrator_agrees_with_interpreter() {
    assert_interp_matches_state_space(
        "float->float filter F {
             float acc;
             work pop 1 push 1 {
                 acc = 0.9 * acc + 0.1 * pop();
                 push(acc);
             }
         }",
        64,
    );
}

#[test]
fn multi_rate_stateful_filter_agrees() {
    // pops 2, pushes 3, with cross-firing state.
    assert_interp_matches_state_space(
        "float->float filter F {
             float carry;
             work pop 2 push 3 {
                 float a = pop();
                 float b = pop();
                 push(carry + a);
                 push(a - b);
                 push(2 * b);
                 carry = a + 0.25 * carry;
             }
         }",
        60,
    );
}

#[test]
fn dtoa_delay_component_is_stateful_linear() {
    // The Delay inside the DToA noise shaper: standard extraction calls it
    // non-linear; the extension recovers the exact one-sample delay.
    let b = streamlin::benchmarks::dtoa();
    let mut found = false;
    b.graph().for_each_filter(&mut |f| {
        if f.decl_name == "Delay" {
            found = true;
            let node = extract_stateful(f).unwrap();
            assert_eq!(node.state_dim(), 1);
            let mut ops = OpCounter::new();
            assert_eq!(
                node.run_over(&[5.0, 6.0, 7.0], &mut ops),
                vec![0.0, 5.0, 6.0]
            );
        }
    });
    assert!(found, "DToA should contain a Delay filter");
}

#[test]
fn stateful_covers_strictly_more_than_stateless() {
    // Over the whole suite: every filter the standard analysis finds
    // linear is also stateful-linear (with zero state), and at least a few
    // previously-rejected filters are recovered.
    let mut recovered = 0;
    for b in streamlin::benchmarks::all_default() {
        let analysis = streamlin::core::combine::analyze_graph(b.graph());
        b.graph()
            .for_each_filter(&mut |f| match (analysis.node_for(f), extract_stateful(f)) {
                (Some(lin), Ok(st)) => {
                    assert!(st.is_stateless(), "{}: gained unexpected state", f.name);
                    let as_lin = st.to_linear().unwrap();
                    assert!(
                        as_lin.approx_eq(lin, 1e-12, 1e-12),
                        "{}: stateless projection differs",
                        f.name
                    );
                }
                (Some(_), Err(e)) => panic!("{}: linear but not stateful-linear: {e}", f.name),
                (None, Ok(st)) => {
                    assert!(st.state_dim() > 0, "{}: recovered without state?", f.name);
                    recovered += 1;
                }
                (None, Err(_)) => {}
            });
    }
    assert!(
        recovered >= 2,
        "expected to recover Delay-like filters, got {recovered}"
    );
}
