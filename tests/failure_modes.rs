//! Failure injection across the stack: malformed programs, unschedulable
//! graphs and runtime rate violations must produce descriptive errors, not
//! panics or wrong answers.

use streamlin::core::opt::OptStream;
use streamlin::graph::elaborate;
use streamlin::lang::parse;
use streamlin::runtime::engine::RunError;
use streamlin::runtime::measure::profile;
use streamlin::runtime::MatMulStrategy;

#[test]
fn parse_errors_carry_positions() {
    let err = parse("float->float filter F {\n  work push 1 { push( } \n}").unwrap_err();
    assert_eq!(err.span.line, 2);
}

#[test]
fn unknown_stream_reference() {
    let p = parse("void->void pipeline Main { add Ghost(); }").unwrap();
    let err = elaborate(&p).unwrap_err();
    assert!(err.message.contains("Ghost"));
}

#[test]
fn non_constant_rate_fails_elaboration() {
    let p = parse(
        "void->void pipeline Main { add S(); }
         void->float filter S { work push peek(0) { push(1.0); } }",
    )
    .unwrap();
    assert!(elaborate(&p).is_err());
}

#[test]
fn unschedulable_splitjoin_fails_scheduling() {
    let p = parse(
        "void->void pipeline Main { add S(); add SJ(); add K(); }
         void->float filter S { work push 1 { push(1.0); } }
         float->float splitjoin SJ {
             split duplicate;
             add A(); add B();
             join roundrobin;
         }
         float->float filter A { work pop 1 push 1 { push(pop()); } }
         float->float filter B { work pop 2 push 1 { push(pop() + pop()); } }
         float->void filter K { work pop 2 { pop(); pop(); } }",
    )
    .unwrap();
    let g = elaborate(&p).unwrap();
    assert!(streamlin::graph::steady::steady_state(&g).is_err());
}

#[test]
fn runtime_rate_violation_is_caught() {
    let p = parse(
        "void->void pipeline Main { add S(); add K(); }
         void->float filter S {
             float x;
             work push 1 { push(x); if (x > 2) { push(x); } x = x + 1; }
         }
         float->void filter K { work pop 1 { println(pop()); } }",
    )
    .unwrap();
    let g = elaborate(&p).unwrap();
    let err = profile(&OptStream::from_graph(&g), 100, MatMulStrategy::Unrolled).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("push"), "{msg}");
}

#[test]
fn feedback_without_enqueue_deadlocks_cleanly() {
    let p = parse(
        "void->void pipeline Main { add S(); add FB(); add K(); }
         void->float filter S { float x; work push 1 { push(x++); } }
         float->void filter K { work pop 1 { println(pop()); } }
         float->float feedbackloop FB {
             join roundrobin(1, 1);
             body A();
             loop I();
             split roundrobin(1, 1);
         }
         float->float filter A { work pop 2 push 2 { push(pop() + peek(0)); push(pop()); } }
         float->float filter I { work pop 1 push 1 { push(pop()); } }",
    )
    .unwrap();
    let g = elaborate(&p).unwrap();
    let err = profile(&OptStream::from_graph(&g), 10, MatMulStrategy::Unrolled).unwrap_err();
    assert!(matches!(
        err,
        streamlin::runtime::measure::ProfileError::Run(RunError::Deadlock { .. })
    ));
}

#[test]
fn division_by_zero_in_init_is_reported() {
    let p = parse(
        "void->void pipeline Main { add S(); }
         void->float filter S {
             int z;
             init { z = 1 / (1 - 1); }
             work push 1 { push(z); }
         }",
    )
    .unwrap();
    let err = elaborate(&p).unwrap_err();
    assert!(err.message.contains("division"), "{err}");
}

#[test]
fn array_out_of_bounds_is_reported() {
    let p = parse(
        "void->void pipeline Main { add S(); }
         void->float filter S {
             float[4] t;
             init { t[4] = 1.0; }
             work push 1 { push(t[0]); }
         }",
    )
    .unwrap();
    let err = elaborate(&p).unwrap_err();
    assert!(err.message.contains("out of bounds"), "{err}");
}
