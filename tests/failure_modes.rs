//! Failure injection across the stack: malformed programs, unschedulable
//! graphs and runtime rate violations must produce descriptive errors, not
//! panics or wrong answers.
//!
//! The second half drills the **supervised pipeline runtime** with
//! deterministic injected faults (`streamlin::support::InjectFaults`):
//! every fault class — worker panic, wedged stage, dead pool thread,
//! refused acquisition, timing perturbation — must end in either a clean
//! structured error or a completed single-threaded fallback whose output
//! is bit-identical to the unfaulted reference. No hangs, no partial
//! output.

use std::time::{Duration, Instant};

use streamlin::core::opt::OptStream;
use streamlin::graph::elaborate;
use streamlin::lang::parse;
use streamlin::runtime::engine::RunError;
use streamlin::runtime::fission::Fission;
use streamlin::runtime::measure::{
    profile, profile_fission, profile_supervised, profile_threads, ExecMode, ProfileError,
    Scheduler, Supervision,
};
use streamlin::runtime::MatMulStrategy;
use streamlin::support::InjectFaults;

#[test]
fn parse_errors_carry_positions() {
    let err = parse("float->float filter F {\n  work push 1 { push( } \n}").unwrap_err();
    assert_eq!(err.span.line, 2);
}

#[test]
fn unknown_stream_reference() {
    let p = parse("void->void pipeline Main { add Ghost(); }").unwrap();
    let err = elaborate(&p).unwrap_err();
    assert!(err.message.contains("Ghost"));
}

#[test]
fn non_constant_rate_fails_elaboration() {
    let p = parse(
        "void->void pipeline Main { add S(); }
         void->float filter S { work push peek(0) { push(1.0); } }",
    )
    .unwrap();
    assert!(elaborate(&p).is_err());
}

#[test]
fn unschedulable_splitjoin_fails_scheduling() {
    let p = parse(
        "void->void pipeline Main { add S(); add SJ(); add K(); }
         void->float filter S { work push 1 { push(1.0); } }
         float->float splitjoin SJ {
             split duplicate;
             add A(); add B();
             join roundrobin;
         }
         float->float filter A { work pop 1 push 1 { push(pop()); } }
         float->float filter B { work pop 2 push 1 { push(pop() + pop()); } }
         float->void filter K { work pop 2 { pop(); pop(); } }",
    )
    .unwrap();
    let g = elaborate(&p).unwrap();
    assert!(streamlin::graph::steady::steady_state(&g).is_err());
}

#[test]
fn runtime_rate_violation_is_caught() {
    let p = parse(
        "void->void pipeline Main { add S(); add K(); }
         void->float filter S {
             float x;
             work push 1 { push(x); if (x > 2) { push(x); } x = x + 1; }
         }
         float->void filter K { work pop 1 { println(pop()); } }",
    )
    .unwrap();
    let g = elaborate(&p).unwrap();
    let err = profile(&OptStream::from_graph(&g), 100, MatMulStrategy::Unrolled).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("push"), "{msg}");
}

#[test]
fn feedback_without_enqueue_deadlocks_cleanly() {
    let p = parse(
        "void->void pipeline Main { add S(); add FB(); add K(); }
         void->float filter S { float x; work push 1 { push(x++); } }
         float->void filter K { work pop 1 { println(pop()); } }
         float->float feedbackloop FB {
             join roundrobin(1, 1);
             body A();
             loop I();
             split roundrobin(1, 1);
         }
         float->float filter A { work pop 2 push 2 { push(pop() + peek(0)); push(pop()); } }
         float->float filter I { work pop 1 push 1 { push(pop()); } }",
    )
    .unwrap();
    let g = elaborate(&p).unwrap();
    let err = profile(&OptStream::from_graph(&g), 10, MatMulStrategy::Unrolled).unwrap_err();
    assert!(matches!(
        err,
        streamlin::runtime::measure::ProfileError::Run(RunError::Deadlock { .. })
    ));
}

#[test]
fn division_by_zero_in_init_is_reported() {
    let p = parse(
        "void->void pipeline Main { add S(); }
         void->float filter S {
             int z;
             init { z = 1 / (1 - 1); }
             work push 1 { push(z); }
         }",
    )
    .unwrap();
    let err = elaborate(&p).unwrap_err();
    assert!(err.message.contains("division"), "{err}");
}

#[test]
fn array_out_of_bounds_is_reported() {
    let p = parse(
        "void->void pipeline Main { add S(); }
         void->float filter S {
             float[4] t;
             init { t[4] = 1.0; }
             work push 1 { push(t[0]); }
         }",
    )
    .unwrap();
    let err = elaborate(&p).unwrap_err();
    assert!(err.message.contains("out of bounds"), "{err}");
}

// ---- supervised runtime: injected faults ------------------------------------

/// A four-filter chain that partitions into multiple pipeline stages and
/// whose middle filter is fissable — one program covers both executors.
const CHAIN: &str = "void->void pipeline Main { add S(); add G(); add H(); add K(); }
     void->float filter S { float x; work push 1 { push(x++); } }
     float->float filter G { work pop 1 push 1 { push(3 * pop()); } }
     float->float filter H {
         work peek 8 pop 1 push 1 {
             float s = 0;
             for (int i = 0; i < 8; i++) s += peek(i) * 0.25;
             push(s); pop();
         }
     }
     float->void filter K { work pop 1 { println(pop()); } }";

const N: usize = 96;
const THREADS: usize = 2;

fn chain_opt() -> OptStream {
    let p = parse(CHAIN).unwrap();
    let g = elaborate(&p).unwrap();
    OptStream::from_graph(&g)
}

/// The unfaulted pipeline run every drilled run is compared against.
fn reference() -> streamlin::runtime::measure::Profile {
    profile_threads(
        &chain_opt(),
        N,
        MatMulStrategy::Unrolled,
        Scheduler::Auto,
        ExecMode::Measured,
        THREADS,
    )
    .expect("clean pipeline run")
}

/// Runs the chain under supervision with `spec` injected.
fn drill(
    spec: &str,
    sup: &Supervision,
    fission: Fission,
) -> Result<streamlin::runtime::measure::Profile, ProfileError> {
    let fault = InjectFaults::parse(spec).expect("valid fault spec");
    profile_supervised(
        &chain_opt(),
        N,
        MatMulStrategy::Unrolled,
        Scheduler::Auto,
        ExecMode::Measured,
        Some(THREADS),
        fission,
        sup,
        Some(&fault),
        None,
    )
}

fn assert_bits_equal(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "output {i} differs");
    }
}

fn fallback_on() -> Supervision {
    Supervision {
        watchdog: Some(Duration::from_millis(400)),
        fallback: true,
        quantum: 0,
    }
}

fn fallback_off() -> Supervision {
    Supervision {
        watchdog: Some(Duration::from_millis(400)),
        fallback: false,
        quantum: 0,
    }
}

#[test]
fn injected_worker_panic_degrades_to_identical_bits() {
    let clean = reference();
    let prof = drill("7:panic@s1", &fallback_on(), Fission::Off).expect("fallback must complete");
    let reason = prof
        .degraded
        .as_deref()
        .expect("run must report degradation");
    assert!(reason.contains("injected fault"), "{reason}");
    assert_eq!(prof.threads, 1, "fallback runs single-threaded");
    assert_bits_equal(&clean.outputs, &prof.outputs);
}

#[test]
fn injected_worker_panic_without_fallback_is_structured() {
    let err = drill("7:panic@s1", &fallback_off(), Fission::Off).unwrap_err();
    let ProfileError::Run(e) = &err else {
        panic!("expected a run error, got {err}");
    };
    assert!(matches!(e, RunError::WorkerLost { .. }), "{e}");
    assert!(e.to_string().contains("injected fault"), "{e}");
}

#[test]
fn wedged_stage_trips_the_watchdog_instead_of_hanging() {
    let t0 = Instant::now();
    let err = drill("3:wedge@s0", &fallback_off(), Fission::Off).unwrap_err();
    let ProfileError::Run(e) = &err else {
        panic!("expected a run error, got {err}");
    };
    assert!(matches!(e, RunError::Stalled { .. }), "{e}");
    assert!(e.to_string().contains("watchdog"), "{e}");
    // Deadline + teardown grace + slack — the old executor hung forever.
    assert!(t0.elapsed() < Duration::from_secs(30), "{:?}", t0.elapsed());
}

#[test]
fn wedged_stage_with_fallback_completes_bit_identical() {
    let clean = reference();
    let prof = drill("3:wedge@s1", &fallback_on(), Fission::Off).expect("fallback must complete");
    assert!(prof.degraded.is_some());
    assert_bits_equal(&clean.outputs, &prof.outputs);
}

#[test]
fn dead_worker_thread_degrades_to_identical_bits() {
    let clean = reference();
    // `die` kills the pool thread itself at job start; liveness detection
    // must catch it and the pool must respawn a replacement later.
    let prof = drill("5:die@s1", &fallback_on(), Fission::Off).expect("fallback must complete");
    let reason = prof
        .degraded
        .as_deref()
        .expect("run must report degradation");
    assert!(reason.contains("worker"), "{reason}");
    assert_bits_equal(&clean.outputs, &prof.outputs);
}

#[test]
fn refused_pool_acquisition_degrades_to_identical_bits() {
    let clean = reference();
    let prof = drill("9:refuse#1", &fallback_on(), Fission::Off).expect("fallback must complete");
    let reason = prof
        .degraded
        .as_deref()
        .expect("run must report degradation");
    assert!(reason.contains("refused"), "{reason}");
    assert_bits_equal(&clean.outputs, &prof.outputs);
}

#[test]
fn refused_pool_acquisition_without_fallback_is_structured() {
    let err = drill("9:refuse#1", &fallback_off(), Fission::Off).unwrap_err();
    let ProfileError::Run(e) = &err else {
        panic!("expected a run error, got {err}");
    };
    assert!(matches!(e, RunError::WorkerLost { .. }), "{e}");
}

#[test]
fn timing_faults_never_change_output() {
    // Slowdowns and ring delays perturb scheduling, never data: the run
    // completes on the pipeline (no degradation) with identical bits,
    // tallies and firing counts.
    let clean = reference();
    let prof = drill("5:slow@s0=40,delay=20", &fallback_on(), Fission::Off)
        .expect("timing faults must not fail the run");
    assert!(prof.degraded.is_none(), "{:?}", prof.degraded);
    assert_bits_equal(&clean.outputs, &prof.outputs);
    assert_eq!(clean.ops, prof.ops);
    assert_eq!(clean.firings, prof.firings);
}

#[test]
fn fission_panic_degrades_to_identical_bits() {
    let clean = profile_fission(
        &chain_opt(),
        N,
        MatMulStrategy::Unrolled,
        Scheduler::Auto,
        ExecMode::Measured,
        THREADS,
        Fission::Width(2),
    )
    .expect("clean fissed run");
    let prof =
        drill("13:panic", &fallback_on(), Fission::Width(2)).expect("fallback must complete");
    assert_bits_equal(&clean.outputs, &prof.outputs);
}

#[test]
fn nofission_directive_forces_a_clean_unfissed_run() {
    let clean = reference();
    let prof = drill("1:nofission", &fallback_on(), Fission::Width(2))
        .expect("a refused fission pass is a clean no-op");
    assert_eq!(prof.fission, 1, "fission must have been refused");
    assert!(prof.degraded.is_none());
    assert_bits_equal(&clean.outputs, &prof.outputs);
}

#[test]
fn malformed_fault_specs_are_rejected() {
    for bad in [
        "",
        "panic",
        "7:",
        "7:bogus",
        "x:panic",
        "7:refuse#x",
        "7:slow@s",
    ] {
        assert!(InjectFaults::parse(bad).is_err(), "accepted {bad:?}");
    }
}
