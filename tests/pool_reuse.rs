//! Worker-pool reuse: PR 4 spawned the pipeline's stage threads per run
//! (fine for long runs, visible on sub-millisecond ones). The runtime now
//! draws stage workers from a persistent process-wide pool
//! (`streamlin_runtime::pool`); this suite pins both halves of the fix:
//!
//! * two back-to-back `profile_threads` runs produce identical output
//!   (pooling changes scheduling only, never data), and
//! * the second run spawns **zero** new threads — the pool's spawn
//!   counter is flat across repetitions.
//!
//! This file holds a single `#[test]` on purpose: the spawn counter is
//! process-global, and a sibling test running pipelines concurrently
//! would legitimately grow it.

use std::time::Duration;

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions};
use streamlin::core::OptStream;
use streamlin::runtime::fission::Fission;
use streamlin::runtime::measure::{
    profile_supervised, profile_threads, ExecMode, Scheduler, Supervision,
};
use streamlin::runtime::MatMulStrategy;
use streamlin::support::InjectFaults;

fn opt() -> OptStream {
    let bench = streamlin::benchmarks::fir(32);
    let analysis = analyze_graph(bench.graph());
    replace(bench.graph(), &analysis, &ReplaceOptions::per_filter())
}

#[test]
fn repeated_runs_reuse_the_worker_pool_and_match_bit_for_bit() {
    let opt = opt();
    let run = |threads: usize| {
        profile_threads(
            &opt,
            256,
            MatMulStrategy::Unrolled,
            Scheduler::Auto,
            ExecMode::Measured,
            threads,
        )
        .expect("pipeline run")
    };

    // Warm the pool to this shape, then measure the steady state.
    let first = run(3);
    let spawned_after_first = streamlin::runtime::pool::global_spawned();
    assert!(
        spawned_after_first >= first.threads,
        "the first run must have populated the pool"
    );

    let second = run(3);
    let spawned_after_second = streamlin::runtime::pool::global_spawned();
    assert_eq!(
        spawned_after_first, spawned_after_second,
        "a repeated run of the same shape must reuse pooled workers"
    );

    // Identical results — pooling must not touch data.
    assert_eq!(first.outputs.len(), second.outputs.len());
    for (i, (a, b)) in first.outputs.iter().zip(&second.outputs).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "output {i} differs across runs");
    }
    assert_eq!(first.ops, second.ops);
    assert_eq!(first.firings, second.firings);

    // A smaller run fits inside the warm pool too.
    let third = run(2);
    assert_eq!(
        streamlin::runtime::pool::global_spawned(),
        spawned_after_second,
        "a narrower run must not spawn new workers"
    );
    assert_eq!(&first.outputs[..64], &third.outputs[..64]);

    // ---- self-healing: a fault-killed worker must not poison the pool
    // for the process lifetime. A `die` fault kills one pool thread at
    // job start; the supervised run degrades to the single-threaded
    // fallback (bit-identical output), the pool retires the corpse, and
    // the next acquisition of the same shape spawns a replacement.
    let retired_before = streamlin::runtime::pool::global_retired();
    let sup = Supervision {
        watchdog: Some(Duration::from_millis(500)),
        fallback: true,
        quantum: 0,
    };
    let fault = InjectFaults::parse("5:die@s1").expect("valid fault spec");
    let degraded = profile_supervised(
        &opt,
        256,
        MatMulStrategy::Unrolled,
        Scheduler::Auto,
        ExecMode::Measured,
        Some(3),
        Fission::Off,
        &sup,
        Some(&fault),
        None,
    )
    .expect("a killed worker must degrade, not fail");
    assert!(
        degraded.degraded.is_some(),
        "the run must report its degradation"
    );
    assert_eq!(first.outputs.len(), degraded.outputs.len());
    for (i, (a, b)) in first.outputs.iter().zip(&degraded.outputs).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "fallback output {i} differs");
    }
    assert!(
        streamlin::runtime::pool::global_retired() > retired_before,
        "the dead worker must be retired, not re-parked"
    );

    let spawned_before_heal = streamlin::runtime::pool::global_spawned();
    let healed = run(3);
    assert!(
        streamlin::runtime::pool::global_spawned() > spawned_before_heal,
        "the next acquisition must respawn a replacement for the dead worker"
    );
    assert_eq!(first.outputs.len(), healed.outputs.len());
    for (i, (a, b)) in first.outputs.iter().zip(&healed.outputs).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "healed output {i} differs");
    }
}
