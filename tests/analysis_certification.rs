//! The verified-filter dataflow framework across the nine paper
//! benchmarks: every filter must rate/bounds-certify with the expected
//! state-effect class, the certified unchecked tape path must be
//! bit-identical to the checked path across modes and schedulers, and
//! adversarial uncertifiable filters must still run (checked) and stay
//! correct. Also cross-checks the effect lattice against the stateful
//! linear extraction and pins that fission admissions are a superset of
//! the old syntactic `writes_global` walk.

use streamlin::benchmarks::all_default;
use streamlin::core::opt::OptStream;
use streamlin::core::state_space::extract_stateful;
use streamlin::graph::{elaborate, StateEffect};
use streamlin::lang::parse;
use streamlin::runtime::fission::{fissability, Fission};
use streamlin::runtime::flat::flatten;
use streamlin::runtime::measure::{profile_fission, profile_mode, ExecMode, Scheduler};
use streamlin::runtime::{set_cert_elision, MatMulStrategy};

/// Expected state-effect class per (benchmark, filter declaration).
/// Everything not listed here must analyze as `Pure`.
const EXPECTED_EFFECTS: &[(&str, &str, StateEffect)] = &[
    ("FIR", "FloatSource", StateEffect::OpaqueState), // idx = (idx + 1) % 16
    ("RateConvert", "SampledSource", StateEffect::AffineState), // n++
    ("TargetDetect", "TargetSource", StateEffect::OpaqueState),
    ("FMRadio", "FloatOneSource", StateEffect::AffineState),
    ("Radar", "InputGenerate", StateEffect::AffineState),
    ("FilterBank", "DataSource", StateEffect::AffineState),
    ("Vocoder", "DataSource", StateEffect::OpaqueState),
    ("Oversampler", "DataSource", StateEffect::OpaqueState),
    ("DToA", "DataSource", StateEffect::OpaqueState),
    ("DToA", "Delay", StateEffect::AffineState),
];

fn expected_effect(bench: &str, decl: &str) -> StateEffect {
    EXPECTED_EFFECTS
        .iter()
        .find(|(b, d, _)| *b == bench && *d == decl)
        .map(|(_, _, e)| *e)
        .unwrap_or(StateEffect::Pure)
}

/// Every filter of every benchmark certifies both phases, carries no
/// analysis errors, and lands in its expected effect class.
#[test]
fn all_benchmark_filters_certify_with_expected_effects() {
    for b in all_default() {
        b.graph().for_each_filter(&mut |inst| {
            let f = &inst.facts;
            assert!(
                f.work.cert.is_some(),
                "{}/{}: work phase uncertified: {:?}",
                b.name(),
                inst.decl_name,
                f.work.uncertified
            );
            if let Some(init) = &f.init_work {
                assert!(
                    init.cert.is_some(),
                    "{}/{}: init phase uncertified: {:?}",
                    b.name(),
                    inst.decl_name,
                    init.uncertified
                );
            }
            assert!(f.errors.is_empty(), "{}/{}", b.name(), inst.decl_name);
            assert_eq!(
                f.effect,
                expected_effect(b.name(), &inst.decl_name),
                "{}/{}",
                b.name(),
                inst.decl_name
            );
            // The certified rates must be exactly the declared ones.
            let c = f.work.cert.unwrap();
            assert_eq!(
                (c.peek, c.pop, c.push),
                (inst.work.peek, inst.work.pop, inst.work.push),
                "{}/{}",
                b.name(),
                inst.decl_name
            );
        });
    }
}

/// The certified unchecked tape path must be bit-identical to the fully
/// checked path on every benchmark, across execution modes and
/// schedulers, including operation tallies.
#[test]
fn cert_elision_is_bit_identical_across_modes_and_schedulers() {
    for b in all_default() {
        let opt = OptStream::from_graph(b.graph());
        let n = b.default_outputs().min(128);
        // `Auto` statically schedules everything schedulable and falls
        // back to the data-driven engine (DToA has a feedback loop).
        for sched in [Scheduler::Auto, Scheduler::Dynamic] {
            for mode in [ExecMode::Measured, ExecMode::Fast] {
                let strategy = mode.default_strategy();
                set_cert_elision(true);
                let fast = profile_mode(&opt, n, strategy, sched, mode)
                    .unwrap_or_else(|e| panic!("{} {sched:?} {mode:?}: {e}", b.name()));
                set_cert_elision(false);
                let checked = profile_mode(&opt, n, strategy, sched, mode)
                    .unwrap_or_else(|e| panic!("{} {sched:?} {mode:?}: {e}", b.name()));
                set_cert_elision(true);
                assert_eq!(
                    fast.outputs.len(),
                    checked.outputs.len(),
                    "{} {sched:?} {mode:?}",
                    b.name()
                );
                for (a, c) in fast.outputs.iter().zip(&checked.outputs) {
                    assert_eq!(a.to_bits(), c.to_bits(), "{} {sched:?} {mode:?}", b.name());
                }
                assert_eq!(fast.ops, checked.ops, "{} {sched:?} {mode:?}", b.name());
            }
        }
    }
}

/// A filter whose push count depends on runtime state cannot be
/// certified, but as long as the data keeps it at the declared rate it
/// still runs on the checked path and produces correct output.
#[test]
fn uncertifiable_filter_runs_checked_and_correct() {
    let src = "void->void pipeline Main { add Src(); add Gate(); add Sink(); }
         void->float filter Src { float x; work push 1 { push(x); x = x + 1; } }
         float->float filter Gate { float x; work pop 1 push 1 {
             if (x < 10000.0) push(pop()); else pop();
             x = x + 1;
         } }
         float->void filter Sink { work pop 1 { println(pop()); } }";
    let g = elaborate(&parse(src).unwrap()).unwrap();
    let mut gate_uncertified = false;
    g.for_each_filter(&mut |inst| {
        if inst.decl_name == "Gate" {
            gate_uncertified = inst.facts.work.cert.is_none();
        }
    });
    assert!(
        gate_uncertified,
        "state-dependent push count must not certify"
    );

    let opt = OptStream::from_graph(&g);
    let prof = profile_mode(
        &opt,
        16,
        MatMulStrategy::Unrolled,
        Scheduler::Static,
        ExecMode::Measured,
    )
    .unwrap();
    // Within this horizon `x < 10000.0` always holds, so the filter is
    // the identity — and the checked engine verified every firing.
    let want: Vec<f64> = (0..16).map(f64::from).collect();
    assert_eq!(prof.outputs, want);
}

/// A provable rate violation in a filter the analysis can decide is a
/// compile-time error, not a runtime one.
#[test]
fn provable_violation_fails_elaboration() {
    let src = "void->void pipeline Main { add S(); add K(); }
         void->float filter S { work push 2 { push(1.0); } }
         float->void filter K { work pop 1 { println(pop()); } }";
    let err = elaborate(&parse(src).unwrap()).unwrap_err().to_string();
    assert!(
        err.contains("declared push rate is 2 but the body always pushes 1"),
        "{err}"
    );
}

/// Fission admissions are a strict superset of the old syntactic
/// `writes_global` walk: a write on a constant-false path no longer
/// disqualifies a filter, and the fissioned graph stays bit-identical.
#[test]
fn fission_admits_dead_branch_writers() {
    let src = "void->void pipeline Main { add Src(); add Heavy(); add Sink(); }
         void->float filter Src { float x; work push 1 { push(x); x = x + 1; } }
         float->float filter Heavy { float junk; work pop 1 push 1 {
             if (false) junk = 1.0;
             push(pop() * 0.5);
         } }
         float->void filter Sink { work pop 1 { println(pop()); } }";
    let g = elaborate(&parse(src).unwrap()).unwrap();
    let mut effect = StateEffect::OpaqueState;
    g.for_each_filter(&mut |inst| {
        if inst.decl_name == "Heavy" {
            effect = inst.facts.effect;
        }
    });
    // The old syntactic walk called this stateful; the flow-sensitive
    // lattice prunes the dead branch.
    assert_eq!(effect, StateEffect::Pure);

    let opt = OptStream::from_graph(&g);
    let flat = flatten(&opt, MatMulStrategy::Unrolled).unwrap();
    let heavy = flat
        .nodes
        .iter()
        .find(|n| n.name.contains("Heavy"))
        .expect("Heavy survives flattening");
    assert!(fissability(heavy).is_ok(), "{:?}", fissability(heavy));

    let base = profile_mode(
        &opt,
        32,
        MatMulStrategy::Unrolled,
        Scheduler::Static,
        ExecMode::Measured,
    )
    .unwrap();
    let fissed = profile_fission(
        &opt,
        32,
        MatMulStrategy::Unrolled,
        Scheduler::Static,
        ExecMode::Measured,
        2,
        Fission::Width(2),
    )
    .unwrap();
    assert_eq!(base.outputs.len(), fissed.outputs.len());
    for (a, b) in base.outputs.iter().zip(&fissed.outputs) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Cross-check the effect lattice against the stateful linear
/// extraction: any benchmark filter the state-space extractor can
/// express (with a non-empty state vector) must be classified
/// `AffineState` — the extractor's representation *is* an affine state
/// update, so `OpaqueState` there would be an analysis bug.
#[test]
fn affine_classification_agrees_with_stateful_extraction() {
    let mut checked = 0;
    for b in all_default() {
        b.graph().for_each_filter(&mut |inst| {
            if let Ok(node) = extract_stateful(inst) {
                if node.state_dim() > 0 {
                    checked += 1;
                    assert_eq!(
                        inst.facts.effect,
                        StateEffect::AffineState,
                        "{}/{}: state-space extractable but not AffineState",
                        b.name(),
                        inst.decl_name
                    );
                }
            }
        });
    }
    assert!(checked > 0, "cross-check must cover at least one filter");
}
