//! Domain scenario: the paper's FM software radio. Runs the full compiler
//! pipeline — extraction, maximal combination, frequency translation, and
//! automatic selection — and reports what each pass did to the graph and
//! to the executed operation counts.
//!
//! Run with: `cargo run --release --example optimization_report`

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions};
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = streamlin::benchmarks::fm_radio();
    let graph = bench.graph();

    let analysis = analyze_graph(graph);
    println!("== FMRadio ==");
    println!(
        "filters: {} ({} linear)",
        graph.filter_count(),
        analysis.linear_count()
    );
    for (id, reason) in &analysis.reasons {
        println!("  non-linear filter #{id}: {reason}");
    }

    let configs = [
        (
            "baseline",
            replace(graph, &analysis, &ReplaceOptions::per_filter()),
        ),
        (
            "linear",
            replace(graph, &analysis, &ReplaceOptions::maximal_linear()),
        ),
        (
            "freq",
            replace(graph, &analysis, &ReplaceOptions::maximal_freq()),
        ),
        (
            "autosel",
            select(
                graph,
                &analysis,
                &CostModel::default(),
                &SelectOptions::default(),
            )?
            .opt,
        ),
    ];

    let n = 512;
    let mut baseline_mults = None;
    for (name, opt) in configs {
        let stats = opt.stats();
        let prof = profile(&opt, n, MatMulStrategy::Unrolled)?;
        let base = *baseline_mults.get_or_insert(prof.mults_per_output());
        println!(
            "{name:>9}: {:>2} nodes ({} linear, {} freq) | {:>8.1} mults/out ({:>6.1}% removed) | {:>7.1} us/out",
            stats.filters,
            stats.linear,
            stats.freq,
            prof.mults_per_output(),
            (1.0 - prof.mults_per_output() / base) * 100.0,
            prof.nanos_per_output() / 1000.0,
        );
    }
    Ok(())
}
