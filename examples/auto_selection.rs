//! Domain scenario: the Radar front end, where maximal optimization
//! *hurts* — combining the beamformer with its FIR inflates the work and
//! frequency translation explodes it. The automatic selector (§4.3) must
//! refuse both. This example shows the decision and its payoff.
//!
//! Run with: `cargo run --release --example auto_selection`

use streamlin::core::combine::{analyze_graph, replace, ReplaceOptions};
use streamlin::core::cost::CostModel;
use streamlin::core::select::{select, SelectOptions};
use streamlin::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = streamlin::benchmarks::radar(12, 4);
    let graph = bench.graph();
    let analysis = analyze_graph(graph);

    let n = 128;
    let base = profile(
        &replace(graph, &analysis, &ReplaceOptions::per_filter()),
        n,
        MatMulStrategy::Unrolled,
    )?;
    let maximal = profile(
        &replace(graph, &analysis, &ReplaceOptions::maximal_linear()),
        n,
        MatMulStrategy::Unrolled,
    )?;
    let sel = select(
        graph,
        &analysis,
        &CostModel::default(),
        &SelectOptions::default(),
    )?;
    let auto = profile(&sel.opt, n, MatMulStrategy::Unrolled)?;

    println!("Radar(12 channels, 4 beams), multiplications per output:");
    println!("  baseline          : {:>10.1}", base.mults_per_output());
    println!(
        "  maximal linear    : {:>10.1}  <- combination backfires here",
        maximal.mults_per_output()
    );
    println!("  automatic selection: {:>9.1}", auto.mults_per_output());
    assert!(auto.mults_per_output() <= maximal.mults_per_output());

    // And the outputs are identical whichever way it executes.
    for (a, b) in base.outputs.iter().zip(&auto.outputs) {
        assert!((a - b).abs() < 1e-6);
    }
    println!("outputs verified identical across configurations.");
    Ok(())
}
