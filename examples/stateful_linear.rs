//! Domain scenario: the §7.1 extension — filters with *linear state*.
//! Standard extraction rejects anything that writes a field (a unit delay,
//! a leaky integrator, an accumulator); the state-space extension models
//! them exactly as y = x·A_x + s·A_s + b_x, s' = x·C_x + s·C_s + b_s.
//!
//! Run with: `cargo run --release --example stateful_linear`

use streamlin::core::extract::extract;
use streamlin::core::state_space::extract_stateful;
use streamlin::graph::elaborate::elaborate_named;
use streamlin::graph::ir::Stream;
use streamlin::lang::parse;
use streamlin::support::OpCounter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(
        "float->float filter LeakyIntegrator(float a) {
             float acc;
             work pop 1 push 1 {
                 acc = a * acc + (1 - a) * pop();
                 push(acc);
             }
         }",
    )?;
    let Stream::Filter(f) = elaborate_named(
        &program,
        "LeakyIntegrator",
        &[streamlin::graph::Value::Float(0.9)],
    )?
    else {
        unreachable!()
    };

    // The stateless analysis of the paper's Chapter 3 must reject it...
    let reason = extract(&f).expect_err("a stateful filter is not (stateless) linear");
    println!("standard extraction: NOT linear ({reason})");

    // ...and the §7.1 extension recovers the exact state-space form.
    let node = extract_stateful(&f)?;
    println!("stateful extraction: {node}");
    println!(
        "  y  = {:.2}·x + {:.2}·s",
        node.input_coeff(0, 0),
        node.state_coeff(0, 0)
    );
    println!(
        "  s' = {:.2}·x + {:.2}·s",
        0.1,
        node.state_update_coeff(0, 0)
    );

    // Step response: converges to 1.
    let input = vec![1.0; 40];
    let mut ops = OpCounter::new();
    let out = node.run_over(&input, &mut ops);
    println!(
        "step response: {:.3} {:.3} {:.3} ... {:.3}",
        out[0], out[1], out[2], out[39]
    );
    assert!((out[39] - 1.0).abs() < 0.02);
    Ok(())
}
