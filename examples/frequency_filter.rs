//! Domain scenario: using the frequency-replacement machinery directly as
//! a library — design a large FIR filter, plan its FFT implementation
//! (Transformation 6), and compare executed multiplications against the
//! direct form, like the paper's §5.8 study.
//!
//! Run with: `cargo run --release --example frequency_filter`

use streamlin::core::frequency::{FreqExec, FreqSpec, FreqStrategy};
use streamlin::core::node::LinearNode;
use streamlin::fft::FftKind;
use streamlin::support::OpCounter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 256-tap raised-cosine low-pass.
    let taps = 256;
    let weights: Vec<f64> = (0..taps)
        .map(|i| {
            let x = (i as f64 - taps as f64 / 2.0) / 16.0;
            if x == 0.0 {
                1.0
            } else {
                x.sin() / x
            }
        })
        .collect();
    let node = LinearNode::fir(&weights);

    let input: Vec<f64> = (0..20_000).map(|i| (0.03 * i as f64).sin()).collect();
    let direct_out = node.fire_sequence(&input);
    let direct_mults = (node.nnz_a() * direct_out.len()) as u64;

    for (label, strategy, kind) in [
        (
            "naive + simple FFT   ",
            FreqStrategy::Naive,
            FftKind::Simple,
        ),
        (
            "optimized + simple   ",
            FreqStrategy::Optimized,
            FftKind::Simple,
        ),
        (
            "optimized + tuned    ",
            FreqStrategy::Optimized,
            FftKind::Tuned,
        ),
    ] {
        let spec = FreqSpec::new(&node, strategy, kind, None)?;
        let mut exec = FreqExec::new(spec);
        let mut ops = OpCounter::new();
        let out = exec.run_over(&input, &mut ops);
        let worst = out
            .iter()
            .zip(&direct_out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{label}: {:>6.1} mults/out (direct {:.1}), max |err| = {worst:.2e}",
            ops.mults() as f64 / out.len() as f64,
            direct_mults as f64 / direct_out.len() as f64,
        );
    }
    Ok(())
}
