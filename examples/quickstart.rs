//! Quickstart: write a small DSP program in the StreamIt dialect, let the
//! compiler find and fuse its linear filters, and watch the operation
//! counts drop while the output stays bit-identical.
//!
//! Run with: `cargo run --release --example quickstart`

use streamlin::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A moving-average smoother followed by a difference filter — the kind
    // of modular decomposition §1.3 of the paper argues programmers should
    // be able to afford.
    let program = parse(
        "void->void pipeline Main {
             add Source();
             add Smooth(8);
             add Diff();
             add Printer();
         }
         void->float filter Source {
             float x;
             work push 1 { push(sin(0.1 * x++)); }
         }
         float->float filter Smooth(int N) {
             work peek N pop 1 push 1 {
                 float acc = 0;
                 for (int i = 0; i < N; i++) acc += peek(i);
                 push(acc / N);
                 pop();
             }
         }
         float->float filter Diff {
             work peek 2 pop 1 push 1 { push(peek(1) - peek(0)); pop(); }
         }
         float->void filter Printer { work pop 1 { println(pop()); } }",
    )?;

    let graph = elaborate(&program)?;
    let analysis = analyze_graph(&graph);
    println!("linear filters found: {}", analysis.linear_count());

    let baseline = OptStream::from_graph(&graph);
    let optimized = replace(&graph, &analysis, &ReplaceOptions::maximal_linear());
    println!("optimized structure:  {}", optimized.describe());

    let n = 1000;
    let base = profile(&baseline, n, MatMulStrategy::Unrolled)?;
    let opt = profile(&optimized, n, MatMulStrategy::Unrolled)?;

    assert_eq!(base.outputs.len(), opt.outputs.len());
    for (a, b) in base.outputs.iter().zip(&opt.outputs) {
        assert!((a - b).abs() < 1e-9, "outputs must be identical");
    }
    println!(
        "multiplications/output: {:.1} -> {:.1}",
        base.mults_per_output(),
        opt.mults_per_output()
    );
    println!(
        "flops/output:           {:.1} -> {:.1}",
        base.flops_per_output(),
        opt.flops_per_output()
    );
    println!("outputs agree on all {n} items.");
    Ok(())
}
