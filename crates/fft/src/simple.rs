//! The "simple FFT implementation" of Figure 5-12: a recursive radix-2
//! transform transcribed from the thesis' own derivation (§2.3).

use crate::{Complex, FftError};
use streamlin_support::num::log2_exact;
use streamlin_support::Tally;

/// Recursive radix-2 FFT following the thesis derivation.
///
/// The derivation in §2.3 splits the input into even- and odd-indexed halves
/// (`x_even·B`, `x_odd·B`), multiplies the odd half by the diagonal twiddle
/// matrix `D` generated with the recurrence `D[k+1,k+1] = D[k,k]·W_N`
/// (Equation 2.16), and combines with one addition and one subtraction per
/// output pair (Equation 2.17). This implementation mirrors that structure —
/// including regenerating the twiddles by counted multiplication on every
/// call and allocating per recursion level — which is exactly the kind of
/// straightforward implementation the paper compares FFTW against.
///
/// # Examples
///
/// ```
/// use streamlin_fft::{Complex, SimpleFft};
/// use streamlin_support::OpCounter;
///
/// let fft = SimpleFft;
/// let mut ops = OpCounter::new();
/// let x = vec![Complex::one(); 4];
/// let spectrum = fft.forward(&x, &mut ops).unwrap();
/// assert!((spectrum[0].re - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimpleFft;

impl SimpleFft {
    /// Forward DFT of a power-of-two-length signal.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeNotPowerOfTwo`] when `x.len()` is not a
    /// positive power of two.
    pub fn forward<T: Tally>(&self, x: &[Complex], ops: &mut T) -> Result<Vec<Complex>, FftError> {
        if !x.len().is_power_of_two() {
            return Err(FftError::SizeNotPowerOfTwo(x.len()));
        }
        let _ = log2_exact(x.len());
        Ok(fft_rec(x, ops))
    }

    /// Inverse DFT with 1/N normalization, via
    /// `ifft(X) = conj(fft(conj(X)))/N`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeNotPowerOfTwo`] when `x.len()` is not a
    /// positive power of two.
    pub fn inverse<T: Tally>(&self, x: &[Complex], ops: &mut T) -> Result<Vec<Complex>, FftError> {
        let conj: Vec<Complex> = x.iter().map(|z| z.conj()).collect();
        let mut y = self.forward(&conj, ops)?;
        let inv_n = 1.0 / x.len() as f64;
        for z in &mut y {
            *z = z.conj().scale_counted(inv_n, ops);
        }
        Ok(y)
    }
}

fn fft_rec<T: Tally>(x: &[Complex], ops: &mut T) -> Vec<Complex> {
    let n = x.len();
    if n == 1 {
        return vec![x[0]];
    }
    let even: Vec<Complex> = x.iter().step_by(2).copied().collect();
    let odd: Vec<Complex> = x.iter().skip(1).step_by(2).copied().collect();
    let e = fft_rec(&even, ops);
    let o = fft_rec(&odd, ops);

    let w_n = Complex::root_of_unity(n);
    ops.other(2); // the sin/cos pair generating W_N
    let mut out = vec![Complex::zero(); n];
    // D[0,0] = W_N^0 = 1; D[k+1] = D[k] * W_N   (Equation 2.16)
    let mut d = Complex::one();
    for k in 0..n / 2 {
        let u = o[k].mul_counted(d, ops);
        out[k] = e[k].add_counted(u, ops);
        out[k + n / 2] = e[k].sub_counted(u, ops);
        d = d.mul_counted(w_n, ops);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_naive;
    use streamlin_support::OpCounter;

    fn assert_spectra_close(a: &[Complex], b: &[Complex]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < 1e-9, "bin {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_dft() {
        let mut ops = OpCounter::new();
        for log_n in 0..7 {
            let n = 1usize << log_n;
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let got = SimpleFft.forward(&x, &mut ops).unwrap();
            assert_spectra_close(&got, &dft_naive(&x));
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let mut ops = OpCounter::new();
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let spec = SimpleFft.forward(&x, &mut ops).unwrap();
        let back = SimpleFft.inverse(&spec, &mut ops).unwrap();
        assert_spectra_close(&back, &x);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut ops = OpCounter::new();
        let err = SimpleFft
            .forward(&[Complex::zero(); 6], &mut ops)
            .unwrap_err();
        assert_eq!(err, FftError::SizeNotPowerOfTwo(6));
    }

    #[test]
    fn operation_count_scales_as_n_log_n() {
        // The simple transform performs n complex multiplies per level
        // (n/2 twiddle applications + n/2 twiddle regenerations), i.e.
        // 4·n·lg(n) real multiplications.
        let n = 64;
        let x = vec![Complex::one(); n];
        let mut ops = OpCounter::new();
        SimpleFft.forward(&x, &mut ops).unwrap();
        let expected_mults = 4 * n as u64 * 6; // lg(64) = 6
        assert_eq!(ops.mults(), expected_mults);
    }
}
