//! The tuned, planned FFT — `streamlin`'s FFTW stand-in.

use crate::{Complex, FftError};
use streamlin_support::OpCounter;

/// A precomputed plan for an iterative radix-2 Cooley-Tukey FFT.
///
/// Like an FFTW plan, construction precomputes everything that does not
/// depend on the data: the bit-reversal permutation and a flat twiddle
/// table. Execution is in-place, allocation-free and skips the trivial
/// `W^0 = 1` twiddle of every butterfly group, so it runs roughly half the
/// multiplications of [`crate::SimpleFft`]; the packed real transform in
/// [`crate::RealFft`] halves them again.
///
/// # Examples
///
/// ```
/// use streamlin_fft::{Complex, FftPlan};
/// use streamlin_support::OpCounter;
///
/// let plan = FftPlan::new(8).unwrap();
/// let mut data = vec![Complex::one(); 8];
/// let mut ops = OpCounter::new();
/// plan.forward(&mut data, &mut ops);
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FftPlan {
    n: usize,
    /// `twiddle[len/2 + j] = e^{-2πi·j/len}` for each stage size `len`.
    twiddle: Vec<Complex>,
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Plans a transform of size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeNotPowerOfTwo`] unless `n` is a positive
    /// power of two.
    pub fn new(n: usize) -> Result<Self, FftError> {
        if !n.is_power_of_two() {
            return Err(FftError::SizeNotPowerOfTwo(n));
        }
        let mut twiddle = vec![Complex::one(); n.max(1)];
        let mut len = 2;
        while len <= n {
            for j in 0..len / 2 {
                twiddle[len / 2 + j] =
                    Complex::from_polar(-2.0 * std::f64::consts::PI * j as f64 / len as f64);
            }
            len *= 2;
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Ok(FftPlan { n, twiddle, bitrev })
    }

    /// The transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate 0-point plan (which cannot be built).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned size.
    pub fn forward(&self, data: &mut [Complex], ops: &mut OpCounter) {
        assert_eq!(
            data.len(),
            self.n,
            "plan is for size {}, data has {}",
            self.n,
            data.len()
        );
        // Bit-reversal permutation (pure data movement; no FLOPs).
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= self.n {
            let half = len / 2;
            let tw = &self.twiddle[half..len];
            let mut start = 0;
            while start < self.n {
                // j == 0: twiddle is exactly 1, skip the multiply.
                let u = data[start];
                let v = data[start + half];
                data[start] = u.add_counted(v, ops);
                data[start + half] = u.sub_counted(v, ops);
                for j in 1..half {
                    let u = data[start + j];
                    let v = data[start + j + half].mul_counted(tw[j], ops);
                    data[start + j] = u.add_counted(v, ops);
                    data[start + j + half] = u.sub_counted(v, ops);
                }
                start += len;
            }
            len *= 2;
        }
    }

    /// In-place inverse DFT with 1/N normalization.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned size.
    pub fn inverse(&self, data: &mut [Complex], ops: &mut OpCounter) {
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.forward(data, ops);
        let inv_n = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.conj().scale_counted(inv_n, ops);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dft_naive, SimpleFft};

    fn assert_spectra_close(a: &[Complex], b: &[Complex]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < 1e-9, "bin {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_dft() {
        for log_n in 0..8 {
            let n = 1usize << log_n;
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.31).cos(), (i as f64 * 0.17).sin()))
                .collect();
            let plan = FftPlan::new(n).unwrap();
            let mut data = x.clone();
            let mut ops = OpCounter::new();
            plan.forward(&mut data, &mut ops);
            assert_spectra_close(&data, &dft_naive(&x));
        }
    }

    #[test]
    fn matches_simple_fft() {
        let n = 128;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64, 0.5 * i as f64))
            .collect();
        let plan = FftPlan::new(n).unwrap();
        let mut tuned = x.clone();
        let mut ops = OpCounter::new();
        plan.forward(&mut tuned, &mut ops);
        let simple = SimpleFft.forward(&x, &mut ops).unwrap();
        assert_spectra_close(&tuned, &simple);
    }

    #[test]
    fn round_trip_is_identity() {
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i * i) as f64 % 7.0, -(i as f64)))
            .collect();
        let plan = FftPlan::new(n).unwrap();
        let mut data = x.clone();
        let mut ops = OpCounter::new();
        plan.forward(&mut data, &mut ops);
        plan.inverse(&mut data, &mut ops);
        assert_spectra_close(&data, &x);
    }

    #[test]
    fn tuned_uses_fewer_mults_than_simple() {
        let n = 256;
        let x = vec![Complex::one(); n];
        let plan = FftPlan::new(n).unwrap();
        let mut a = x.clone();
        let mut tuned_ops = OpCounter::new();
        plan.forward(&mut a, &mut tuned_ops);
        let mut simple_ops = OpCounter::new();
        SimpleFft.forward(&x, &mut simple_ops).unwrap();
        assert!(
            tuned_ops.mults() * 2 <= simple_ops.mults(),
            "tuned: {} mults, simple: {} mults",
            tuned_ops.mults(),
            simple_ops.mults()
        );
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(
            FftPlan::new(12).unwrap_err(),
            FftError::SizeNotPowerOfTwo(12)
        );
        assert_eq!(FftPlan::new(0).unwrap_err(), FftError::SizeNotPowerOfTwo(0));
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let plan = FftPlan::new(8).unwrap();
        let mut data = vec![Complex::zero(); 4];
        plan.forward(&mut data, &mut OpCounter::new());
    }
}
