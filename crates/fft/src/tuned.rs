//! The tuned, planned FFT — `streamlin`'s FFTW stand-in.

use crate::{Complex, FftError};
use streamlin_support::Tally;

/// A precomputed plan for an iterative radix-2 Cooley-Tukey FFT.
///
/// Like an FFTW plan, construction precomputes everything that does not
/// depend on the data: the bit-reversal permutation and a flat twiddle
/// table. Execution is in-place, allocation-free and skips the trivial
/// `W^0 = 1` twiddle of every butterfly group, so it runs roughly half the
/// multiplications of [`crate::SimpleFft`]; the packed real transform in
/// [`crate::RealFft`] halves them again.
///
/// # Examples
///
/// ```
/// use streamlin_fft::{Complex, FftPlan};
/// use streamlin_support::OpCounter;
///
/// let plan = FftPlan::new(8).unwrap();
/// let mut data = vec![Complex::one(); 8];
/// let mut ops = OpCounter::new();
/// plan.forward(&mut data, &mut ops);
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FftPlan {
    n: usize,
    /// `twiddle[len/2 + j] = e^{-2πi·j/len}` for each stage size `len`.
    twiddle: Vec<Complex>,
    bitrev: Vec<u32>,
    /// Runtime AVX support (checked once; used by the uncounted path).
    use_avx: bool,
}

impl FftPlan {
    /// Plans a transform of size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeNotPowerOfTwo`] unless `n` is a positive
    /// power of two.
    pub fn new(n: usize) -> Result<Self, FftError> {
        if !n.is_power_of_two() {
            return Err(FftError::SizeNotPowerOfTwo(n));
        }
        let mut twiddle = vec![Complex::one(); n.max(1)];
        let mut len = 2;
        while len <= n {
            for j in 0..len / 2 {
                twiddle[len / 2 + j] =
                    Complex::from_polar(-2.0 * std::f64::consts::PI * j as f64 / len as f64);
            }
            len *= 2;
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        #[cfg(target_arch = "x86_64")]
        let use_avx = std::arch::is_x86_feature_detected!("avx");
        #[cfg(not(target_arch = "x86_64"))]
        let use_avx = false;
        Ok(FftPlan {
            n,
            twiddle,
            bitrev,
            use_avx,
        })
    }

    /// The transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate 0-point plan (which cannot be built).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned size.
    pub fn forward<T: Tally>(&self, data: &mut [Complex], ops: &mut T) {
        assert_eq!(
            data.len(),
            self.n,
            "plan is for size {}, data has {}",
            self.n,
            data.len()
        );
        // Bit-reversal permutation (pure data movement; no FLOPs).
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        #[cfg(target_arch = "x86_64")]
        if !T::COUNTING && self.use_avx {
            // SAFETY: `use_avx` is only set when runtime detection
            // confirmed the `avx` target feature (see `FftPlan::new`).
            unsafe { self.butterflies_avx(data) };
            return;
        }
        self.butterflies(data, ops);
    }

    /// The scalar butterfly passes, counted through the tally.
    fn butterflies<T: Tally>(&self, data: &mut [Complex], ops: &mut T) {
        let mut len = 2;
        while len <= self.n {
            let half = len / 2;
            let tw = &self.twiddle[half..len];
            let mut start = 0;
            while start < self.n {
                // j == 0: twiddle is exactly 1, skip the multiply.
                let u = data[start];
                let v = data[start + half];
                data[start] = u.add_counted(v, ops);
                data[start + half] = u.sub_counted(v, ops);
                for j in 1..half {
                    let u = data[start + j];
                    let v = data[start + j + half].mul_counted(tw[j], ops);
                    data[start + j] = u.add_counted(v, ops);
                    data[start + j + half] = u.sub_counted(v, ops);
                }
                start += len;
            }
            len *= 2;
        }
    }

    /// The AVX butterfly passes: two butterflies per iteration on 4-wide
    /// registers. Butterflies within a stage are independent and every
    /// complex multiply/add is evaluated with exactly the scalar path's
    /// operations (separate multiplies, `addsub` for the `rr − ii` /
    /// `ri + ir` pair — no fusion), so the spectra are bit-identical to
    /// [`FftPlan::butterflies`]; only the bookkeeping-free uncounted path
    /// dispatches here.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn butterflies_avx(&self, data: &mut [Complex]) {
        use std::arch::x86_64::*;
        let ptr = data.as_mut_ptr() as *mut f64;
        let mut len = 2;
        while len <= self.n {
            let half = len / 2;
            let tw = &self.twiddle[half..len];
            let twp = tw.as_ptr() as *const f64;
            let mut start = 0;
            while start < self.n {
                // j == 0: twiddle is exactly 1, skip the multiply.
                let u = data[start];
                let v = data[start + half];
                data[start] = u + v;
                data[start + half] = u - v;
                if half >= 2 {
                    // j == 1 stays scalar so the vector loop works on
                    // aligned pairs (2, 3), (4, 5), …
                    let u = data[start + 1];
                    let v = data[start + 1 + half] * tw[1];
                    data[start + 1] = u + v;
                    data[start + 1 + half] = u - v;
                    let mut j = 2;
                    while j + 2 <= half {
                        let up = ptr.add(2 * (start + j));
                        let vp = ptr.add(2 * (start + j + half));
                        let u = _mm256_loadu_pd(up);
                        let v = _mm256_loadu_pd(vp);
                        let t = _mm256_loadu_pd(twp.add(2 * j));
                        // z = v · t, elementwise exactly as mul_counted:
                        // (vre·tre − vim·tim, vre·tim + vim·tre).
                        let v_re = _mm256_movedup_pd(v);
                        let v_im = _mm256_permute_pd(v, 0b1111);
                        let t_sw = _mm256_permute_pd(t, 0b0101);
                        let p1 = _mm256_mul_pd(v_re, t);
                        let p2 = _mm256_mul_pd(v_im, t_sw);
                        let z = _mm256_addsub_pd(p1, p2);
                        _mm256_storeu_pd(up, _mm256_add_pd(u, z));
                        _mm256_storeu_pd(vp, _mm256_sub_pd(u, z));
                        j += 2;
                    }
                    // half == 2 ends at j == 2; larger halves are even,
                    // so the pair loop covers everything up to `half`.
                }
                start += len;
            }
            len *= 2;
        }
    }

    /// In-place inverse DFT with 1/N normalization.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned size.
    pub fn inverse<T: Tally>(&self, data: &mut [Complex], ops: &mut T) {
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.forward(data, ops);
        let inv_n = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.conj().scale_counted(inv_n, ops);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dft_naive, SimpleFft};
    use streamlin_support::OpCounter;

    fn assert_spectra_close(a: &[Complex], b: &[Complex]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < 1e-9, "bin {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_dft() {
        for log_n in 0..8 {
            let n = 1usize << log_n;
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.31).cos(), (i as f64 * 0.17).sin()))
                .collect();
            let plan = FftPlan::new(n).unwrap();
            let mut data = x.clone();
            let mut ops = OpCounter::new();
            plan.forward(&mut data, &mut ops);
            assert_spectra_close(&data, &dft_naive(&x));
        }
    }

    #[test]
    fn matches_simple_fft() {
        let n = 128;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64, 0.5 * i as f64))
            .collect();
        let plan = FftPlan::new(n).unwrap();
        let mut tuned = x.clone();
        let mut ops = OpCounter::new();
        plan.forward(&mut tuned, &mut ops);
        let simple = SimpleFft.forward(&x, &mut ops).unwrap();
        assert_spectra_close(&tuned, &simple);
    }

    #[test]
    fn round_trip_is_identity() {
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i * i) as f64 % 7.0, -(i as f64)))
            .collect();
        let plan = FftPlan::new(n).unwrap();
        let mut data = x.clone();
        let mut ops = OpCounter::new();
        plan.forward(&mut data, &mut ops);
        plan.inverse(&mut data, &mut ops);
        assert_spectra_close(&data, &x);
    }

    #[test]
    fn tuned_uses_fewer_mults_than_simple() {
        let n = 256;
        let x = vec![Complex::one(); n];
        let plan = FftPlan::new(n).unwrap();
        let mut a = x.clone();
        let mut tuned_ops = OpCounter::new();
        plan.forward(&mut a, &mut tuned_ops);
        let mut simple_ops = OpCounter::new();
        SimpleFft.forward(&x, &mut simple_ops).unwrap();
        assert!(
            tuned_ops.mults() * 2 <= simple_ops.mults(),
            "tuned: {} mults, simple: {} mults",
            tuned_ops.mults(),
            simple_ops.mults()
        );
    }

    #[test]
    fn uncounted_path_is_bit_identical_to_counted() {
        use streamlin_support::NoCount;
        // Covers the AVX dispatch (j == 0 / j == 1 scalar edges, pair
        // loop) on machines that have it, and the shared scalar path
        // everywhere else.
        for log_n in 0..10 {
            let n = 1usize << log_n;
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin() * 3.0, (i as f64 * 0.91).cos()))
                .collect();
            let plan = FftPlan::new(n).unwrap();
            let mut counted = x.clone();
            plan.forward(&mut counted, &mut OpCounter::new());
            let mut free = x.clone();
            plan.forward(&mut free, &mut NoCount);
            for (i, (a, b)) in counted.iter().zip(&free).enumerate() {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "n {n} bin {i} re");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "n {n} bin {i} im");
            }
            let mut counted_inv = counted.clone();
            plan.inverse(&mut counted_inv, &mut OpCounter::new());
            let mut free_inv = free.clone();
            plan.inverse(&mut free_inv, &mut NoCount);
            for (a, b) in counted_inv.iter().zip(&free_inv) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(
            FftPlan::new(12).unwrap_err(),
            FftError::SizeNotPowerOfTwo(12)
        );
        assert_eq!(FftPlan::new(0).unwrap_err(), FftError::SizeNotPowerOfTwo(0));
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let plan = FftPlan::new(8).unwrap();
        let mut data = vec![Complex::zero(); 4];
        plan.forward(&mut data, &mut OpCounter::new());
    }
}
