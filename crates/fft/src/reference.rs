//! Quadratic-time reference DFT (Equation 2.5 of the paper), used as the
//! correctness oracle for both FFT tiers.

use crate::Complex;

/// Direct evaluation of the `N`-point DFT, `X[k] = Σ_n x[n]·W_N^{nk}`
/// (paper Equation 2.5). O(N²); testing and calibration only.
///
/// # Examples
///
/// ```
/// use streamlin_fft::{dft_naive, Complex};
/// let x = vec![Complex::one(); 4];
/// let spectrum = dft_naive(&x);
/// assert!((spectrum[0].re - 4.0).abs() < 1e-12);
/// assert!(spectrum[1].abs() < 1e-12);
/// ```
pub fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    let mut out = vec![Complex::zero(); n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (j, &xi) in x.iter().enumerate() {
            let w = Complex::from_polar(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
            acc = acc + xi * w;
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::zero(); 8];
        x[0] = Complex::one();
        for bin in dft_naive(&x) {
            assert!((bin - Complex::one()).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::from_polar(2.0 * std::f64::consts::PI * 3.0 * i as f64 / n as f64))
            .collect();
        let spec = dft_naive(&x);
        for (k, bin) in spec.iter().enumerate() {
            if k == 3 {
                assert!((bin.re - n as f64).abs() < 1e-9);
            } else {
                assert!(bin.abs() < 1e-9, "leakage in bin {k}: {bin}");
            }
        }
    }
}
