//! Real-input transforms in FFTW's half-complex format.
//!
//! The paper's runtime stores spectra of real signals in "half-complex"
//! arrays (§4.4): for an `N`-point transform of a real signal the layout is
//! `[r0, r1, …, r_{N/2}, i_{N/2-1}, …, i_1]`, exploiting the conjugate
//! symmetry `X[N-k] = conj(X[k])`. All frequency-replacement executors work
//! on this layout.

use crate::{Complex, FftError, FftPlan, SimpleFft};
#[cfg(target_arch = "x86_64")]
use streamlin_support::NoCount;
use streamlin_support::Tally;

/// Which FFT tier backs a [`RealFft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FftKind {
    /// The thesis-derivation recursive transform ([`SimpleFft`]); real
    /// signals are processed as full complex buffers.
    Simple,
    /// The planned iterative transform ([`FftPlan`]) with the packed
    /// real-input algorithm (an `N`-point real transform via an
    /// `N/2`-point complex one) — the FFTW stand-in.
    Tuned,
}

/// Length of the half-complex spectrum of an `n`-point real transform
/// (identical to `n`; provided for readability at call sites).
pub fn halfcomplex_len(n: usize) -> usize {
    n
}

/// Reusable complex workspace for the packed real transforms. Callers
/// that transform repeatedly (e.g. the frequency-stage executor firing
/// once per block) hold one of these so the `n/2`-point complex buffer is
/// allocated once instead of per transform.
#[derive(Debug, Clone, Default)]
pub struct RealFftScratch {
    z: Vec<Complex>,
}

/// A real-input/real-output FFT of fixed power-of-two size.
///
/// # Examples
///
/// ```
/// use streamlin_fft::{FftKind, RealFft};
/// use streamlin_support::OpCounter;
///
/// let fft = RealFft::new(FftKind::Simple, 4).unwrap();
/// let mut ops = OpCounter::new();
/// let spec = fft.forward(&[1.0, 0.0, 0.0, 0.0], &mut ops);
/// // The spectrum of the unit impulse is flat.
/// assert_eq!(spec, vec![1.0, 1.0, 1.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RealFft {
    kind: FftKind,
    n: usize,
    /// `n/2`-point plan for the packed algorithm (`Tuned` only, `n >= 2`).
    half_plan: Option<FftPlan>,
    /// `e^{-2πik/n}` for `k = 0..=n/2` (`Tuned` only).
    unpack_tw: Vec<Complex>,
    /// Runtime AVX support (checked once; used by the uncounted path).
    use_avx: bool,
}

impl RealFft {
    /// Creates a transform of size `n` backed by the given tier.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeNotPowerOfTwo`] unless `n` is a positive
    /// power of two.
    pub fn new(kind: FftKind, n: usize) -> Result<Self, FftError> {
        if !n.is_power_of_two() {
            return Err(FftError::SizeNotPowerOfTwo(n));
        }
        let (half_plan, unpack_tw) = if kind == FftKind::Tuned && n >= 2 {
            let plan = FftPlan::new(n / 2)?;
            let tw = (0..=n / 2)
                .map(|k| Complex::from_polar(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
                .collect();
            (Some(plan), tw)
        } else {
            (None, Vec::new())
        };
        #[cfg(target_arch = "x86_64")]
        let use_avx = std::arch::is_x86_feature_detected!("avx");
        #[cfg(not(target_arch = "x86_64"))]
        let use_avx = false;
        Ok(RealFft {
            kind,
            n,
            half_plan,
            unpack_tw,
            use_avx,
        })
    }

    /// The transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for a zero-point transform (which cannot be built).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The backing tier.
    pub fn kind(&self) -> FftKind {
        self.kind
    }

    /// Forward transform of `n` real samples into a half-complex spectrum.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn forward<T: Tally>(&self, x: &[f64], ops: &mut T) -> Vec<f64> {
        let mut out = Vec::new();
        self.forward_into(x, &mut out, &mut RealFftScratch::default(), ops);
        out
    }

    /// [`Self::forward`] into a caller-owned output buffer and complex
    /// workspace — identical arithmetic in identical order, allocation-free
    /// when the buffers are reused across calls (the `Simple` reference
    /// tier still allocates internally).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn forward_into<T: Tally>(
        &self,
        x: &[f64],
        out: &mut Vec<f64>,
        scratch: &mut RealFftScratch,
        ops: &mut T,
    ) {
        assert_eq!(x.len(), self.n, "real fft input length mismatch");
        out.clear();
        if self.n == 1 {
            out.push(x[0]);
            return;
        }
        match self.kind {
            FftKind::Simple => {
                let buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
                let spec = SimpleFft
                    .forward(&buf, ops)
                    .expect("size validated at construction");
                out.extend_from_slice(&pack_halfcomplex(&spec));
            }
            FftKind::Tuned => self.forward_packed(x, out, scratch, ops),
        }
    }

    /// Inverse transform of a half-complex spectrum into `n` real samples
    /// (includes the 1/N normalization).
    ///
    /// # Panics
    ///
    /// Panics if `hc.len() != self.len()`.
    pub fn inverse<T: Tally>(&self, hc: &[f64], ops: &mut T) -> Vec<f64> {
        let mut out = Vec::new();
        self.inverse_into(hc, &mut out, &mut RealFftScratch::default(), ops);
        out
    }

    /// [`Self::inverse`] into a caller-owned output buffer and complex
    /// workspace (see [`Self::forward_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `hc.len() != self.len()`.
    pub fn inverse_into<T: Tally>(
        &self,
        hc: &[f64],
        out: &mut Vec<f64>,
        scratch: &mut RealFftScratch,
        ops: &mut T,
    ) {
        assert_eq!(hc.len(), self.n, "real ifft input length mismatch");
        out.clear();
        if self.n == 1 {
            out.push(hc[0]);
            return;
        }
        match self.kind {
            FftKind::Simple => {
                let spec = unpack_halfcomplex(hc);
                let time = SimpleFft
                    .inverse(&spec, ops)
                    .expect("size validated at construction");
                out.extend(time.into_iter().map(|z| z.re));
            }
            FftKind::Tuned => self.inverse_packed(hc, out, scratch, ops),
        }
    }

    /// Packed real-input forward transform: an `n`-point real FFT via an
    /// `n/2`-point complex FFT of `z[k] = x[2k] + i·x[2k+1]`.
    fn forward_packed<T: Tally>(
        &self,
        x: &[f64],
        out: &mut Vec<f64>,
        scratch: &mut RealFftScratch,
        ops: &mut T,
    ) {
        let n = self.n;
        let m = n / 2;
        let plan = self
            .half_plan
            .as_ref()
            .expect("tuned plan present for n >= 2");
        let z = &mut scratch.z;
        z.clear();
        z.extend((0..m).map(|k| Complex::new(x[2 * k], x[2 * k + 1])));
        plan.forward(z, ops);
        out.resize(n, 0.0);
        #[cfg(target_arch = "x86_64")]
        if !T::COUNTING && self.use_avx && m >= 2 {
            // SAFETY: `use_avx` is only set when runtime detection
            // confirmed the `avx` target feature (see `RealFft::new`).
            unsafe { self.unpack_forward_avx(z, out) };
            return;
        }
        for k in 0..=m {
            unpack_fwd_k(z, &self.unpack_tw, n, out, k, ops);
        }
    }

    /// The AVX spectrum-unpack pass of the packed forward transform: two
    /// `k` bins per iteration on 4-wide registers. Every complex
    /// add/sub/scale/multiply is evaluated with exactly the scalar path's
    /// operations (separate multiplies, `addsub` for the complex product —
    /// no fusion), so the spectra are bit-identical to the counted loop;
    /// only the bookkeeping-free uncounted path dispatches here. The `k ==
    /// 0`/`k == m` edges and the odd tail run the shared scalar helper.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn unpack_forward_avx(&self, z: &[Complex], out: &mut [f64]) {
        use std::arch::x86_64::*;
        let n = self.n;
        let m = n / 2;
        unpack_fwd_k(z, &self.unpack_tw, n, out, 0, &mut NoCount);
        unpack_fwd_k(z, &self.unpack_tw, n, out, m, &mut NoCount);
        let half = _mm256_set1_pd(0.5);
        // Negates the imaginary lanes (1, 3) — complex conjugation.
        let conj = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
        let zp = z.as_ptr() as *const f64;
        let twp = self.unpack_tw.as_ptr() as *const f64;
        let op = out.as_mut_ptr();
        let mut k = 1;
        while k + 2 <= m {
            let zk = _mm256_loadu_pd(zp.add(2 * k));
            // [z[m-k-1], z[m-k]] -> swap halves -> [z[m-k], z[m-k-1]].
            let zmk_raw = _mm256_loadu_pd(zp.add(2 * (m - k - 1)));
            let zmk = _mm256_xor_pd(_mm256_permute2f128_pd(zmk_raw, zmk_raw, 1), conj);
            // Fe = (Z[k] + conj(Z[M-k]))/2; Fo = -i(Z[k] - conj(Z[M-k]))/2.
            let fe = _mm256_mul_pd(_mm256_add_pd(zk, zmk), half);
            let diff = _mm256_sub_pd(zk, zmk);
            // (diff.im, -diff.re): swap re/im, negate the new im lane.
            let fo = _mm256_mul_pd(_mm256_xor_pd(_mm256_permute_pd(diff, 0b0101), conj), half);
            // tw[k] · fo, elementwise exactly as mul_counted.
            let t = _mm256_loadu_pd(twp.add(2 * k));
            let fo_re = _mm256_movedup_pd(fo);
            let fo_im = _mm256_permute_pd(fo, 0b1111);
            let t_sw = _mm256_permute_pd(t, 0b0101);
            let prod = _mm256_addsub_pd(_mm256_mul_pd(fo_re, t), _mm256_mul_pd(fo_im, t_sw));
            let xk = _mm256_add_pd(fe, prod);
            // out[k..k+2] <- re lanes; out[n-k-1..=n-k] <- im lanes,
            // reversed (out[n-k] pairs with bin k).
            let lo = _mm256_extractf128_pd(xk, 0);
            let hi = _mm256_extractf128_pd(xk, 1);
            let re = _mm_unpacklo_pd(lo, hi);
            let im = _mm_unpackhi_pd(lo, hi);
            _mm_storeu_pd(op.add(k), re);
            _mm_storeu_pd(op.add(n - k - 1), _mm_shuffle_pd(im, im, 0b01));
            k += 2;
        }
        while k < m {
            unpack_fwd_k(z, &self.unpack_tw, n, out, k, &mut NoCount);
            k += 1;
        }
    }

    /// Packed real-input inverse transform.
    fn inverse_packed<T: Tally>(
        &self,
        hc: &[f64],
        out: &mut Vec<f64>,
        scratch: &mut RealFftScratch,
        ops: &mut T,
    ) {
        let n = self.n;
        let m = n / 2;
        let plan = self
            .half_plan
            .as_ref()
            .expect("tuned plan present for n >= 2");
        let z = &mut scratch.z;
        z.clear();
        z.resize(m, Complex::zero());
        #[cfg(target_arch = "x86_64")]
        let packed_by_avx = !T::COUNTING && self.use_avx && m >= 2;
        #[cfg(not(target_arch = "x86_64"))]
        let packed_by_avx = false;
        if packed_by_avx {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `use_avx` is only set when runtime detection
            // confirmed the `avx` target feature (see `RealFft::new`).
            unsafe {
                self.pack_inverse_avx(hc, z)
            };
        } else {
            for (k, zk) in z.iter_mut().enumerate() {
                *zk = pack_inv_k(hc, &self.unpack_tw, n, k, ops);
            }
        }
        plan.inverse(z, ops);
        out.resize(n, 0.0);
        for (k, zk) in z.iter().enumerate() {
            out[2 * k] = zk.re;
            out[2 * k + 1] = zk.im;
        }
    }

    /// The AVX spectrum-pack pass of the packed inverse transform (the
    /// mirror of [`RealFft::unpack_forward_avx`]): gathers two half-complex
    /// bins per iteration into the `n/2`-point complex buffer with exactly
    /// the scalar helper's arithmetic. Uncounted path only; edges and the
    /// odd tail run the shared scalar helper.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn pack_inverse_avx(&self, hc: &[f64], z: &mut [Complex]) {
        use std::arch::x86_64::*;
        let n = self.n;
        let m = n / 2;
        z[0] = pack_inv_k(hc, &self.unpack_tw, n, 0, &mut NoCount);
        let half = _mm256_set1_pd(0.5);
        let conj = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
        let hp = hc.as_ptr();
        let twp = self.unpack_tw.as_ptr() as *const f64;
        let zp = z.as_mut_ptr() as *mut f64;
        let mut k = 1;
        while k + 2 <= m {
            // X[k] = (hc[k], hc[n-k]) for the pair (k, k+1).
            let xk_re = _mm_loadu_pd(hp.add(k));
            let xk_im_raw = _mm_loadu_pd(hp.add(n - k - 1));
            let xk_im = _mm_shuffle_pd(xk_im_raw, xk_im_raw, 0b01);
            let xk = _mm256_set_m128d(_mm_unpackhi_pd(xk_re, xk_im), _mm_unpacklo_pd(xk_re, xk_im));
            // conj(X[m-k]) = (hc[m-k], -hc[m+k]) for the pair (k, k+1).
            let xmk_re_raw = _mm_loadu_pd(hp.add(m - k - 1));
            let xmk_re = _mm_shuffle_pd(xmk_re_raw, xmk_re_raw, 0b01);
            let xmk_im = _mm_loadu_pd(hp.add(m + k));
            let xmk = _mm256_xor_pd(
                _mm256_set_m128d(
                    _mm_unpackhi_pd(xmk_re, xmk_im),
                    _mm_unpacklo_pd(xmk_re, xmk_im),
                ),
                conj,
            );
            let fe = _mm256_mul_pd(_mm256_add_pd(xk, xmk), half);
            let diffh = _mm256_mul_pd(_mm256_sub_pd(xk, xmk), half);
            // conj(tw[k]) · diffh, elementwise exactly as mul_counted.
            let t = _mm256_xor_pd(_mm256_loadu_pd(twp.add(2 * k)), conj);
            let d_re = _mm256_movedup_pd(diffh);
            let d_im = _mm256_permute_pd(diffh, 0b1111);
            let t_sw = _mm256_permute_pd(t, 0b0101);
            let fo = _mm256_addsub_pd(_mm256_mul_pd(d_re, t), _mm256_mul_pd(d_im, t_sw));
            // z[k] = (fe.re - fo.im, fe.im + fo.re).
            let fo_sw = _mm256_permute_pd(fo, 0b0101);
            _mm256_storeu_pd(zp.add(2 * k), _mm256_addsub_pd(fe, fo_sw));
            k += 2;
        }
        while k < m {
            z[k] = pack_inv_k(hc, &self.unpack_tw, n, k, &mut NoCount);
            k += 1;
        }
    }
}

/// One bin of the forward spectrum unpack (shared by the counted scalar
/// loop and the edges/tail of the AVX pass, so both compute byte-for-byte
/// the same expressions).
#[inline]
fn unpack_fwd_k<T: Tally>(
    z: &[Complex],
    tw: &[Complex],
    n: usize,
    out: &mut [f64],
    k: usize,
    ops: &mut T,
) {
    let m = n / 2;
    let zk = z[k % m];
    let zmk = z[(m - k) % m].conj();
    // Fe = (Z[k] + conj(Z[M-k]))/2, the spectrum of the even samples;
    // Fo = -i(Z[k] - conj(Z[M-k]))/2, the spectrum of the odd samples.
    let fe = zk.add_counted(zmk, ops).scale_counted(0.5, ops);
    let diff = zk.sub_counted(zmk, ops);
    let fo = Complex::new(diff.im, -diff.re).scale_counted(0.5, ops);
    let xk = fe.add_counted(tw[k].mul_counted(fo, ops), ops);
    if k == 0 {
        out[0] = xk.re;
    } else if k == m {
        out[m] = xk.re;
    } else {
        out[k] = xk.re;
        out[n - k] = xk.im;
    }
}

/// One bin of the inverse spectrum pack (the scalar twin of the AVX
/// pass's vector body).
#[inline]
fn pack_inv_k<T: Tally>(hc: &[f64], tw: &[Complex], n: usize, k: usize, ops: &mut T) -> Complex {
    let m = n / 2;
    let bin = |k: usize| -> Complex {
        if k == 0 {
            Complex::new(hc[0], 0.0)
        } else if k == m {
            Complex::new(hc[m], 0.0)
        } else {
            Complex::new(hc[k], hc[n - k])
        }
    };
    let xk = bin(k);
    let xmk = bin(m - k).conj();
    let fe = xk.add_counted(xmk, ops).scale_counted(0.5, ops);
    let fo = tw[k]
        .conj()
        .mul_counted(xk.sub_counted(xmk, ops).scale_counted(0.5, ops), ops);
    // z[k] = Fe[k] + i·Fo[k]
    ops.other(2);
    Complex::new(fe.re - fo.im, fe.im + fo.re)
}

/// Pointwise product of two half-complex spectra of length `n` — the
/// frequency-domain equivalent of circular convolution (`Y = X .* H` in
/// Transformation 5 of the paper).
///
/// # Panics
///
/// Panics if the spectra have different lengths.
pub fn halfcomplex_mul<T: Tally>(a: &[f64], b: &[f64], ops: &mut T) -> Vec<f64> {
    let mut out = Vec::new();
    halfcomplex_mul_into(a, b, &mut out, ops);
    out
}

/// [`halfcomplex_mul`] into a caller-owned buffer — identical arithmetic,
/// allocation-free when the buffer is reused across calls.
///
/// # Panics
///
/// Panics if the spectra have different lengths.
pub fn halfcomplex_mul_into<T: Tally>(a: &[f64], b: &[f64], out: &mut Vec<f64>, ops: &mut T) {
    assert_eq!(a.len(), b.len(), "half-complex product length mismatch");
    let n = a.len();
    out.clear();
    out.resize(n, 0.0);
    if n == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if !T::COUNTING && n >= 2 && std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was just detected at runtime.
        unsafe { hc_mul_avx(a, b, out) };
        return;
    }
    out[0] = ops.mul(a[0], b[0]);
    if n == 1 {
        return;
    }
    let m = n / 2;
    if n.is_multiple_of(2) {
        out[m] = ops.mul(a[m], b[m]);
    }
    for k in 1..n.div_ceil(2) {
        if k == n - k {
            continue;
        }
        hc_mul_k(a, b, out, k, ops);
    }
}

/// One conjugate pair of the half-complex product (shared by the counted
/// scalar loop and the tail of the AVX pass).
#[inline]
fn hc_mul_k<T: Tally>(a: &[f64], b: &[f64], out: &mut [f64], k: usize, ops: &mut T) {
    let n = a.len();
    let (ar, ai) = (a[k], a[n - k]);
    let (br, bi) = (b[k], b[n - k]);
    let rr = ops.mul(ar, br);
    let ii = ops.mul(ai, bi);
    let ri = ops.mul(ar, bi);
    let ir = ops.mul(ai, br);
    out[k] = ops.sub(rr, ii);
    out[n - k] = ops.add(ri, ir);
}

/// The AVX half-complex product: four conjugate pairs per iteration, with
/// each lane evaluating exactly the scalar pair's operations (four
/// separate multiplies, one subtract, one add — no fusion), so the
/// product is bit-identical to the counted loop. The imaginary halves are
/// stored reversed in the half-complex layout, so they are loaded and
/// stored through a full 4-lane reverse. Uncounted path only.
///
/// # Safety
///
/// The caller must have verified AVX support at runtime; `out` must
/// already hold `n == a.len() == b.len()` elements with `n >= 2`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn hc_mul_avx(a: &[f64], b: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = a.len();
    let m = n / 2;
    out[0] = a[0] * b[0];
    if n == 1 {
        return;
    }
    if n.is_multiple_of(2) {
        out[m] = a[m] * b[m];
    }
    /// Reverses the four lanes of a `__m256d`.
    #[inline]
    unsafe fn rev(v: std::arch::x86_64::__m256d) -> std::arch::x86_64::__m256d {
        _mm256_permute_pd(_mm256_permute2f128_pd(v, v, 1), 0b0101)
    }
    let half_end = n.div_ceil(2);
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut k = 1;
    // The real block [k, k+3] and the reversed imaginary block
    // [n-k-3, n-k] must stay disjoint (and clear of the midpoint).
    while k + 4 <= half_end && n - k - 3 > k + 3 {
        let ar = _mm256_loadu_pd(ap.add(k));
        let br = _mm256_loadu_pd(bp.add(k));
        let ai = rev(_mm256_loadu_pd(ap.add(n - k - 3)));
        let bi = rev(_mm256_loadu_pd(bp.add(n - k - 3)));
        let rr = _mm256_mul_pd(ar, br);
        let ii = _mm256_mul_pd(ai, bi);
        let ri = _mm256_mul_pd(ar, bi);
        let ir = _mm256_mul_pd(ai, br);
        _mm256_storeu_pd(op.add(k), _mm256_sub_pd(rr, ii));
        _mm256_storeu_pd(op.add(n - k - 3), rev(_mm256_add_pd(ri, ir)));
        k += 4;
    }
    while k < half_end {
        if k != n - k {
            hc_mul_k(a, b, out, k, &mut NoCount);
        }
        k += 1;
    }
}

/// Packs a full conjugate-symmetric spectrum into half-complex layout.
fn pack_halfcomplex(spec: &[Complex]) -> Vec<f64> {
    let n = spec.len();
    let m = n / 2;
    let mut out = vec![0.0; n];
    out[0] = spec[0].re;
    if n > 1 {
        out[m] = spec[m].re;
    }
    for k in 1..m {
        out[k] = spec[k].re;
        out[n - k] = spec[k].im;
    }
    out
}

/// Expands half-complex layout into the full spectrum using conjugate
/// symmetry.
fn unpack_halfcomplex(hc: &[f64]) -> Vec<Complex> {
    let n = hc.len();
    let m = n / 2;
    let mut spec = vec![Complex::zero(); n];
    spec[0] = Complex::new(hc[0], 0.0);
    if n > 1 {
        spec[m] = Complex::new(hc[m], 0.0);
    }
    for k in 1..m {
        spec[k] = Complex::new(hc[k], hc[n - k]);
        spec[n - k] = spec[k].conj();
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_naive;
    use streamlin_support::num::assert_slices_close;
    use streamlin_support::OpCounter;

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect()
    }

    fn reference_halfcomplex(x: &[f64]) -> Vec<f64> {
        let buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        pack_halfcomplex(&dft_naive(&buf))
    }

    #[test]
    fn both_kinds_match_naive_dft() {
        for kind in [FftKind::Simple, FftKind::Tuned] {
            for log_n in 0..8 {
                let n = 1usize << log_n;
                let x = real_signal(n);
                let fft = RealFft::new(kind, n).unwrap();
                let got = fft.forward(&x, &mut OpCounter::new());
                assert_slices_close(&got, &reference_halfcomplex(&x), 1e-9, 1e-9);
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for kind in [FftKind::Simple, FftKind::Tuned] {
            for log_n in 0..8 {
                let n = 1usize << log_n;
                let x = real_signal(n);
                let fft = RealFft::new(kind, n).unwrap();
                let mut ops = OpCounter::new();
                let spec = fft.forward(&x, &mut ops);
                let back = fft.inverse(&spec, &mut ops);
                assert_slices_close(&back, &x, 1e-9, 1e-9);
            }
        }
    }

    #[test]
    fn convolution_theorem_holds() {
        // Circular convolution in time == pointwise product in frequency.
        let n = 16;
        let x = real_signal(n);
        let h: Vec<f64> = (0..n)
            .map(|i| if i < 4 { (i + 1) as f64 } else { 0.0 })
            .collect();
        let mut direct = vec![0.0; n];
        for (i, d) in direct.iter_mut().enumerate() {
            for k in 0..n {
                *d += h[k] * x[(i + n - k) % n];
            }
        }
        for kind in [FftKind::Simple, FftKind::Tuned] {
            let fft = RealFft::new(kind, n).unwrap();
            let mut ops = OpCounter::new();
            let xs = fft.forward(&x, &mut ops);
            let hs = fft.forward(&h, &mut ops);
            let ys = halfcomplex_mul(&xs, &hs, &mut ops);
            let y = fft.inverse(&ys, &mut ops);
            assert_slices_close(&y, &direct, 1e-8, 1e-8);
        }
    }

    #[test]
    fn tuned_kind_is_cheaper_than_simple() {
        let n = 512;
        let x = real_signal(n);
        let mut simple_ops = OpCounter::new();
        RealFft::new(FftKind::Simple, n)
            .unwrap()
            .forward(&x, &mut simple_ops);
        let mut tuned_ops = OpCounter::new();
        RealFft::new(FftKind::Tuned, n)
            .unwrap()
            .forward(&x, &mut tuned_ops);
        assert!(
            tuned_ops.mults() * 2 < simple_ops.mults(),
            "tuned {} vs simple {}",
            tuned_ops.mults(),
            simple_ops.mults()
        );
    }

    #[test]
    fn halfcomplex_mul_identity() {
        // Multiplying by the spectrum of the unit impulse (all-ones) is a no-op.
        let n = 8;
        let x = real_signal(n);
        let fft = RealFft::new(FftKind::Tuned, n).unwrap();
        let mut ops = OpCounter::new();
        let xs = fft.forward(&x, &mut ops);
        let mut impulse = vec![0.0; n];
        impulse[0] = 1.0;
        let hs = fft.forward(&impulse, &mut ops);
        let ys = halfcomplex_mul(&xs, &hs, &mut ops);
        assert_slices_close(&ys, &xs, 1e-9, 1e-9);
    }

    #[test]
    fn tiny_sizes() {
        for kind in [FftKind::Simple, FftKind::Tuned] {
            let fft1 = RealFft::new(kind, 1).unwrap();
            assert_eq!(fft1.forward(&[5.0], &mut OpCounter::new()), vec![5.0]);
            assert_eq!(fft1.inverse(&[5.0], &mut OpCounter::new()), vec![5.0]);
            let fft2 = RealFft::new(kind, 2).unwrap();
            let spec = fft2.forward(&[3.0, 1.0], &mut OpCounter::new());
            assert_slices_close(&spec, &[4.0, 2.0], 1e-12, 0.0);
        }
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(RealFft::new(FftKind::Tuned, 3).is_err());
        assert!(RealFft::new(FftKind::Simple, 0).is_err());
    }

    #[test]
    fn uncounted_transforms_are_bit_identical_to_counted() {
        use streamlin_support::NoCount;
        // Covers the AVX unpack/pack passes (edges, pair loop, odd tails)
        // on machines that have AVX, and the shared scalar path elsewhere.
        for log_n in 1..11 {
            let n = 1usize << log_n;
            let x = real_signal(n);
            let fft = RealFft::new(FftKind::Tuned, n).unwrap();
            let counted = fft.forward(&x, &mut OpCounter::new());
            let free = fft.forward(&x, &mut NoCount);
            for (k, (a, b)) in counted.iter().zip(&free).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "n {n} fwd bin {k}");
            }
            let counted_inv = fft.inverse(&counted, &mut OpCounter::new());
            let free_inv = fft.inverse(&free, &mut NoCount);
            for (k, (a, b)) in counted_inv.iter().zip(&free_inv).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "n {n} inv sample {k}");
            }
        }
    }

    #[test]
    fn uncounted_halfcomplex_mul_is_bit_identical_to_counted() {
        use streamlin_support::NoCount;
        // Sizes straddling the vector width exercise the quad loop, the
        // disjointness cutoff and the scalar tail; odd sizes have no
        // midpoint bin.
        for n in [1usize, 2, 3, 4, 7, 8, 9, 15, 16, 17, 32, 64, 256, 1024] {
            let a = real_signal(n);
            let b: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) % 13) as f64 - 6.0).collect();
            let counted = halfcomplex_mul(&a, &b, &mut OpCounter::new());
            let free = halfcomplex_mul(&a, &b, &mut NoCount);
            for (k, (x, y)) in counted.iter().zip(&free).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "n {n} bin {k}");
            }
        }
    }
}
