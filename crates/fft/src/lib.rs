//! FFT substrate for `streamlin` — the stand-in for FFTW.
//!
//! The paper's frequency replacement (Chapter 4) converts linear nodes into
//! FFT-based convolution and links against FFTW for the transforms. This
//! crate provides that substrate from scratch, in two tiers that reproduce
//! the "simple FFT implementation" vs. "FFTW" comparison of Figure 5-12:
//!
//! * [`SimpleFft`] — a recursive radix-2 transform written directly from the
//!   thesis' §2.3 derivation (even/odd splitting with the `D` twiddle
//!   recurrence of Equation 2.16). It recomputes twiddles on every call and
//!   allocates per level, exactly the kind of straightforward implementation
//!   the paper benchmarks against.
//! * [`FftPlan`] / [`RealFft`] with [`FftKind::Tuned`] — an iterative
//!   Cooley-Tukey transform with a precomputed plan (twiddle tables,
//!   bit-reversal permutation) and a packed *real-input* transform in FFTW's
//!   half-complex format, which is what the paper's runtime interface uses
//!   ("one interesting optimization (directly due to FFTW) is using
//!   half-complex arrays", §4.4).
//!
//! Every runtime kernel threads a [`streamlin_support::OpCounter`] so that
//! executed multiplications and additions are tallied the same way the paper
//! counts x86 FP instructions. Plan construction (like FFTW planning) is not
//! counted.
//!
//! # Examples
//!
//! ```
//! use streamlin_fft::{FftKind, RealFft};
//! use streamlin_support::OpCounter;
//!
//! let fft = RealFft::new(FftKind::Tuned, 8).unwrap();
//! let mut ops = OpCounter::new();
//! let x = [1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0];
//! let spectrum = fft.forward(&x, &mut ops);
//! let back = fft.inverse(&spectrum, &mut ops);
//! for (a, b) in x.iter().zip(&back) {
//!     assert!((a - b).abs() < 1e-9);
//! }
//! ```

mod complex;
mod real;
mod reference;
mod simple;
mod tuned;

pub use complex::Complex;
pub use real::{
    halfcomplex_len, halfcomplex_mul, halfcomplex_mul_into, FftKind, RealFft, RealFftScratch,
};
pub use reference::dft_naive;
pub use simple::SimpleFft;
pub use tuned::FftPlan;

/// Errors produced by FFT construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// The transform size must be a positive power of two.
    SizeNotPowerOfTwo(usize),
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::SizeNotPowerOfTwo(n) => {
                write!(f, "fft size {n} is not a positive power of two")
            }
        }
    }
}

impl std::error::Error for FftError {}
