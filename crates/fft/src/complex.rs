//! A minimal complex number with op-counted arithmetic.

use streamlin_support::Tally;

/// A complex number `re + i·im`.
///
/// Plain operator arithmetic is provided for tests and plan construction;
/// runtime kernels use the `*_counted` methods so that every executed
/// floating-point operation is tallied (a complex multiply is 4 real
/// multiplications and 2 additions, matching the code the paper's backend
/// would emit).
///
/// # Examples
///
/// ```
/// use streamlin_fft::Complex;
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)] // guaranteed [re, im] layout — SIMD kernels load pairs directly
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Zero.
    pub const fn zero() -> Self {
        Complex::new(0.0, 0.0)
    }

    /// One.
    pub const fn one() -> Self {
        Complex::new(1.0, 0.0)
    }

    /// `e^{iθ}` — the unit vector at angle `θ` (Figure 2-4 of the paper).
    pub fn from_polar(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// The `N`-th root of unity `W_N = e^{-2πi/N}` used by the DFT
    /// (Equation 2.6).
    pub fn root_of_unity(n: usize) -> Self {
        Complex::from_polar(-2.0 * std::f64::consts::PI / n as f64)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Counted complex addition (2 FP adds).
    #[inline]
    pub fn add_counted<T: Tally>(self, rhs: Complex, ops: &mut T) -> Complex {
        Complex::new(ops.add(self.re, rhs.re), ops.add(self.im, rhs.im))
    }

    /// Counted complex subtraction (2 FP adds).
    #[inline]
    pub fn sub_counted<T: Tally>(self, rhs: Complex, ops: &mut T) -> Complex {
        Complex::new(ops.sub(self.re, rhs.re), ops.sub(self.im, rhs.im))
    }

    /// Counted complex multiplication (4 FP mults, 2 FP adds).
    #[inline]
    pub fn mul_counted<T: Tally>(self, rhs: Complex, ops: &mut T) -> Complex {
        let rr = ops.mul(self.re, rhs.re);
        let ii = ops.mul(self.im, rhs.im);
        let ri = ops.mul(self.re, rhs.im);
        let ir = ops.mul(self.im, rhs.re);
        Complex::new(ops.sub(rr, ii), ops.add(ri, ir))
    }

    /// Counted scaling by a real (2 FP mults).
    #[inline]
    pub fn scale_counted<T: Tally>(self, k: f64, ops: &mut T) -> Complex {
        Complex::new(ops.mul(self.re, k), ops.mul(self.im, k))
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlin_support::OpCounter;

    #[test]
    fn operator_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, 4.0);
        assert_eq!(a + b, Complex::new(4.0, 6.0));
        assert_eq!(a - b, Complex::new(-2.0, -2.0));
        assert_eq!(a * b, Complex::new(-5.0, 10.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn counted_matches_uncounted() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(0.5, 3.0);
        let mut ops = OpCounter::new();
        assert_eq!(a.add_counted(b, &mut ops), a + b);
        assert_eq!(a.sub_counted(b, &mut ops), a - b);
        assert_eq!(a.mul_counted(b, &mut ops), a * b);
        assert_eq!(ops.mults(), 4);
        assert_eq!(ops.adds(), 6);
    }

    #[test]
    fn roots_of_unity() {
        let w4 = Complex::root_of_unity(4);
        assert!((w4.re - 0.0).abs() < 1e-15);
        assert!((w4.im - -1.0).abs() < 1e-15);
        let w1 = Complex::root_of_unity(1);
        assert!((w1 - Complex::one()).abs() < 1e-15);
    }

    #[test]
    fn polar_magnitude_is_one() {
        for k in 0..8 {
            let z = Complex::from_polar(k as f64);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }
}
