//! Property tests for the FFT crate: linearity, Parseval's identity,
//! round trips and agreement between the two tiers, on random signals.

use proptest::prelude::*;
use streamlin_fft::{dft_naive, halfcomplex_mul, Complex, FftKind, FftPlan, RealFft, SimpleFft};
use streamlin_support::OpCounter;

fn arb_signal(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-16.0f64..16.0, n)
}

fn arb_pow2() -> impl Strategy<Value = usize> {
    (1u32..=7).prop_map(|k| 1usize << k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn real_round_trip((n, seed) in arb_pow2().prop_flat_map(|n| (Just(n), arb_signal(n)))) {
        for kind in [FftKind::Simple, FftKind::Tuned] {
            let fft = RealFft::new(kind, n).unwrap();
            let mut ops = OpCounter::new();
            let back = fft.inverse(&fft.forward(&seed, &mut ops), &mut ops);
            for (a, b) in seed.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-8, "{kind:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn tiers_agree((n, x) in arb_pow2().prop_flat_map(|n| (Just(n), arb_signal(n)))) {
        let mut ops = OpCounter::new();
        let simple = RealFft::new(FftKind::Simple, n).unwrap().forward(&x, &mut ops);
        let tuned = RealFft::new(FftKind::Tuned, n).unwrap().forward(&x, &mut ops);
        for (a, b) in simple.iter().zip(&tuned) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn transform_is_linear((n, x, y) in arb_pow2()
        .prop_flat_map(|n| (Just(n), arb_signal(n), arb_signal(n))))
    {
        let fft = RealFft::new(FftKind::Tuned, n).unwrap();
        let mut ops = OpCounter::new();
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let fx = fft.forward(&x, &mut ops);
        let fy = fft.forward(&y, &mut ops);
        let fsum = fft.forward(&sum, &mut ops);
        for i in 0..n {
            prop_assert!((fsum[i] - (fx[i] + fy[i])).abs() < 1e-7);
        }
    }

    #[test]
    fn parseval((n, x) in arb_pow2().prop_flat_map(|n| (Just(n), arb_signal(n)))) {
        prop_assume!(n >= 2);
        let fft = RealFft::new(FftKind::Tuned, n).unwrap();
        let mut ops = OpCounter::new();
        let spec = fft.forward(&x, &mut ops);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        // Half-complex energy: DC and Nyquist once, others twice.
        let m = n / 2;
        let mut freq_energy = spec[0] * spec[0] + spec[m] * spec[m];
        for k in 1..m {
            freq_energy += 2.0 * (spec[k] * spec[k] + spec[n - k] * spec[n - k]);
        }
        prop_assert!(
            (time_energy - freq_energy / n as f64).abs() < 1e-6 * (1.0 + time_energy),
            "{time_energy} vs {}", freq_energy / n as f64
        );
    }

    #[test]
    fn convolution_theorem((n, x, h) in arb_pow2()
        .prop_flat_map(|n| (Just(n), arb_signal(n), arb_signal(n))))
    {
        let fft = RealFft::new(FftKind::Tuned, n).unwrap();
        let mut ops = OpCounter::new();
        let y = fft.inverse(
            &halfcomplex_mul(&fft.forward(&x, &mut ops), &fft.forward(&h, &mut ops), &mut ops),
            &mut ops,
        );
        for i in 0..n {
            let direct: f64 = (0..n).map(|k| h[k] * x[(i + n - k) % n]).sum();
            prop_assert!((y[i] - direct).abs() < 1e-6 * (1.0 + direct.abs()));
        }
    }

    #[test]
    fn plan_matches_naive_dft((n, x) in arb_pow2()
        .prop_flat_map(|n| (Just(n), arb_signal(n))))
    {
        prop_assume!(n <= 64); // naive DFT is quadratic
        let buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let want = dft_naive(&buf);
        let plan = FftPlan::new(n).unwrap();
        let mut data = buf.clone();
        let mut ops = OpCounter::new();
        plan.forward(&mut data, &mut ops);
        let simple = SimpleFft.forward(&buf, &mut ops).unwrap();
        for i in 0..n {
            prop_assert!((data[i] - want[i]).abs() < 1e-7);
            prop_assert!((simple[i] - want[i]).abs() < 1e-7);
        }
    }
}
