//! Property tests for the support crate: rational field laws and gcd/lcm
//! identities.

use proptest::prelude::*;
use streamlin_support::num::{gcd, lcm};
use streamlin_support::Ratio;

fn arb_ratio() -> impl Strategy<Value = Ratio> {
    (-1000i128..=1000, 1i128..=1000).prop_map(|(n, d)| Ratio::new(n, d))
}

proptest! {
    #[test]
    fn addition_is_commutative_and_associative(a in arb_ratio(), b in arb_ratio(), c in arb_ratio()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_distributes(a in arb_ratio(), b in arb_ratio(), c in arb_ratio()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn subtraction_inverts_addition(a in arb_ratio(), b in arb_ratio()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn division_inverts_multiplication(a in arb_ratio(), b in arb_ratio()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(a * b / b, a);
    }

    #[test]
    fn reduced_form_is_canonical(n in -1000i128..=1000, d in 1i128..=1000, k in 1i128..=50) {
        prop_assert_eq!(Ratio::new(n, d), Ratio::new(n * k, d * k));
    }

    #[test]
    fn ordering_respects_f64(a in arb_ratio(), b in arb_ratio()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    #[test]
    fn gcd_divides_both(a in 1u64..10_000, b in 1u64..10_000) {
        let g = gcd(a, b);
        prop_assert!(g > 0);
        prop_assert_eq!(a % g, 0);
        prop_assert_eq!(b % g, 0);
    }

    #[test]
    fn lcm_is_a_common_multiple(a in 1u64..1000, b in 1u64..1000) {
        let l = lcm(a, b);
        prop_assert_eq!(l % a, 0);
        prop_assert_eq!(l % b, 0);
        prop_assert_eq!(l * gcd(a, b), a * b);
    }
}
