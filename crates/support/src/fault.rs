//! Deterministic fault injection on the zero-cost opt-in pattern.
//!
//! `FaultPlan` is the third trait in the family started by [`Tally`] and
//! continued by [`Probe`]: execution engines are generic over a plan, the
//! production instantiation is a ZST whose hooks are empty
//! `#[inline(always)]` bodies guarded by `const ARMED`, and the opt-in
//! instantiation ([`InjectFaults`]) perturbs keyed sites deterministically
//! from a seed. The parallel runtime consults the plan at four site
//! families:
//!
//! - **batch sites** — before a stage worker executes a schedule step
//!   (`batch_action`: panic, wedge, or slow down the worker);
//! - **ring waits** — each retry of a blocked boundary-ring send/recv
//!   (`ring_wait`: extra sleep, output-preserving);
//! - **pool acquisition** — whole-run worker acquisition
//!   (`pool_refuse`), and per-worker job start (`spawn_abort`, which
//!   kills the pool thread itself rather than the contained job);
//! - **fission planning** — the rewrite pass (`fission_abort`, which
//!   exercises the clean run-unfissed refusal path).
//!
//! Every decision is a pure function of the seed, the spec, and the site
//! key, so a faulted run is reproducible: same seed + spec + program +
//! thread count → same faults at the same points.
//!
//! The spec grammar (`InjectFaults::parse` takes `"<seed>:<spec>"`, specs
//! comma-separated):
//!
//! | directive | effect |
//! |---|---|
//! | `panic[@sK]` | stage `K` (or a seed-chosen stage) panics at a seed-chosen step |
//! | `wedge[@sK]` | stage stops making progress (loops, responsive to teardown) |
//! | `die[@sK]` | the stage's pool thread dies at job start (uncontained panic) |
//! | `slow[@sK]=MICROS` | per-step sleep on one stage (`@sK`) or every stage |
//! | `delay[@cK]=MICROS` | extra sleep per blocked ring retry on channel `K` or all |
//! | `refuse[#N]` | the worker pool refuses the next `N` acquisitions (default 1) |
//! | `nofission` | the fission pass aborts with an injected refusal reason |
//!
//! [`Tally`]: crate::Tally
//! [`Probe`]: crate::Probe

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What an armed plan wants a stage worker to do at a batch site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed normally.
    None,
    /// Panic with the given message (contained by the worker, surfaces as
    /// a structured `WorkerLost` run error).
    Panic(String),
    /// Sleep before executing the step (output-preserving slowdown).
    Sleep(Duration),
    /// Stop making progress until the run is torn down. The worker must
    /// keep checking the poison flag so a watchdog trip still unwinds
    /// cleanly.
    Wedge,
}

/// Compile-time fault-injection policy. See the module docs.
pub trait FaultPlan: Sized + Send + 'static {
    /// `false` for the production plan: every call site is guarded by
    /// `if F::ARMED`, so the hooks below are never reached and the whole
    /// layer monomorphizes away.
    const ARMED: bool;

    /// Called once per pipeline run with the resolved topology, letting
    /// the plan pin "any stage"/"any channel" directives to concrete
    /// seed-derived targets.
    fn arm(&self, stages: usize, chans: usize) {
        let _ = (stages, chans);
    }

    /// Fault decision for schedule step `index` of stage `stage`.
    fn batch_action(&self, stage: usize, index: u64) -> FaultAction {
        let _ = (stage, index);
        FaultAction::None
    }

    /// Extra sleep for one retry of a blocked boundary-ring operation
    /// (`send = true` for a full producer, `false` for an empty consumer).
    fn ring_wait(&self, chan: usize, send: bool) -> Option<Duration> {
        let _ = (chan, send);
        None
    }

    /// If `Some(reason)`, the worker pool refuses this acquisition.
    fn pool_refuse(&self) -> Option<String> {
        None
    }

    /// If `true`, the stage's pool thread dies at job start with an
    /// uncontained panic (exercises pool self-healing).
    fn spawn_abort(&self, stage: usize) -> bool {
        let _ = stage;
        false
    }

    /// If `Some(reason)`, the fission pass aborts with that reason
    /// (exercises the clean run-unfissed path).
    fn fission_abort(&self) -> Option<String> {
        None
    }

    /// One-line description for recorder notes and diagnostics.
    fn describe(&self) -> String {
        "none".into()
    }

    /// A handle for a worker thread; clones share countdown state so a
    /// run-wide budget (e.g. `refuse#2`) stays a single budget.
    fn fork(&self) -> Self;
}

/// The production plan: a ZST that injects nothing and compiles to
/// nothing. Bit-identical outputs are pinned by the equivalence suites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFault;

impl FaultPlan for NoFault {
    const ARMED: bool = false;

    #[inline(always)]
    fn arm(&self, _stages: usize, _chans: usize) {}

    #[inline(always)]
    fn batch_action(&self, _stage: usize, _index: u64) -> FaultAction {
        FaultAction::None
    }

    #[inline(always)]
    fn ring_wait(&self, _chan: usize, _send: bool) -> Option<Duration> {
        None
    }

    #[inline(always)]
    fn pool_refuse(&self) -> Option<String> {
        None
    }

    #[inline(always)]
    fn spawn_abort(&self, _stage: usize) -> bool {
        false
    }

    #[inline(always)]
    fn fission_abort(&self) -> Option<String> {
        None
    }

    #[inline(always)]
    fn fork(&self) -> Self {
        NoFault
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Directive {
    Panic { stage: Option<usize> },
    Wedge { stage: Option<usize> },
    Die { stage: Option<usize> },
    Slow { stage: Option<usize>, micros: u64 },
    Delay { chan: Option<usize>, micros: u64 },
    Refuse { count: u32 },
    NoFission,
}

/// State shared across forks of one parsed plan: the refusal budget is
/// run-wide, and "any stage"/"any channel" targets are resolved once per
/// run by `arm` so every fork agrees on them.
#[derive(Debug)]
struct Shared {
    refusals: AtomicU32,
    stage_any: AtomicUsize,
    chan_any: AtomicUsize,
}

/// Seeded deterministic fault injection; parsed from `"<seed>:<spec>"`.
#[derive(Debug, Clone)]
pub struct InjectFaults {
    seed: u64,
    directives: Vec<Directive>,
    /// Step index at which one-shot batch faults (panic/wedge) fire.
    trigger: u64,
    spec: String,
    shared: Arc<Shared>,
}

/// SplitMix64: the standard 64-bit finalizer used as the deterministic
/// seed → site mapping.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One-shot batch faults fire within the first few schedule steps so
/// short runs still reach them; steps accumulate across cycles, so any
/// paced run comfortably exceeds this bound.
const TRIGGER_SPAN: u64 = 12;

impl InjectFaults {
    /// Parse `"<seed>:<spec>[,<spec>...]"`. See the module docs for the
    /// grammar.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (seed_s, spec) = s
            .split_once(':')
            .ok_or_else(|| format!("expected `<seed>:<spec>`, got `{s}`"))?;
        let seed = if let Some(hex) = seed_s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            seed_s.parse::<u64>()
        }
        .map_err(|_| format!("invalid seed `{seed_s}` (expected a u64)"))?;
        if spec.is_empty() {
            return Err("empty fault spec".into());
        }
        let mut directives = Vec::new();
        let mut refusals: u32 = 0;
        for part in spec.split(',') {
            let d = Self::parse_directive(part)?;
            if let Directive::Refuse { count } = d {
                refusals = refusals.saturating_add(count);
            }
            directives.push(d);
        }
        Ok(InjectFaults {
            seed,
            directives,
            trigger: splitmix64(seed ^ 0xF4A7) % TRIGGER_SPAN,
            spec: spec.to_string(),
            shared: Arc::new(Shared {
                refusals: AtomicU32::new(refusals),
                stage_any: AtomicUsize::new(0),
                chan_any: AtomicUsize::new(0),
            }),
        })
    }

    fn parse_directive(part: &str) -> Result<Directive, String> {
        let bad = || format!("invalid fault directive `{part}`");
        // Split off `=VALUE` first, then `@target` / `#count`.
        let (head, value) = match part.split_once('=') {
            Some((h, v)) => (h, Some(v.parse::<u64>().map_err(|_| bad())?)),
            None => (part, None),
        };
        let (name, target) = match head.split_once('@') {
            Some((n, t)) => (n, Some(t)),
            None => match head.split_once('#') {
                Some((n, c)) => {
                    if n != "refuse" || value.is_some() {
                        return Err(bad());
                    }
                    let count = c.parse::<u32>().map_err(|_| bad())?;
                    return Ok(Directive::Refuse { count });
                }
                None => (head, None),
            },
        };
        let stage_of = |t: Option<&str>| -> Result<Option<usize>, String> {
            match t {
                None => Ok(None),
                Some(t) => t
                    .strip_prefix('s')
                    .and_then(|k| k.parse::<usize>().ok())
                    .map(Some)
                    .ok_or_else(|| format!("invalid stage target in `{part}` (expected sK)")),
            }
        };
        let chan_of = |t: Option<&str>| -> Result<Option<usize>, String> {
            match t {
                None => Ok(None),
                Some(t) => t
                    .strip_prefix('c')
                    .and_then(|k| k.parse::<usize>().ok())
                    .map(Some)
                    .ok_or_else(|| format!("invalid channel target in `{part}` (expected cK)")),
            }
        };
        match (name, value) {
            ("panic", None) => Ok(Directive::Panic {
                stage: stage_of(target)?,
            }),
            ("wedge", None) => Ok(Directive::Wedge {
                stage: stage_of(target)?,
            }),
            ("die", None) => Ok(Directive::Die {
                stage: stage_of(target)?,
            }),
            ("slow", Some(micros)) => Ok(Directive::Slow {
                stage: stage_of(target)?,
                micros,
            }),
            ("delay", Some(micros)) => Ok(Directive::Delay {
                chan: chan_of(target)?,
                micros,
            }),
            ("refuse", None) if target.is_none() => Ok(Directive::Refuse { count: 1 }),
            ("nofission", None) if target.is_none() => Ok(Directive::NoFission),
            _ => Err(bad()),
        }
    }

    /// The seed this plan was parsed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn stage_matches(&self, want: Option<usize>, stage: usize) -> bool {
        match want {
            Some(s) => s == stage,
            None => self.shared.stage_any.load(Ordering::Relaxed) == stage,
        }
    }
}

impl FaultPlan for InjectFaults {
    const ARMED: bool = true;

    fn arm(&self, stages: usize, chans: usize) {
        let s = (splitmix64(self.seed) % stages.max(1) as u64) as usize;
        let c = (splitmix64(self.seed ^ 0xC4A2) % chans.max(1) as u64) as usize;
        self.shared.stage_any.store(s, Ordering::Relaxed);
        self.shared.chan_any.store(c, Ordering::Relaxed);
    }

    fn batch_action(&self, stage: usize, index: u64) -> FaultAction {
        let mut sleep_us: u64 = 0;
        for d in &self.directives {
            match *d {
                Directive::Panic { stage: want }
                    if self.stage_matches(want, stage) && index == self.trigger =>
                {
                    return FaultAction::Panic(format!(
                        "injected fault: worker panic (stage {stage}, step {index}, seed {})",
                        self.seed
                    ));
                }
                Directive::Wedge { stage: want }
                    if self.stage_matches(want, stage) && index == self.trigger =>
                {
                    return FaultAction::Wedge;
                }
                // `slow` with no target perturbs every stage; it is a
                // slowdown, not a kill, so blanket application is the
                // more useful interpretation.
                Directive::Slow {
                    stage: want,
                    micros,
                } if want.is_none_or(|s| s == stage) => {
                    sleep_us = sleep_us.saturating_add(micros);
                }
                _ => {}
            }
        }
        if sleep_us > 0 {
            FaultAction::Sleep(Duration::from_micros(sleep_us))
        } else {
            FaultAction::None
        }
    }

    fn ring_wait(&self, chan: usize, _send: bool) -> Option<Duration> {
        let mut sleep_us: u64 = 0;
        for d in &self.directives {
            if let Directive::Delay { chan: want, micros } = *d {
                if want.is_none_or(|c| c == chan) {
                    sleep_us = sleep_us.saturating_add(micros);
                }
            }
        }
        (sleep_us > 0).then(|| Duration::from_micros(sleep_us))
    }

    fn pool_refuse(&self) -> Option<String> {
        // Run-wide countdown shared across forks: consume one refusal if
        // any remain.
        self.shared
            .refusals
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .ok()
            .map(|left| format!("injected pool refusal ({} more queued)", left - 1))
    }

    fn spawn_abort(&self, stage: usize) -> bool {
        self.directives.iter().any(|d| match *d {
            Directive::Die { stage: want } => self.stage_matches(want, stage),
            _ => false,
        })
    }

    fn fission_abort(&self) -> Option<String> {
        self.directives
            .contains(&Directive::NoFission)
            .then(|| format!("injected fission abort (seed {})", self.seed))
    }

    fn describe(&self) -> String {
        format!("seed={} spec={}", self.seed, self.spec)
    }

    fn fork(&self) -> Self {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nofault_is_a_zst_and_inert() {
        assert_eq!(std::mem::size_of::<NoFault>(), 0);
        fn armed<F: FaultPlan>(_: &F) -> bool {
            F::ARMED
        }
        assert!(!armed(&NoFault));
        assert_eq!(NoFault.batch_action(0, 0), FaultAction::None);
        assert_eq!(NoFault.ring_wait(3, true), None);
        assert_eq!(NoFault.pool_refuse(), None);
        assert!(!NoFault.spawn_abort(0));
        assert_eq!(NoFault.fission_abort(), None);
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        for spec in [
            "1:panic",
            "2:panic@s1",
            "3:wedge",
            "4:wedge@s0",
            "5:die@s2",
            "6:slow=50",
            "7:slow@s1=50",
            "8:delay=10",
            "9:delay@c2=10",
            "10:refuse",
            "11:refuse#3",
            "12:nofission",
            "0x2a:panic,delay=5,refuse#2",
        ] {
            InjectFaults::parse(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for spec in [
            "panic",          // missing seed
            "1:",             // empty spec
            "x:panic",        // bad seed
            "1:explode",      // unknown directive
            "1:panic@c1",     // channel target on a stage directive
            "1:slow",         // missing value
            "1:delay@s1=5",   // stage target on a channel directive
            "1:refuse#x",     // bad count
            "1:nofission@s1", // target on an untargeted directive
            "1:panic=3",      // value on a valueless directive
        ] {
            assert!(InjectFaults::parse(spec).is_err(), "accepted `{spec}`");
        }
    }

    #[test]
    fn batch_faults_are_deterministic_and_keyed() {
        let f = InjectFaults::parse("42:panic@s1").unwrap();
        f.arm(3, 4);
        let hits: Vec<u64> = (0..64)
            .filter(|&i| matches!(f.batch_action(1, i), FaultAction::Panic(_)))
            .collect();
        assert_eq!(hits.len(), 1, "exactly one panic site");
        assert!(hits[0] < TRIGGER_SPAN);
        // Other stages untouched; forks agree.
        assert!((0..64).all(|i| f.batch_action(0, i) == FaultAction::None));
        let g = f.fork();
        assert!(matches!(g.batch_action(1, hits[0]), FaultAction::Panic(_)));
        // Same spec, fresh parse: same site.
        let h = InjectFaults::parse("42:panic@s1").unwrap();
        h.arm(3, 4);
        assert!(matches!(h.batch_action(1, hits[0]), FaultAction::Panic(_)));
    }

    #[test]
    fn any_stage_targets_resolve_at_arm_time() {
        let f = InjectFaults::parse("7:wedge").unwrap();
        f.arm(4, 2);
        let hit: Vec<usize> = (0..4)
            .filter(|&s| (0..TRIGGER_SPAN).any(|i| f.batch_action(s, i) == FaultAction::Wedge))
            .collect();
        assert_eq!(hit.len(), 1, "exactly one seed-chosen stage wedges");
    }

    #[test]
    fn refusal_budget_is_shared_across_forks() {
        let f = InjectFaults::parse("1:refuse#2").unwrap();
        let g = f.fork();
        assert!(f.pool_refuse().is_some());
        assert!(g.pool_refuse().is_some());
        assert!(f.pool_refuse().is_none());
        assert!(g.pool_refuse().is_none());
    }

    #[test]
    fn slow_and_delay_accumulate() {
        let f = InjectFaults::parse("1:slow=30,slow@s2=20,delay@c1=5").unwrap();
        f.arm(3, 2);
        assert_eq!(
            f.batch_action(2, 63),
            FaultAction::Sleep(Duration::from_micros(50))
        );
        assert_eq!(f.ring_wait(1, false), Some(Duration::from_micros(5)));
        assert_eq!(f.ring_wait(0, true), None);
    }
}
