//! Floating-point operation accounting.
//!
//! The paper (§5.1, Table 5.1) defines *FLOPS* as the set of executed IA-32
//! floating-point instructions and *multiplications* as the `fmul`/`fdiv`
//! instruction families (note that divisions are counted as multiplications
//! there; we preserve that convention). This module is the DynamoRIO
//! substitute: every arithmetic kernel of the runtime, matrix, and FFT crates
//! routes its float operations through an [`OpCounter`].

/// Tallies executed floating-point operations.
///
/// The counter distinguishes additions/subtractions, multiplications,
/// divisions and "other" operations (transcendental calls, comparisons,
/// sign changes). Following the paper's measurement convention, divisions
/// are included in the [`mults`](OpCounter::mults) metric.
///
/// # Examples
///
/// ```
/// use streamlin_support::flops::OpCounter;
/// let mut ops = OpCounter::new();
/// let _ = ops.div(1.0, 2.0);
/// assert_eq!(ops.mults(), 1); // fdiv counts as a multiplication instruction
/// assert_eq!(ops.flops(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounter {
    adds: u64,
    muls: u64,
    divs: u64,
    others: u64,
}

impl OpCounter {
    /// Creates a counter with all tallies at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counted addition.
    #[inline]
    pub fn add(&mut self, a: f64, b: f64) -> f64 {
        self.adds += 1;
        a + b
    }

    /// Counted subtraction (tallied with additions, as `fsub` is a FLOP of
    /// the same family).
    #[inline]
    pub fn sub(&mut self, a: f64, b: f64) -> f64 {
        self.adds += 1;
        a - b
    }

    /// Counted multiplication.
    #[inline]
    pub fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.muls += 1;
        a * b
    }

    /// Counted division.
    #[inline]
    pub fn div(&mut self, a: f64, b: f64) -> f64 {
        self.divs += 1;
        a / b
    }

    /// Counted fused multiply-add `acc + a * b` (two operations, matching
    /// the separate `fmul`/`fadd` instructions the paper's backend emits).
    #[inline]
    pub fn fma(&mut self, acc: f64, a: f64, b: f64) -> f64 {
        self.muls += 1;
        self.adds += 1;
        acc + a * b
    }

    /// Counted negation (`fchs` is a FLOP in Table 5.1).
    #[inline]
    pub fn neg(&mut self, a: f64) -> f64 {
        self.others += 1;
        -a
    }

    /// Counted unary operation such as `sin`, `cos`, `atan`, `sqrt`, `abs`
    /// (the `fsin`/`fpatan`/`fsqrt`/`fabs` family — one FLOP each in the
    /// paper's taxonomy).
    #[inline]
    pub fn call(&mut self, f: impl FnOnce(f64) -> f64, a: f64) -> f64 {
        self.others += 1;
        f(a)
    }

    /// Counted floating-point comparison (`fcom` family).
    #[inline]
    pub fn cmp(&mut self) {
        self.others += 1;
    }

    /// Records `n` extra operations in the "other" category.
    #[inline]
    pub fn other(&mut self, n: u64) {
        self.others += n;
    }

    /// Total floating point operations executed.
    pub fn flops(&self) -> u64 {
        self.adds + self.muls + self.divs + self.others
    }

    /// Total "multiplication instructions" in the paper's sense:
    /// the `fmul` family plus the `fdiv` family.
    pub fn mults(&self) -> u64 {
        self.muls + self.divs
    }

    /// Additions and subtractions executed.
    pub fn adds(&self) -> u64 {
        self.adds
    }

    /// Divisions executed (a subset of [`mults`](Self::mults)).
    pub fn divs(&self) -> u64 {
        self.divs
    }

    /// Transcendental calls, comparisons and other miscellaneous FLOPs.
    pub fn others(&self) -> u64 {
        self.others
    }

    /// Resets all tallies to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Adds another counter's tallies into this one.
    pub fn merge(&mut self, other: &OpCounter) {
        self.adds += other.adds;
        self.muls += other.muls;
        self.divs += other.divs;
        self.others += other.others;
    }

    /// Difference `self - earlier`, for measuring a region of execution.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has larger tallies than `self`.
    pub fn since(&self, earlier: &OpCounter) -> OpCounter {
        OpCounter {
            adds: self.adds - earlier.adds,
            muls: self.muls - earlier.muls,
            divs: self.divs - earlier.divs,
            others: self.others - earlier.others,
        }
    }
}

impl std::fmt::Display for OpCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} flops ({} add, {} mul, {} div, {} other)",
            self.flops(),
            self.adds,
            self.muls,
            self.divs,
            self.others
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_results_are_exact() {
        let mut ops = OpCounter::new();
        assert_eq!(ops.add(1.0, 2.0), 3.0);
        assert_eq!(ops.sub(5.0, 2.0), 3.0);
        assert_eq!(ops.mul(3.0, 4.0), 12.0);
        assert_eq!(ops.div(8.0, 2.0), 4.0);
        assert_eq!(ops.neg(7.0), -7.0);
        assert_eq!(ops.fma(1.0, 2.0, 3.0), 7.0);
    }

    #[test]
    fn tallies_accumulate_by_category() {
        let mut ops = OpCounter::new();
        ops.add(0.0, 0.0);
        ops.sub(0.0, 0.0);
        ops.mul(0.0, 0.0);
        ops.div(1.0, 1.0);
        ops.fma(0.0, 0.0, 0.0);
        ops.call(f64::sin, 0.0);
        ops.cmp();
        assert_eq!(ops.adds(), 3); // add + sub + fma's add
        assert_eq!(ops.mults(), 3); // mul + div + fma's mul
        assert_eq!(ops.divs(), 1);
        assert_eq!(ops.others(), 2);
        assert_eq!(ops.flops(), 8);
    }

    #[test]
    fn merge_and_since_are_inverses() {
        let mut a = OpCounter::new();
        a.mul(1.0, 1.0);
        let snapshot = a;
        a.add(1.0, 1.0);
        a.div(1.0, 1.0);
        let delta = a.since(&snapshot);
        assert_eq!(delta.adds(), 1);
        assert_eq!(delta.mults(), 1);
        let mut b = snapshot;
        b.merge(&delta);
        assert_eq!(b, a);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut ops = OpCounter::new();
        ops.mul(1.0, 1.0);
        ops.reset();
        assert_eq!(ops.flops(), 0);
        assert_eq!(ops, OpCounter::new());
    }

    #[test]
    fn display_is_never_empty() {
        let ops = OpCounter::new();
        assert!(!format!("{ops}").is_empty());
    }
}
