//! Floating-point operation accounting.
//!
//! The paper (§5.1, Table 5.1) defines *FLOPS* as the set of executed IA-32
//! floating-point instructions and *multiplications* as the `fmul`/`fdiv`
//! instruction families (note that divisions are counted as multiplications
//! there; we preserve that convention). This module is the DynamoRIO
//! substitute: every arithmetic kernel of the runtime, matrix, and FFT crates
//! routes its float operations through a [`Tally`].
//!
//! Measurement is a *mode*, not a tax: kernels are generic over the
//! [`Tally`] trait, which has two statically-dispatched implementations.
//! [`CountOps`] (an alias for [`OpCounter`]) reproduces the paper's
//! instruction counting exactly; [`NoCount`] is a zero-sized type whose
//! methods monomorphize to the bare arithmetic, so the "production" build
//! of every kernel carries no counter state, no serial dependency on a
//! tally, and nothing that blocks vectorization. Both implementations
//! evaluate the same floating-point expressions in the same order, so
//! their numerical results are bit-identical.

/// Tallies executed floating-point operations.
///
/// The counter distinguishes additions/subtractions, multiplications,
/// divisions and "other" operations (transcendental calls, comparisons,
/// sign changes). Following the paper's measurement convention, divisions
/// are included in the [`mults`](OpCounter::mults) metric.
///
/// # Examples
///
/// ```
/// use streamlin_support::flops::OpCounter;
/// let mut ops = OpCounter::new();
/// let _ = ops.div(1.0, 2.0);
/// assert_eq!(ops.mults(), 1); // fdiv counts as a multiplication instruction
/// assert_eq!(ops.flops(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounter {
    adds: u64,
    muls: u64,
    divs: u64,
    others: u64,
}

impl OpCounter {
    /// Creates a counter with all tallies at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counted addition.
    #[inline]
    pub fn add(&mut self, a: f64, b: f64) -> f64 {
        self.adds += 1;
        a + b
    }

    /// Counted subtraction (tallied with additions, as `fsub` is a FLOP of
    /// the same family).
    #[inline]
    pub fn sub(&mut self, a: f64, b: f64) -> f64 {
        self.adds += 1;
        a - b
    }

    /// Counted multiplication.
    #[inline]
    pub fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.muls += 1;
        a * b
    }

    /// Counted division.
    #[inline]
    pub fn div(&mut self, a: f64, b: f64) -> f64 {
        self.divs += 1;
        a / b
    }

    /// Counted fused multiply-add `acc + a * b` (two operations, matching
    /// the separate `fmul`/`fadd` instructions the paper's backend emits).
    #[inline]
    pub fn fma(&mut self, acc: f64, a: f64, b: f64) -> f64 {
        self.muls += 1;
        self.adds += 1;
        acc + a * b
    }

    /// Counted negation (`fchs` is a FLOP in Table 5.1).
    #[inline]
    pub fn neg(&mut self, a: f64) -> f64 {
        self.others += 1;
        -a
    }

    /// Counted unary operation such as `sin`, `cos`, `atan`, `sqrt`, `abs`
    /// (the `fsin`/`fpatan`/`fsqrt`/`fabs` family — one FLOP each in the
    /// paper's taxonomy).
    #[inline]
    pub fn call(&mut self, f: impl FnOnce(f64) -> f64, a: f64) -> f64 {
        self.others += 1;
        f(a)
    }

    /// Counted floating-point comparison (`fcom` family).
    #[inline]
    pub fn cmp(&mut self) {
        self.others += 1;
    }

    /// Records `n` extra operations in the "other" category.
    #[inline]
    pub fn other(&mut self, n: u64) {
        self.others += n;
    }

    /// Total floating point operations executed.
    pub fn flops(&self) -> u64 {
        self.adds + self.muls + self.divs + self.others
    }

    /// Total "multiplication instructions" in the paper's sense:
    /// the `fmul` family plus the `fdiv` family.
    pub fn mults(&self) -> u64 {
        self.muls + self.divs
    }

    /// Additions and subtractions executed.
    pub fn adds(&self) -> u64 {
        self.adds
    }

    /// Divisions executed (a subset of [`mults`](Self::mults)).
    pub fn divs(&self) -> u64 {
        self.divs
    }

    /// Transcendental calls, comparisons and other miscellaneous FLOPs.
    pub fn others(&self) -> u64 {
        self.others
    }

    /// Resets all tallies to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Adds another counter's tallies into this one.
    pub fn merge(&mut self, other: &OpCounter) {
        self.adds += other.adds;
        self.muls += other.muls;
        self.divs += other.divs;
        self.others += other.others;
    }

    /// Difference `self - earlier`, for measuring a region of execution.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has larger tallies than `self`.
    pub fn since(&self, earlier: &OpCounter) -> OpCounter {
        OpCounter {
            adds: self.adds - earlier.adds,
            muls: self.muls - earlier.muls,
            divs: self.divs - earlier.divs,
            others: self.others - earlier.others,
        }
    }
}

/// Statically-dispatched floating-point arithmetic with optional
/// accounting.
///
/// Every arithmetic kernel in the workspace is generic over a `Tally`.
/// The two implementations are [`CountOps`] (count every operation, the
/// paper's measured experiment) and [`NoCount`] (bare arithmetic, the
/// shipped kernel). Both compute the identical expressions — e.g.
/// [`fma`](Tally::fma) is always the *unfused* `acc + a * b`, matching
/// the separate `fmul`/`fadd` instructions the paper's backend emits —
/// so switching the tally never changes a single output bit.
///
/// # Examples
///
/// ```
/// use streamlin_support::flops::{NoCount, OpCounter, Tally};
///
/// fn dot<T: Tally>(a: &[f64], b: &[f64], ops: &mut T) -> f64 {
///     a.iter().zip(b).fold(0.0, |acc, (&x, &y)| ops.fma(acc, x, y))
/// }
///
/// let (a, b) = ([1.0, 2.0], [3.0, 4.0]);
/// let mut counted = OpCounter::new();
/// let mut free = NoCount;
/// assert_eq!(dot(&a, &b, &mut counted), dot(&a, &b, &mut free));
/// assert_eq!(counted.mults(), 2);
/// assert_eq!(free.counts().flops(), 0);
/// ```
pub trait Tally {
    /// Whether this tally records anything. Kernels may use this to pick
    /// between a counted scalar loop and an explicit-SIMD loop with the
    /// *same* accumulation structure — the results must stay bit-identical
    /// either way; only the bookkeeping may differ.
    const COUNTING: bool;
    /// Addition `a + b`.
    fn add(&mut self, a: f64, b: f64) -> f64;
    /// Subtraction `a - b`.
    fn sub(&mut self, a: f64, b: f64) -> f64;
    /// Multiplication `a * b`.
    fn mul(&mut self, a: f64, b: f64) -> f64;
    /// Division `a / b`.
    fn div(&mut self, a: f64, b: f64) -> f64;
    /// Unfused multiply-add `acc + a * b` (two operations; never a fused
    /// `mul_add`, so results are identical across tallies and targets).
    fn fma(&mut self, acc: f64, a: f64, b: f64) -> f64;
    /// Negation `-a`.
    fn neg(&mut self, a: f64) -> f64;
    /// Unary call such as `sin`, `sqrt`, `abs`.
    fn call(&mut self, f: impl FnOnce(f64) -> f64, a: f64) -> f64;
    /// A floating-point comparison.
    fn cmp(&mut self);
    /// `n` extra operations in the "other" category.
    fn other(&mut self, n: u64);
    /// Snapshot of the tallies ([`OpCounter::default`] for [`NoCount`]).
    fn counts(&self) -> OpCounter;
}

/// The counting tally — the paper's measured experiment. An alias for
/// [`OpCounter`], which implements [`Tally`] by doing what it always did.
pub type CountOps = OpCounter;

impl Tally for OpCounter {
    const COUNTING: bool = true;
    #[inline]
    fn add(&mut self, a: f64, b: f64) -> f64 {
        OpCounter::add(self, a, b)
    }
    #[inline]
    fn sub(&mut self, a: f64, b: f64) -> f64 {
        OpCounter::sub(self, a, b)
    }
    #[inline]
    fn mul(&mut self, a: f64, b: f64) -> f64 {
        OpCounter::mul(self, a, b)
    }
    #[inline]
    fn div(&mut self, a: f64, b: f64) -> f64 {
        OpCounter::div(self, a, b)
    }
    #[inline]
    fn fma(&mut self, acc: f64, a: f64, b: f64) -> f64 {
        OpCounter::fma(self, acc, a, b)
    }
    #[inline]
    fn neg(&mut self, a: f64) -> f64 {
        OpCounter::neg(self, a)
    }
    #[inline]
    fn call(&mut self, f: impl FnOnce(f64) -> f64, a: f64) -> f64 {
        OpCounter::call(self, f, a)
    }
    #[inline]
    fn cmp(&mut self) {
        OpCounter::cmp(self)
    }
    #[inline]
    fn other(&mut self, n: u64) {
        OpCounter::other(self, n)
    }
    #[inline]
    fn counts(&self) -> OpCounter {
        *self
    }
}

/// The free tally: a zero-sized type whose methods monomorphize to bare
/// arithmetic. Kernels instantiated with `NoCount` compile to exactly the
/// code they would contain with no accounting at all — no counter loads or
/// stores, no serial dependency between operations, and loop bodies the
/// compiler can unroll and vectorize.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoCount;

impl Tally for NoCount {
    const COUNTING: bool = false;
    #[inline(always)]
    fn add(&mut self, a: f64, b: f64) -> f64 {
        a + b
    }
    #[inline(always)]
    fn sub(&mut self, a: f64, b: f64) -> f64 {
        a - b
    }
    #[inline(always)]
    fn mul(&mut self, a: f64, b: f64) -> f64 {
        a * b
    }
    #[inline(always)]
    fn div(&mut self, a: f64, b: f64) -> f64 {
        a / b
    }
    #[inline(always)]
    fn fma(&mut self, acc: f64, a: f64, b: f64) -> f64 {
        acc + a * b
    }
    #[inline(always)]
    fn neg(&mut self, a: f64) -> f64 {
        -a
    }
    #[inline(always)]
    fn call(&mut self, f: impl FnOnce(f64) -> f64, a: f64) -> f64 {
        f(a)
    }
    #[inline(always)]
    fn cmp(&mut self) {}
    #[inline(always)]
    fn other(&mut self, _n: u64) {}
    #[inline(always)]
    fn counts(&self) -> OpCounter {
        OpCounter::default()
    }
}

impl std::fmt::Display for OpCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} flops ({} add, {} mul, {} div, {} other)",
            self.flops(),
            self.adds,
            self.muls,
            self.divs,
            self.others
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_results_are_exact() {
        let mut ops = OpCounter::new();
        assert_eq!(ops.add(1.0, 2.0), 3.0);
        assert_eq!(ops.sub(5.0, 2.0), 3.0);
        assert_eq!(ops.mul(3.0, 4.0), 12.0);
        assert_eq!(ops.div(8.0, 2.0), 4.0);
        assert_eq!(ops.neg(7.0), -7.0);
        assert_eq!(ops.fma(1.0, 2.0, 3.0), 7.0);
    }

    #[test]
    fn tallies_accumulate_by_category() {
        let mut ops = OpCounter::new();
        ops.add(0.0, 0.0);
        ops.sub(0.0, 0.0);
        ops.mul(0.0, 0.0);
        ops.div(1.0, 1.0);
        ops.fma(0.0, 0.0, 0.0);
        ops.call(f64::sin, 0.0);
        ops.cmp();
        assert_eq!(ops.adds(), 3); // add + sub + fma's add
        assert_eq!(ops.mults(), 3); // mul + div + fma's mul
        assert_eq!(ops.divs(), 1);
        assert_eq!(ops.others(), 2);
        assert_eq!(ops.flops(), 8);
    }

    #[test]
    fn merge_and_since_are_inverses() {
        let mut a = OpCounter::new();
        a.mul(1.0, 1.0);
        let snapshot = a;
        a.add(1.0, 1.0);
        a.div(1.0, 1.0);
        let delta = a.since(&snapshot);
        assert_eq!(delta.adds(), 1);
        assert_eq!(delta.mults(), 1);
        let mut b = snapshot;
        b.merge(&delta);
        assert_eq!(b, a);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut ops = OpCounter::new();
        ops.mul(1.0, 1.0);
        ops.reset();
        assert_eq!(ops.flops(), 0);
        assert_eq!(ops, OpCounter::new());
    }

    #[test]
    fn display_is_never_empty() {
        let ops = OpCounter::new();
        assert!(!format!("{ops}").is_empty());
    }

    /// Exercises every `Tally` method through a generic function, the way
    /// the kernels do.
    fn tally_all<T: Tally>(ops: &mut T) -> [f64; 7] {
        [
            ops.add(1.5, 2.25),
            ops.sub(5.0, 0.125),
            ops.mul(3.0, 7.0),
            ops.div(9.0, 4.0),
            ops.fma(1.0, 2.0, 3.0),
            ops.neg(6.5),
            ops.call(f64::sqrt, 2.0),
        ]
    }

    #[test]
    fn nocount_is_bit_identical_to_countops() {
        let mut counted = CountOps::new();
        let mut free = NoCount;
        let a = tally_all(&mut counted);
        let b = tally_all(&mut free);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(counted.counts().flops(), 8); // fma counts twice
        assert_eq!(free.counts(), OpCounter::default());
    }

    #[test]
    fn countops_tally_matches_inherent_methods() {
        let mut via_trait = OpCounter::new();
        tally_all(&mut via_trait);
        Tally::cmp(&mut via_trait);
        Tally::other(&mut via_trait, 3);
        let mut direct = OpCounter::new();
        direct.add(0.0, 0.0);
        direct.sub(0.0, 0.0);
        direct.mul(0.0, 0.0);
        direct.div(1.0, 1.0);
        direct.fma(0.0, 0.0, 0.0);
        direct.neg(0.0);
        direct.call(f64::sin, 0.0);
        direct.cmp();
        direct.other(3);
        assert_eq!(via_trait, direct);
    }
}
