//! Runtime telemetry, following the [`crate::flops::Tally`] convention.
//!
//! The paper's methodology is measurement-driven: every experiment in
//! Chapter 5 is an *observed* count, not an estimate. The workspace
//! reproduces arithmetic counting with `Tally`; this module applies the
//! same zero-cost pattern to **time**: the compile pipeline and both
//! runtime engines are generic over a [`Probe`], and the profiler
//! monomorphizes them twice —
//!
//! * [`NoProbe`] is a zero-sized type whose methods are `#[inline(always)]`
//!   empty bodies. Instrumented code guards every record site with
//!   `if P::ENABLED { … }` (a compile-time constant), so production runs
//!   carry **no clocks, no branches, no allocation** — bit-identical
//!   outputs and unchanged throughput.
//! * [`Recorder`] timestamps spans against a shared epoch, keeps bounded
//!   raw events for the Chrome-trace export and unbounded aggregates for
//!   the summary table. Worker threads record into [`Probe::fork`]ed
//!   recorders (same epoch, their own lane) that the coordinator
//!   [`Probe::absorb`]s when the run finishes, so no record site ever
//!   takes a lock.
//!
//! What gets recorded (see the runtime crate for the call sites):
//! compile-phase spans (parse/elaborate/flatten/plan/fission/partition),
//! per-lane firing-batch spans and busy time, stall time by kind
//! (empty-input waits, full-output waits, coordinator quantum waits,
//! between-round idle), ring occupancy samples with high-water marks and
//! full/empty stall counts, per-node firing counts and busy time against
//! the cost model's predicted per-firing cost, and free-form decision
//! notes (fission engagement/refusal, partition shape, pool acquisition).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Why an instrumented wait happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// A consumer waited on an empty boundary ring.
    RecvEmpty,
    /// A producer waited on a full boundary ring.
    SendFull,
    /// The coordinator waited for worker reports at a quantum boundary.
    Quantum,
    /// A worker sat idle between pacing rounds.
    Idle,
}

impl StallKind {
    /// Stable index for fixed-size per-lane accumulators.
    pub fn index(self) -> usize {
        match self {
            StallKind::RecvEmpty => 0,
            StallKind::SendFull => 1,
            StallKind::Quantum => 2,
            StallKind::Idle => 3,
        }
    }

    /// Display label (also the span name in exported traces).
    pub fn label(self) -> &'static str {
        match self {
            StallKind::RecvEmpty => "stall:recv-empty",
            StallKind::SendFull => "stall:send-full",
            StallKind::Quantum => "wait:quantum",
            StallKind::Idle => "idle",
        }
    }
}

/// The telemetry sink the compile pipeline and engines are generic over.
///
/// All durations are nanoseconds relative to the recorder's epoch; a
/// record site reads [`Probe::now`] once before the region and hands the
/// start back when closing it, so disabled probes never touch a clock.
/// Implementations must keep every method cheap and lock-free: the hot
/// paths call them between firings.
pub trait Probe: Sized {
    /// `false` statically removes every record site (the [`NoProbe`]
    /// instantiation): guard allocation or formatting work with
    /// `if P::ENABLED`.
    const ENABLED: bool;

    /// Nanoseconds since the recorder epoch (0 when disabled).
    fn now(&self) -> u64;

    /// Closes a compile-phase span (flatten, plan, fission, …) opened at
    /// `start_ns`.
    fn phase(&mut self, name: &'static str, start_ns: u64);

    /// Closes a firing-batch span: `times` firings of node `node` on
    /// `lane`, opened at `start_ns`. Also accumulates lane busy time and
    /// per-node firing counts/busy time.
    fn batch(&mut self, lane: u32, node: usize, times: u32, start_ns: u64);

    /// Closes a stall span of `kind` on `lane`, opened at `start_ns`.
    fn stall(&mut self, lane: u32, kind: StallKind, start_ns: u64);

    /// Samples a ring's occupancy (high-water tracking + trace counter).
    fn ring_depth(&mut self, chan: usize, depth: usize, ts_ns: u64);

    /// Counts one blocked episode on a ring: `full` for a producer that
    /// found it full, otherwise a consumer that found it empty.
    fn ring_stall(&mut self, chan: usize, full: bool);

    /// Registers a ring's capacity (for `high-water / capacity` reports).
    fn ring_cap(&mut self, chan: usize, cap: usize);

    /// Names a node (summary tables and trace span names).
    fn node_name(&mut self, node: usize, name: &str);

    /// Records the cost model's predicted per-firing cost of a node.
    fn node_cost(&mut self, node: usize, cost: f64);

    /// Names a lane (`coordinator`, `stage 0`, …).
    fn lane_name(&mut self, lane: u32, name: &str);

    /// Records a free-form decision note (`fission`, `pipeline`, `pool`).
    fn note(&mut self, key: &'static str, text: &str);

    /// A probe for a worker thread: same epoch, recording into `lane`.
    fn fork(&self, lane: u32) -> Self;

    /// Merges a forked probe's recordings back.
    fn absorb(&mut self, other: Self);
}

/// The production probe: a zero-sized no-op. Engines monomorphized over
/// `NoProbe` compile to exactly the uninstrumented code — the telemetry
/// equivalence suite pins bit-identical outputs and tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn now(&self) -> u64 {
        0
    }
    #[inline(always)]
    fn phase(&mut self, _name: &'static str, _start_ns: u64) {}
    #[inline(always)]
    fn batch(&mut self, _lane: u32, _node: usize, _times: u32, _start_ns: u64) {}
    #[inline(always)]
    fn stall(&mut self, _lane: u32, _kind: StallKind, _start_ns: u64) {}
    #[inline(always)]
    fn ring_depth(&mut self, _chan: usize, _depth: usize, _ts_ns: u64) {}
    #[inline(always)]
    fn ring_stall(&mut self, _chan: usize, _full: bool) {}
    #[inline(always)]
    fn ring_cap(&mut self, _chan: usize, _cap: usize) {}
    #[inline(always)]
    fn node_name(&mut self, _node: usize, _name: &str) {}
    #[inline(always)]
    fn node_cost(&mut self, _node: usize, _cost: f64) {}
    #[inline(always)]
    fn lane_name(&mut self, _lane: u32, _name: &str) {}
    #[inline(always)]
    fn note(&mut self, _key: &'static str, _text: &str) {}
    #[inline(always)]
    fn fork(&self, _lane: u32) -> Self {
        NoProbe
    }
    #[inline(always)]
    fn absorb(&mut self, _other: Self) {}
}

/// A raw timeline event kept for the Chrome-trace export.
#[derive(Debug, Clone)]
pub enum Event {
    /// A compile-phase span (lane 0).
    Phase {
        /// Phase name.
        name: &'static str,
        /// Start, ns since epoch.
        start_ns: u64,
        /// Duration in ns.
        dur_ns: u64,
    },
    /// A firing-batch span.
    Batch {
        /// Lane (0 = coordinator, k = stage k−1).
        lane: u32,
        /// Node index in the executed flat graph.
        node: usize,
        /// Consecutive firings in the batch.
        times: u32,
        /// Start, ns since epoch.
        start_ns: u64,
        /// Duration in ns.
        dur_ns: u64,
    },
    /// A stall span.
    Stall {
        /// Lane the wait happened on.
        lane: u32,
        /// Why.
        kind: StallKind,
        /// Start, ns since epoch.
        start_ns: u64,
        /// Duration in ns.
        dur_ns: u64,
    },
    /// A ring-occupancy sample (exported as a counter track).
    RingDepth {
        /// Channel id.
        chan: usize,
        /// Items in flight.
        depth: usize,
        /// Sample time, ns since epoch.
        ts_ns: u64,
    },
}

impl Event {
    fn start(&self) -> u64 {
        match self {
            Event::Phase { start_ns, .. }
            | Event::Batch { start_ns, .. }
            | Event::Stall { start_ns, .. } => *start_ns,
            Event::RingDepth { ts_ns, .. } => *ts_ns,
        }
    }
}

/// Per-lane accumulated time, indexed by [`StallKind::index`] for stalls.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneStats {
    /// Time spent inside firing batches.
    pub busy_ns: u64,
    /// Firings executed on this lane.
    pub firings: u64,
    /// Stall time by kind.
    pub stall_ns: [u64; 4],
    /// Stall episodes by kind.
    pub stall_count: [u64; 4],
}

impl LaneStats {
    /// Total recorded stall time, excluding between-round idle (idle is
    /// bounded by the run's tail, not by pipeline contention).
    pub fn contention_ns(&self) -> u64 {
        self.stall_ns[StallKind::RecvEmpty.index()] + self.stall_ns[StallKind::SendFull.index()]
    }
}

/// Per-ring occupancy and blocking statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RingStats {
    /// Highest observed occupancy.
    pub high_water: usize,
    /// Ring capacity (0 if never registered).
    pub cap: usize,
    /// Producer-blocked episodes (ring full).
    pub full_stalls: u64,
    /// Consumer-blocked episodes (ring empty).
    pub empty_stalls: u64,
    /// Occupancy samples taken.
    pub samples: u64,
}

/// Per-node firing statistics against the cost model.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Display name.
    pub name: String,
    /// Firings executed.
    pub firings: u64,
    /// Time inside firing batches of this node.
    pub busy_ns: u64,
    /// Cost model's predicted per-firing cost (arbitrary units).
    pub predicted: f64,
}

/// Raw events kept per run; aggregates are exact regardless. Big enough
/// for hundreds of steady cycles on every benchmark, small enough that a
/// runaway trace stays in the tens of megabytes.
const EVENT_CAP: usize = 1 << 18;

/// The instrumented probe: bounded raw events + exact aggregates.
#[derive(Debug, Clone)]
pub struct Recorder {
    epoch: Instant,
    lane: u32,
    /// Raw timeline (bounded by [`EVENT_CAP`]; see [`Recorder::dropped`]).
    pub events: Vec<Event>,
    /// Events discarded after the cap was reached.
    pub dropped: u64,
    /// Per-lane busy/stall accumulators.
    pub lanes: BTreeMap<u32, LaneStats>,
    /// Per-ring occupancy/blocking accumulators.
    pub rings: BTreeMap<usize, RingStats>,
    /// Per-node firing accumulators.
    pub nodes: BTreeMap<usize, NodeStats>,
    /// Lane display names.
    pub lane_names: BTreeMap<u32, String>,
    /// Decision notes, in emission order.
    pub notes: Vec<(&'static str, String)>,
}

impl Recorder {
    /// A fresh recorder; its creation instant is the trace epoch.
    pub fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            lane: 0,
            events: Vec::new(),
            dropped: 0,
            lanes: BTreeMap::new(),
            rings: BTreeMap::new(),
            nodes: BTreeMap::new(),
            lane_names: BTreeMap::new(),
            notes: Vec::new(),
        }
    }

    /// The lane this recorder's events land on.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    fn push(&mut self, e: Event) {
        if self.events.len() < EVENT_CAP {
            self.events.push(e);
        } else {
            self.dropped += 1;
        }
    }

    /// Total compile-phase time (every [`Event::Phase`] span), in ns.
    /// Phases never nest, so the sum is the wall time spent compiling.
    pub fn compile_ns(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Phase { dur_ns, .. } => Some(*dur_ns),
                _ => None,
            })
            .sum()
    }

    /// Fraction of worker time spent blocked on ring boundaries
    /// (recv-empty + send-full over busy + those stalls), across all
    /// lanes. 0.0 when nothing was recorded.
    pub fn stall_fraction(&self) -> f64 {
        let (mut busy, mut stalled) = (0u64, 0u64);
        for l in self.lanes.values() {
            busy += l.busy_ns;
            stalled += l.contention_ns();
        }
        if busy + stalled == 0 {
            0.0
        } else {
            stalled as f64 / (busy + stalled) as f64
        }
    }

    fn lane_label(&self, lane: u32) -> String {
        self.lane_names
            .get(&lane)
            .cloned()
            .unwrap_or_else(|| format!("lane {lane}"))
    }

    fn node_label(&self, node: usize) -> String {
        match self.nodes.get(&node) {
            Some(s) if !s.name.is_empty() => s.name.clone(),
            _ => format!("node {node}"),
        }
    }

    /// The human `--metrics` report: where time went, per phase, lane,
    /// ring and node, plus the decision notes.
    pub fn summary(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        let _ = writeln!(out, "== compile phases ==");
        for e in &self.events {
            if let Event::Phase { name, dur_ns, .. } = e {
                let _ = writeln!(out, "  {name:<12} {:>9.3} ms", ms(*dur_ns));
            }
        }
        let _ = writeln!(out, "== lanes ==");
        let _ = writeln!(
            out,
            "  {:<12} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "lane", "busy ms", "recv-stall", "send-stall", "quantum", "idle ms", "firings"
        );
        for (&lane, l) in &self.lanes {
            let pct = |kind: StallKind| {
                let s = l.stall_ns[kind.index()];
                let denom = l.busy_ns + l.contention_ns();
                if denom == 0 {
                    format!("{:.2}ms", ms(s))
                } else {
                    format!("{:.2}ms/{:.0}%", ms(s), 100.0 * s as f64 / denom as f64)
                }
            };
            let _ = writeln!(
                out,
                "  {:<12} {:>10.3} {:>12} {:>12} {:>12} {:>10.2} {:>10}",
                self.lane_label(lane),
                ms(l.busy_ns),
                pct(StallKind::RecvEmpty),
                pct(StallKind::SendFull),
                format!(
                    "{}x/{:.2}ms",
                    l.stall_count[StallKind::Quantum.index()],
                    ms(l.stall_ns[StallKind::Quantum.index()])
                ),
                ms(l.stall_ns[StallKind::Idle.index()]),
                l.firings
            );
        }
        if !self.rings.is_empty() {
            let _ = writeln!(out, "== rings ==");
            let _ = writeln!(
                out,
                "  {:<6} {:>15} {:>12} {:>13}",
                "chan", "high-water/cap", "full-stalls", "empty-stalls"
            );
            for (&chan, r) in &self.rings {
                let cap = if r.cap > 0 {
                    format!("{}/{}", r.high_water, r.cap)
                } else {
                    format!("{}", r.high_water)
                };
                let _ = writeln!(
                    out,
                    "  {:<6} {:>15} {:>12} {:>13}",
                    chan, cap, r.full_stalls, r.empty_stalls
                );
            }
        }
        if !self.nodes.is_empty() {
            let _ = writeln!(out, "== nodes ==");
            let _ = writeln!(
                out,
                "  {:<28} {:>10} {:>12} {:>12} {:>10} {:>10}",
                "node", "firings", "busy ms", "ns/firing", "predicted", "meas/pred"
            );
            for s in self.nodes.values() {
                if s.firings == 0 && s.busy_ns == 0 {
                    continue;
                }
                let per = s.busy_ns as f64 / s.firings.max(1) as f64;
                let ratio = if s.predicted > 0.0 {
                    format!("{:.2}", per / s.predicted)
                } else {
                    "-".into()
                };
                let _ = writeln!(
                    out,
                    "  {:<28} {:>10} {:>12.3} {:>12.1} {:>10.1} {:>10}",
                    s.name,
                    s.firings,
                    ms(s.busy_ns),
                    per,
                    s.predicted,
                    ratio
                );
            }
            // Data-parallel fission duplicates are named `fiss[k/w] …`;
            // their busy spread is the worker-imbalance report.
            let fiss: Vec<&NodeStats> = self
                .nodes
                .values()
                .filter(|s| s.name.starts_with("fiss[") && s.firings > 0)
                .collect();
            if fiss.len() > 1 {
                let max = fiss.iter().map(|s| s.busy_ns).max().unwrap_or(0);
                let min = fiss.iter().map(|s| s.busy_ns).min().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  fission imbalance: busiest/laziest worker = {:.2} ({:.3} ms vs {:.3} ms)",
                    max as f64 / min.max(1) as f64,
                    ms(max),
                    ms(min)
                );
            }
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "== decisions ==");
            for (k, v) in &self.notes {
                let _ = writeln!(out, "  {k}: {v}");
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "  (trace truncated: {} events beyond the {EVENT_CAP}-event cap were \
                 dropped; aggregates above remain exact)",
                self.dropped
            );
        }
        out
    }

    /// Chrome trace-event JSON (`chrome://tracing` / Perfetto): one `tid`
    /// lane per worker/stage, `X` spans for firing batches, phases and
    /// stalls, `C` counters for ring occupancy, `i` instants for decision
    /// notes. Events are sorted by start time, so per-lane span
    /// timestamps are monotone.
    pub fn chrome_trace(&self) -> String {
        let us = |ns: u64| ns as f64 / 1e3;
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut emit = |out: &mut String, item: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&item);
        };
        emit(
            &mut out,
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"streamlin\"}}"
                .into(),
        );
        let mut lanes: Vec<u32> = self.lanes.keys().copied().collect();
        for e in &self.events {
            let lane = match e {
                Event::Phase { .. } => 0,
                Event::Batch { lane, .. } | Event::Stall { lane, .. } => *lane,
                Event::RingDepth { .. } => continue,
            };
            if !lanes.contains(&lane) {
                lanes.push(lane);
            }
        }
        lanes.sort_unstable();
        for lane in lanes {
            emit(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{lane},\
                     \"args\":{{\"name\":{}}}}}",
                    json_string(&self.lane_label(lane))
                ),
            );
        }
        for (k, v) in &self.notes {
            emit(
                &mut out,
                format!(
                    "{{\"ph\":\"i\",\"s\":\"g\",\"name\":{},\"pid\":1,\"tid\":0,\"ts\":0}}",
                    json_string(&format!("{k}: {v}"))
                ),
            );
        }
        let mut events: Vec<&Event> = self.events.iter().collect();
        events.sort_by_key(|e| e.start());
        for e in events {
            let item = match e {
                Event::Phase {
                    name,
                    start_ns,
                    dur_ns,
                } => format!(
                    "{{\"ph\":\"X\",\"name\":{},\"cat\":\"compile\",\"pid\":1,\"tid\":0,\
                     \"ts\":{:.3},\"dur\":{:.3}}}",
                    json_string(name),
                    us(*start_ns),
                    us(*dur_ns)
                ),
                Event::Batch {
                    lane,
                    node,
                    times,
                    start_ns,
                    dur_ns,
                } => format!(
                    "{{\"ph\":\"X\",\"name\":{},\"cat\":\"exec\",\"pid\":1,\"tid\":{lane},\
                     \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"firings\":{times}}}}}",
                    json_string(&format!("{} x{times}", self.node_label(*node))),
                    us(*start_ns),
                    us(*dur_ns)
                ),
                Event::Stall {
                    lane,
                    kind,
                    start_ns,
                    dur_ns,
                } => format!(
                    "{{\"ph\":\"X\",\"name\":{},\"cat\":\"stall\",\"pid\":1,\"tid\":{lane},\
                     \"ts\":{:.3},\"dur\":{:.3}}}",
                    json_string(kind.label()),
                    us(*start_ns),
                    us(*dur_ns)
                ),
                Event::RingDepth { chan, depth, ts_ns } => format!(
                    "{{\"ph\":\"C\",\"name\":{},\"pid\":1,\"tid\":0,\"ts\":{:.3},\
                     \"args\":{{\"depth\":{depth}}}}}",
                    json_string(&format!("ring {chan}")),
                    us(*ts_ns)
                ),
            };
            emit(&mut out, item);
        }
        out.push_str("\n]}\n");
        out
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Probe for Recorder {
    const ENABLED: bool = true;

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn phase(&mut self, name: &'static str, start_ns: u64) {
        let dur_ns = self.now().saturating_sub(start_ns);
        self.push(Event::Phase {
            name,
            start_ns,
            dur_ns,
        });
    }

    fn batch(&mut self, lane: u32, node: usize, times: u32, start_ns: u64) {
        let dur_ns = self.now().saturating_sub(start_ns);
        let l = self.lanes.entry(lane).or_default();
        l.busy_ns += dur_ns;
        l.firings += times as u64;
        let n = self.nodes.entry(node).or_default();
        n.firings += times as u64;
        n.busy_ns += dur_ns;
        self.push(Event::Batch {
            lane,
            node,
            times,
            start_ns,
            dur_ns,
        });
    }

    fn stall(&mut self, lane: u32, kind: StallKind, start_ns: u64) {
        let dur_ns = self.now().saturating_sub(start_ns);
        let l = self.lanes.entry(lane).or_default();
        l.stall_ns[kind.index()] += dur_ns;
        l.stall_count[kind.index()] += 1;
        self.push(Event::Stall {
            lane,
            kind,
            start_ns,
            dur_ns,
        });
    }

    fn ring_depth(&mut self, chan: usize, depth: usize, ts_ns: u64) {
        let r = self.rings.entry(chan).or_default();
        r.high_water = r.high_water.max(depth);
        r.samples += 1;
        // Counter samples are dense; keep the trace readable by only
        // recording changes of direction-free duplicates.
        match self.events.last() {
            Some(Event::RingDepth {
                chan: c, depth: d, ..
            }) if *c == chan && *d == depth => {}
            _ => self.push(Event::RingDepth { chan, depth, ts_ns }),
        }
    }

    fn ring_stall(&mut self, chan: usize, full: bool) {
        let r = self.rings.entry(chan).or_default();
        if full {
            r.full_stalls += 1;
        } else {
            r.empty_stalls += 1;
        }
    }

    fn ring_cap(&mut self, chan: usize, cap: usize) {
        self.rings.entry(chan).or_default().cap = cap;
    }

    fn node_name(&mut self, node: usize, name: &str) {
        self.nodes.entry(node).or_default().name = name.to_string();
    }

    fn node_cost(&mut self, node: usize, cost: f64) {
        self.nodes.entry(node).or_default().predicted = cost;
    }

    fn lane_name(&mut self, lane: u32, name: &str) {
        self.lane_names.insert(lane, name.to_string());
    }

    fn note(&mut self, key: &'static str, text: &str) {
        self.notes.push((key, text.to_string()));
    }

    fn fork(&self, lane: u32) -> Self {
        Recorder {
            epoch: self.epoch,
            lane,
            events: Vec::new(),
            dropped: 0,
            lanes: BTreeMap::new(),
            rings: BTreeMap::new(),
            nodes: BTreeMap::new(),
            lane_names: BTreeMap::new(),
            notes: Vec::new(),
        }
    }

    fn absorb(&mut self, other: Self) {
        for e in other.events {
            self.push(e);
        }
        self.dropped += other.dropped;
        for (lane, l) in other.lanes {
            let m = self.lanes.entry(lane).or_default();
            m.busy_ns += l.busy_ns;
            m.firings += l.firings;
            for i in 0..4 {
                m.stall_ns[i] += l.stall_ns[i];
                m.stall_count[i] += l.stall_count[i];
            }
        }
        for (chan, r) in other.rings {
            let m = self.rings.entry(chan).or_default();
            m.high_water = m.high_water.max(r.high_water);
            m.cap = m.cap.max(r.cap);
            m.full_stalls += r.full_stalls;
            m.empty_stalls += r.empty_stalls;
            m.samples += r.samples;
        }
        for (node, n) in other.nodes {
            let m = self.nodes.entry(node).or_default();
            if m.name.is_empty() {
                m.name = n.name;
            }
            m.firings += n.firings;
            m.busy_ns += n.busy_ns;
            if m.predicted == 0.0 {
                m.predicted = n.predicted;
            }
        }
        for (lane, name) in other.lane_names {
            self.lane_names.entry(lane).or_insert(name);
        }
        self.notes.extend(other.notes);
    }
}

/// Escapes a string as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    crate::json::write_string(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noprobe_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoProbe>(), 0);
        const { assert!(!NoProbe::ENABLED) }
        assert_eq!(NoProbe.now(), 0);
    }

    #[test]
    fn recorder_accumulates_lane_and_node_stats() {
        let mut r = Recorder::new();
        let t0 = r.now();
        r.node_name(3, "fir");
        r.batch(1, 3, 16, t0);
        r.stall(1, StallKind::RecvEmpty, r.now());
        assert_eq!(r.lanes[&1].firings, 16);
        assert_eq!(r.nodes[&3].firings, 16);
        assert_eq!(r.lanes[&1].stall_count[StallKind::RecvEmpty.index()], 1);
    }

    #[test]
    fn fork_and_absorb_merge_aggregates() {
        let mut main = Recorder::new();
        let mut w = main.fork(2);
        let t0 = w.now();
        w.batch(2, 0, 4, t0);
        w.ring_depth(7, 5, w.now());
        w.ring_stall(7, true);
        main.absorb(w);
        assert_eq!(main.lanes[&2].firings, 4);
        assert_eq!(main.rings[&7].high_water, 5);
        assert_eq!(main.rings[&7].full_stalls, 1);
    }

    #[test]
    fn high_water_takes_the_max_across_workers() {
        let mut main = Recorder::new();
        let mut a = main.fork(1);
        let mut b = main.fork(2);
        a.ring_depth(0, 3, 10);
        b.ring_depth(0, 9, 20);
        main.absorb(a);
        main.absorb(b);
        assert_eq!(main.rings[&0].high_water, 9);
    }

    #[test]
    fn chrome_trace_contains_lanes_and_spans() {
        let mut r = Recorder::new();
        r.lane_name(1, "stage 0");
        r.node_name(0, "src \"quoted\"");
        let t0 = r.now();
        r.batch(1, 0, 2, t0);
        r.note("fission", "off");
        let trace = r.chrome_trace();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("thread_name"));
        assert!(trace.contains("\\\"quoted\\\""));
        assert!(trace.contains("fission: off"));
    }

    #[test]
    fn event_cap_preserves_aggregates() {
        let mut r = Recorder::new();
        for _ in 0..(EVENT_CAP + 10) {
            let t0 = r.now();
            r.batch(1, 0, 1, t0);
        }
        assert_eq!(r.dropped, 10);
        assert_eq!(r.lanes[&1].firings, (EVENT_CAP + 10) as u64);
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
