//! Small numeric helpers shared across the workspace.

/// Greatest common divisor.
///
/// `gcd(0, 0)` is defined as 0.
///
/// # Examples
///
/// ```
/// assert_eq!(streamlin_support::num::gcd(12, 18), 6);
/// ```
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple.
///
/// # Panics
///
/// Panics on overflow of `u64`.
///
/// # Examples
///
/// ```
/// assert_eq!(streamlin_support::num::lcm(4, 6), 12);
/// ```
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Least common multiple of a sequence; returns 1 for an empty sequence.
pub fn lcm_all<I: IntoIterator<Item = u64>>(xs: I) -> u64 {
    xs.into_iter().fold(1, lcm)
}

/// Smallest power of two `>= n` (and `>= 1`).
///
/// # Examples
///
/// ```
/// assert_eq!(streamlin_support::num::next_pow2(1), 1);
/// assert_eq!(streamlin_support::num::next_pow2(5), 8);
/// assert_eq!(streamlin_support::num::next_pow2(512), 512);
/// ```
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Base-2 logarithm of a power of two.
///
/// # Panics
///
/// Panics if `n` is not a positive power of two.
pub fn log2_exact(n: usize) -> u32 {
    assert!(n.is_power_of_two(), "log2_exact: {n} is not a power of two");
    n.trailing_zeros()
}

/// Approximate float comparison with both absolute and relative tolerance.
///
/// Returns `true` when `|a - b| <= atol + rtol * max(|a|, |b|)`.
///
/// # Examples
///
/// ```
/// use streamlin_support::num::approx_eq;
/// assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 1e-9));
/// assert!(!approx_eq(1.0, 1.1, 1e-9, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, atol: f64, rtol: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() || b.is_nan() {
        return false;
    }
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

/// Asserts two float slices are element-wise approximately equal.
///
/// # Panics
///
/// Panics with a descriptive message on the first mismatching index.
pub fn assert_slices_close(a: &[f64], b: &[f64], atol: f64, rtol: f64) {
    assert_eq!(
        a.len(),
        b.len(),
        "slice lengths differ: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            approx_eq(x, y, atol, rtol),
            "slices differ at index {i}: {x} vs {y} (atol={atol}, rtol={rtol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(7, 13), 91);
        assert_eq!(lcm_all([2, 3, 4]), 12);
        assert_eq!(lcm_all(std::iter::empty()), 1);
    }

    #[test]
    fn pow2_helpers() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(log2_exact(8), 3);
        assert_eq!(log2_exact(1), 0);
    }

    #[test]
    #[should_panic]
    fn log2_rejects_non_powers() {
        log2_exact(6);
    }

    #[test]
    fn approx_eq_handles_nan_and_zero() {
        assert!(!approx_eq(f64::NAN, 1.0, 1e-9, 1e-9));
        assert!(approx_eq(0.0, 0.0, 0.0, 0.0));
        assert!(approx_eq(1e-300, 0.0, 1e-12, 0.0));
    }

    #[test]
    fn slice_comparison_passes_on_close_values() {
        assert_slices_close(&[1.0, 2.0], &[1.0 + 1e-12, 2.0], 1e-9, 1e-9);
    }

    #[test]
    #[should_panic]
    fn slice_comparison_fails_on_mismatch() {
        assert_slices_close(&[1.0], &[2.0], 1e-9, 1e-9);
    }
}
