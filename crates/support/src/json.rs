//! A minimal JSON reader **and writer** for the workspace's artifacts.
//!
//! The workspace carries no serialization dependency. This module is the
//! shared JSON layer: a strict recursive-descent reader — just enough of
//! RFC 8259 to parse what we emit plus anything Chrome/Perfetto would
//! accept, used by the trace validator (`streamlin-runtime::telemetry`)
//! and the trace-shape tests — and the matching writer, used by the
//! `streamlind` wire protocol and `bench_json`. Trailing garbage,
//! unterminated strings and malformed numbers are parse errors, not
//! best-effort results; everything [`Json::dump`] emits parses back to
//! an equal value (finite numbers round-trip bit-exactly).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`, like JavaScript).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Later duplicate keys win, like `JSON.parse`.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serializes to a compact single-line document that [`parse`]
    /// accepts and maps back to an equal value.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Serializes to a multi-line document with two-space indentation,
    /// for committed artifacts meant to be read (and diffed) by humans.
    pub fn dump_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(v) => {
                if v.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent.map(|d| d + 1));
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|d| d + 1));
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, depth: Option<usize>) {
    if let Some(d) = depth {
        out.push('\n');
        for _ in 0..d {
            out.push_str("  ");
        }
    }
}

/// Appends `s` as a JSON string literal (quotes included), escaping
/// quotes, backslashes and control characters. This is the one escaper
/// in the workspace; `probe::json_string` delegates here.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a number. Finite values use Rust's shortest round-trip
/// `Display` form (so `parse` recovers the exact bits); JSON has no
/// NaN/Infinity, so non-finite values serialize as `null`.
pub fn write_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not paired (we never emit
                            // them); replace to stay lossless-enough.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    s.push_str(std::str::from_utf8(&rest[..len]).expect("valid UTF-8 input"));
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_emitted_shapes() {
        let v = parse(r#"{"traceEvents":[{"ph":"X","ts":1.5,"args":{"n":3}},true,null]}"#)
            .expect("parses");
        let events = v.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ts").and_then(Json::as_num), Some(1.5));
    }

    #[test]
    fn escapes_resolve() {
        let v = parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn numbers_cover_the_emitted_formats() {
        assert_eq!(parse("-3.25").unwrap().as_num(), Some(-3.25));
        assert_eq!(parse("1e3").unwrap().as_num(), Some(1000.0));
    }

    #[test]
    fn parses_our_own_escaper() {
        let s = crate::probe::json_string("weird \"x\"\n\\ \u{1} text");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("weird \"x\"\n\\ \u{1} text"));
    }

    #[test]
    fn writer_round_trips_nested_documents() {
        let doc = Json::obj([
            ("name", Json::from("fir — \"edge\" \\ \n\t\u{1}")),
            ("n", Json::from(64usize)),
            (
                "values",
                Json::arr([Json::from(0.1 + 0.2), Json::from(-0.0), Json::Null]),
            ),
            ("nested", Json::obj([("ok", Json::from(true))])),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<String>([])),
        ]);
        assert_eq!(parse(&doc.dump()).unwrap(), doc);
        assert_eq!(parse(&doc.dump_pretty()).unwrap(), doc);
    }

    #[test]
    fn writer_round_trips_floats_bit_exactly() {
        for v in [
            0.1 + 0.2,
            -1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            1e300,
            -2.5e-8,
            123_456_789.123_456_78,
            -0.0,
        ] {
            let mut s = String::new();
            write_num(&mut s, v);
            let back = parse(&s).unwrap().as_num().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} reprinted as {s}");
        }
    }

    #[test]
    fn writer_maps_nonfinite_to_null() {
        assert_eq!(Json::from(f64::NAN).dump(), "null");
        assert_eq!(Json::from(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn compact_dump_is_single_line_and_key_sorted() {
        let doc = Json::obj([("b", Json::from(1.0)), ("a", Json::from(2.0))]);
        assert_eq!(doc.dump(), r#"{"a":2,"b":1}"#);
    }
}
