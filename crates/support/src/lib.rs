//! Shared support utilities for the `streamlin` workspace.
//!
//! This crate is the foundation of the reproduction of *Linear Analysis and
//! Optimization of Stream Programs* (Lamb, 2003). It provides:
//!
//! * [`flops`] — floating-point operation accounting. The paper measures its
//!   optimizations in retired IA-32 floating-point instructions (counted with
//!   a DynamoRIO client, Table 5.1). Our substitute is the [`flops::Tally`]
//!   trait, which every arithmetic kernel in the workspace is generic over:
//!   instantiated with [`flops::CountOps`] (= [`flops::OpCounter`]) the
//!   executed additions, multiplications, divisions and transcendental calls
//!   are tallied at the exact point they happen; instantiated with
//!   [`flops::NoCount`] the same kernels monomorphize to bare, vectorizable
//!   arithmetic with bit-identical results.
//! * [`probe`] — runtime telemetry on the same zero-cost pattern: engines
//!   are generic over [`probe::Probe`]; [`probe::NoProbe`] monomorphizes
//!   every record site away (bit-identical outputs, no clocks), while
//!   [`probe::Recorder`] captures compile-phase spans, per-stage
//!   busy/stall time, ring occupancy and per-node firing costs, and
//!   exports a Chrome trace-event JSON timeline.
//! * [`fault`] — deterministic fault injection on the same pattern:
//!   engines are generic over [`fault::FaultPlan`]; [`fault::NoFault`]
//!   monomorphizes every injection site away (production, bit-identical),
//!   while [`fault::InjectFaults`] perturbs seeded, keyed sites (worker
//!   panics, ring delays, pool refusals, stage wedges) so the
//!   supervisor's teardown and fallback paths can be exercised
//!   reproducibly.
//! * [`json`] — a minimal JSON reader for validating the hand-written
//!   artifacts (traces, bench files) without a serialization dependency.
//! * [`ratio`] — exact rational arithmetic used by the steady-state scheduler.
//! * [`num`] — gcd/lcm, powers of two and approximate float comparison.
//!
//! # Examples
//!
//! ```
//! use streamlin_support::flops::OpCounter;
//!
//! let mut ops = OpCounter::new();
//! let y = ops.mul(3.0, 4.0);
//! let z = ops.add(y, 1.0);
//! assert_eq!(z, 13.0);
//! assert_eq!(ops.mults(), 1);
//! assert_eq!(ops.flops(), 2);
//! ```

pub mod fault;
pub mod flops;
pub mod json;
pub mod num;
pub mod probe;
pub mod ratio;

pub use fault::{FaultAction, FaultPlan, InjectFaults, NoFault};
pub use flops::{CountOps, NoCount, OpCounter, Tally};
pub use probe::{NoProbe, Probe, Recorder, StallKind};
pub use ratio::Ratio;
