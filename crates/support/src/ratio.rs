//! Exact rational arithmetic for steady-state scheduling.
//!
//! Solving the SDF balance equations of a stream graph (paper §3.3.1 and
//! Karczmarek's scheduling work referenced there) requires exact rational
//! repetition rates before normalizing to integers. This is a deliberately
//! minimal signed rational over `i128` — the stream graphs of the benchmark
//! suite stay far away from overflow.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A reduced signed rational number.
///
/// Invariants: the denominator is always positive and `gcd(num, den) == 1`.
///
/// # Examples
///
/// ```
/// use streamlin_support::Ratio;
/// let a = Ratio::new(2, 4);
/// assert_eq!(a, Ratio::new(1, 2));
/// assert_eq!((a * Ratio::from_int(3)).to_string(), "3/2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

fn gcd_i(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// Creates the reduced rational `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd_i(num, den).max(1);
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The rational `n/1`.
    pub fn from_int(n: i128) -> Self {
        Ratio { num: n, den: 1 }
    }

    /// Zero.
    pub fn zero() -> Self {
        Ratio::from_int(0)
    }

    /// One.
    pub fn one() -> Self {
        Ratio::from_int(1)
    }

    /// Numerator of the reduced form.
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator of the reduced form (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True if the value is a (possibly negative) integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        Ratio::new(self.den, self.num)
    }

    /// Converts to `f64` (lossy).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Integer value, if the rational is an integer.
    pub fn to_integer(&self) -> Option<i128> {
        self.is_integer().then_some(self.num)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::zero()
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Least common multiple of the denominators of a sequence of rationals.
///
/// Multiplying every element by the returned value yields integers; this is
/// the normalization step that turns rational repetition rates into the
/// integral steady-state repetition vector.
pub fn common_denominator<'a, I: IntoIterator<Item = &'a Ratio>>(xs: I) -> i128 {
    xs.into_iter().fold(1i128, |acc, r| {
        let g = gcd_i(acc, r.den).max(1);
        acc / g * r.den
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 5), Ratio::zero());
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn field_operations() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(1, 3);
        assert_eq!(a + b, Ratio::new(5, 6));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 6));
        assert_eq!(a / b, Ratio::new(3, 2));
        assert_eq!(-a, Ratio::new(-1, 2));
        assert_eq!(a.recip(), Ratio::from_int(2));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::zero());
        assert_eq!(Ratio::new(2, 6).cmp(&Ratio::new(1, 3)), Ordering::Equal);
    }

    #[test]
    fn conversions() {
        assert_eq!(Ratio::new(3, 1).to_integer(), Some(3));
        assert_eq!(Ratio::new(1, 2).to_integer(), None);
        assert!((Ratio::new(1, 4).to_f64() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn common_denominator_normalizes() {
        let xs = [Ratio::new(1, 2), Ratio::new(1, 3), Ratio::new(5, 6)];
        let d = common_denominator(xs.iter());
        assert_eq!(d, 6);
        for x in &xs {
            assert!((*x * Ratio::from_int(d)).is_integer());
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ratio::new(3, 1).to_string(), "3");
        assert_eq!(Ratio::new(-3, 2).to_string(), "-3/2");
    }
}
