//! Structural statistics over a stream graph (Table 5.2 support).

use crate::ir::Stream;

/// Counts of the structural constructs in a hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Leaf filters.
    pub filters: usize,
    /// Pipeline containers.
    pub pipelines: usize,
    /// Splitjoin containers.
    pub splitjoins: usize,
    /// Feedback loops.
    pub feedbackloops: usize,
}

/// Tallies the constructs of a stream graph.
///
/// # Examples
///
/// ```
/// let p = streamlin_lang::parse(
///     "void->void pipeline Main { add S(); add K(); }
///      void->float filter S { work push 1 { push(1.0); } }
///      float->void filter K { work pop 1 { pop(); } }",
/// )
/// .unwrap();
/// let g = streamlin_graph::elaborate(&p).unwrap();
/// let stats = streamlin_graph::stats::graph_stats(&g);
/// assert_eq!(stats.filters, 2);
/// assert_eq!(stats.pipelines, 1);
/// ```
pub fn graph_stats(s: &Stream) -> GraphStats {
    let mut stats = GraphStats::default();
    visit(s, &mut stats);
    stats
}

fn visit(s: &Stream, stats: &mut GraphStats) {
    match s {
        Stream::Filter(_) => stats.filters += 1,
        Stream::Pipeline(children) => {
            stats.pipelines += 1;
            for c in children {
                visit(c, stats);
            }
        }
        Stream::SplitJoin { children, .. } => {
            stats.splitjoins += 1;
            for c in children {
                visit(c, stats);
            }
        }
        Stream::FeedbackLoop {
            body, loop_stream, ..
        } => {
            stats.feedbackloops += 1;
            visit(body, stats);
            visit(loop_stream, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use streamlin_lang::parse;

    #[test]
    fn nested_structures_are_counted() {
        let p = parse(
            "void->void pipeline Main { add S(); add SJ(); add K(); }
             void->float filter S { work push 1 { push(0.0); } }
             float->float splitjoin SJ {
                 split duplicate;
                 add pipeline { add A(); add A(); }
                 add A();
                 join roundrobin;
             }
             float->float filter A { work pop 1 push 1 { push(pop()); } }
             float->void filter K { work pop 2 { pop(); pop(); } }",
        )
        .unwrap();
        let g = elaborate(&p).unwrap();
        let st = graph_stats(&g);
        assert_eq!(st.filters, 5);
        assert_eq!(st.pipelines, 2);
        assert_eq!(st.splitjoins, 1);
        assert_eq!(st.feedbackloops, 0);
    }
}
