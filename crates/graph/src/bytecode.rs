//! A linear bytecode tier for lowered work functions.
//!
//! The paper's premise is that stream programs reward compilation — yet
//! the slot-resolved bodies of [`crate::lower`] were still *tree-walked*
//! per firing: every expression a `Box` dereference, every statement a
//! recursive call and a per-node `match`. This module flattens the
//! [`RStmt`]/[`RExpr`] tree **once at lowering** into a flat instruction
//! vector with resolved slot operands ([`ByteCode`]), executed by a tight
//! dispatch loop ([`exec`]) over the same two `Vec<Cell>` arrays — no
//! recursion, no pointer chasing, no per-node dispatch beyond one `match`
//! per opcode.
//!
//! Semantics are **bit-identical** to [`crate::lower::SlotInterp`] by
//! construction:
//!
//! * all arithmetic delegates to the shared [`bin_op`]/[`un_op`]/
//!   [`MathFn::call`] kernels, in the same evaluation order (right-hand
//!   sides before assignment indices, interleaved index conversion,
//!   short-circuit `&&`/`||`, single index evaluation for compound
//!   assignment and `++`/`--`);
//! * FLOP tallies fire through the same [`Host`] counting hooks with the
//!   same runtime values, so Measured and Fast modes agree with the
//!   tree-walker to the count;
//! * the fuel discipline is replicated exactly — one [`Op::Spend`] per
//!   statement plus one per loop-iteration check — so a program that
//!   exhausts its fuel budget does so at the same logical point.
//!
//! The executor is generic over [`Host`], so the runtime monomorphizes it
//! per tape discipline exactly as it does the tree-walker: certified
//! phases run with the unchecked window host, uncertified phases with the
//! fully checked one. `tests/interp_differential.rs` and
//! `tests/graph_fuzz.rs` pin the equivalence across the nine paper
//! benchmarks and fuzzed graphs, with `STREAMLIN_NO_BYTECODE` keeping the
//! tree-walker available as the differential reference.
//!
//! On top of the linear opcodes the compiler fuses the benchmarks'
//! dominant firing pattern — the inner-product loop
//! `for (int v = lo; v < hi; v++) acc += a * b` of every windowed-sinc
//! FIR, matched filter and autocorrelation — into a single [`Op::Dot`]
//! superinstruction that runs the whole loop natively over the array
//! storage and the tape host. Recognition is structural; every
//! value-dependent precondition (int bounds, float accumulator,
//! in-range array accesses, fuel headroom) is re-checked at entry, and
//! a miss falls through to the generic bytecode for the same loop, so
//! the fusion is observationally invisible: same values, same tallies,
//! same fuel, same errors, same partial state on failure.

use streamlin_lang::ast::{BinOp, DataType, UnOp};

use crate::exec::{Flow, Host, IndexBuf};
use crate::lower::{RExpr, RLValue, RStmt, Slot, SlotStore};
use crate::value::{bin_op, un_op, ArrayVal, Cell, EvalError, MathFn, Value};

/// One instruction of the flat work-function program. Operands are fully
/// resolved (slots, constants, relative-free jump targets); the operand
/// stack holds plain [`Value`]s.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    /// Spend one unit of fuel (statement entry, loop-iteration check).
    Spend,
    /// Push a constant.
    Const(Value),
    /// Push the scalar at a slot.
    LoadVar(Slot),
    /// Pop `rank` indices, push the array element.
    LoadIndex(Slot, u32),
    /// Pop a value, store it into a scalar slot (coercing).
    StoreVar(Slot),
    /// Pop `rank` indices then the value beneath them, store the element.
    StoreIndex(Slot, u32),
    /// Pop the rhs, read-modify-write a scalar slot, push the old value.
    RmwVar(Slot, BinOp),
    /// Statement form of [`Op::RmwVar`]: discards the old value.
    RmwVarS(Slot, BinOp),
    /// Pop `rank` indices then the rhs, read-modify-write the element
    /// (single index evaluation), push the old value.
    RmwIndex(Slot, BinOp, u32),
    /// Statement form of [`Op::RmwIndex`].
    RmwIndexS(Slot, BinOp, u32),
    /// Install a fresh zeroed scalar in a frame slot.
    DeclScalar(u32, DataType),
    /// Pop `rank` dimension sizes, install a fresh zeroed array.
    DeclArray(u32, DataType, u32),
    /// Pop a value, apply it as a declaration initializer (coercing).
    DeclInit(u32),
    /// Pop a value, validate it as an index, push it back.
    ToIndex,
    /// Pop a value, validate it as a boolean, push it back.
    AsBool,
    /// Pop a value, apply a unary operator, push the result.
    Unary(UnOp),
    /// Pop two values, apply a (non-short-circuit) binary operator.
    Binary(BinOp),
    /// Pop the index, push `peek(i)`.
    Peek,
    /// Push `pop()`.
    PopTape,
    /// Pop a value, `push(v)` it, push `Int(0)` (the expression value).
    PushTape,
    /// Statement form of [`Op::PushTape`]: no expression value.
    PushTapeS,
    /// Pop `argc` arguments, apply a math intrinsic, push the result.
    Math(MathFn, u32),
    /// Pop a value, print it, push `Int(0)` (the expression value).
    Print(bool),
    /// Statement form of [`Op::Print`].
    PrintS(bool),
    /// Unconditional jump.
    Jump(u32),
    /// Pop a boolean; jump when false.
    BranchFalse(u32),
    /// Short-circuit `&&`: pop a boolean; when false, push
    /// `Bool(false)` and jump past the right operand.
    AndSC(u32),
    /// Short-circuit `||`: pop a boolean; when true, push `Bool(true)`
    /// and jump past the right operand.
    OrSC(u32),
    /// Pop and discard one value (expression statements).
    Discard,
    /// `return;` — end the firing with [`Flow::Return`].
    Return,
    /// Fused dot-product loop (index into [`ByteCode::dots`]). Falls
    /// through into the generic loop bytecode when a runtime
    /// precondition fails; jumps to [`DotSpec::exit`] when it ran.
    Dot(u32),
}

/// A bound of a fused dot-product loop: a literal or an int scalar read.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DotBound {
    /// Integer literal.
    Lit(i64),
    /// Scalar slot (must hold an `Int` at runtime, else fall back).
    Var(Slot),
}

/// One multiplicand of a fused dot-product loop body.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DotOperand {
    /// `arr[v]` — a one-dimensional float array indexed by the counter.
    Arr(Slot),
    /// `peek(v)` — the tape at the counter.
    PeekIv,
    /// `peek(s)` — the tape at a loop-invariant int scalar (the loop
    /// writes only the counter and the accumulator, which cannot alias
    /// an int slot, so one read at entry is exact).
    PeekVar(Slot),
}

/// The shape of a fused inner-product loop,
/// `for (int v = lo; v < hi; v++) acc += a * b` — the dominant firing
/// pattern of the paper's benchmarks (every windowed-sinc FIR, every
/// matched filter, Vocoder's autocorrelation). Recognized structurally
/// at compile time; all value-dependent preconditions (int bounds,
/// float accumulator, array type/length, fuel headroom) are checked at
/// entry, with the generic bytecode for the same loop as the fallback.
#[derive(Debug, Clone, PartialEq)]
struct DotSpec {
    /// Frame slot of the counter (declared by the loop's own `init`).
    iv: u32,
    /// Initial counter value.
    lo: DotBound,
    /// Exclusive upper bound.
    hi: DotBound,
    /// Accumulator slot (must hold a float scalar at runtime).
    acc: Slot,
    /// Left multiplicand.
    a: DotOperand,
    /// Right multiplicand.
    b: DotOperand,
    /// Jump target past the generic fallback after a fast-path run.
    exit: u32,
}

/// A compiled work phase: the flat instruction vector plus the operand
/// stack high-water mark (so the executor allocates exactly once).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ByteCode {
    ops: Vec<Op>,
    max_stack: usize,
    /// Side table for [`Op::Dot`] (kept out of [`Op`] to keep the
    /// dispatch array's elements small).
    dots: Vec<DotSpec>,
}

impl ByteCode {
    /// Number of instructions (cost-model/debugging aid).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the phase compiled to no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Flattens a lowered body into bytecode. Infallible: every construct of
/// the resolved tree has a direct instruction sequence, and all static
/// errors were reported at lowering.
pub fn compile(body: &[RStmt]) -> ByteCode {
    let mut c = Compiler {
        ops: Vec::new(),
        depth: 0,
        max: 0,
        dots: Vec::new(),
    };
    for s in body {
        c.stmt(s);
    }
    debug_assert_eq!(c.depth, 0, "statements must be stack-neutral");
    ByteCode {
        ops: c.ops,
        max_stack: c.max,
        dots: c.dots,
    }
}

struct Compiler {
    ops: Vec<Op>,
    /// Operand-stack depth along the fall-through path.
    depth: usize,
    max: usize,
    dots: Vec<DotSpec>,
}

impl Compiler {
    fn emit(&mut self, op: Op, pops: usize, pushes: usize) {
        debug_assert!(self.depth >= pops, "operand stack underflow in {op:?}");
        self.depth = self.depth - pops + pushes;
        self.max = self.max.max(self.depth);
        self.ops.push(op);
    }

    /// Emits a branch with a placeholder target; returns its index for
    /// [`Compiler::patch`].
    fn hole(&mut self, op: Op, pops: usize, pushes: usize) -> usize {
        self.emit(op, pops, pushes);
        self.ops.len() - 1
    }

    /// Points the branch at `at` to the next instruction to be emitted.
    fn patch(&mut self, at: usize) {
        let target = self.ops.len() as u32;
        match &mut self.ops[at] {
            Op::Jump(t) | Op::BranchFalse(t) | Op::AndSC(t) | Op::OrSC(t) => *t = target,
            other => unreachable!("patching non-branch {other:?}"),
        }
    }

    fn stmt(&mut self, s: &RStmt) {
        if let Some(spec) = dot_candidate(s) {
            // Fused fast path first; the generic bytecode for the same
            // loop follows as its fall-through fallback, so any runtime
            // precondition miss (non-int bound, non-float accumulator,
            // short array, low fuel) re-runs with exact semantics.
            let d = self.dots.len();
            self.dots.push(spec);
            self.emit(Op::Dot(d as u32), 0, 0);
            self.generic_stmt(s);
            self.dots[d].exit = self.ops.len() as u32;
            return;
        }
        self.generic_stmt(s);
    }

    fn generic_stmt(&mut self, s: &RStmt) {
        // One fuel unit per statement, mirroring `SlotInterp::exec_stmt`.
        self.emit(Op::Spend, 0, 0);
        match s {
            RStmt::Decl {
                slot,
                base,
                dims,
                init,
                ..
            } => {
                if dims.is_empty() {
                    self.emit(Op::DeclScalar(*slot, *base), 0, 0);
                } else {
                    // Dimension evaluation interleaves with index
                    // validation, exactly as the tree-walker's
                    // `eval(d)?.as_index()?` loop.
                    for d in dims {
                        self.expr(d);
                        self.emit(Op::ToIndex, 1, 1);
                    }
                    self.emit(
                        Op::DeclArray(*slot, *base, dims.len() as u32),
                        dims.len(),
                        0,
                    );
                }
                if let Some(e) = init {
                    self.expr(e);
                    self.emit(Op::DeclInit(*slot), 1, 0);
                }
            }
            RStmt::Assign {
                target, op, value, ..
            } => {
                // The rhs evaluates before any lvalue index expressions.
                self.expr(value);
                match (op, target) {
                    (None, RLValue::Var(slot)) => self.emit(Op::StoreVar(*slot), 1, 0),
                    (None, RLValue::Index(slot, idx)) => {
                        self.indices(idx);
                        self.emit(Op::StoreIndex(*slot, idx.len() as u32), idx.len() + 1, 0);
                    }
                    (Some(op), RLValue::Var(slot)) => self.emit(Op::RmwVarS(*slot, *op), 1, 0),
                    (Some(op), RLValue::Index(slot, idx)) => {
                        self.indices(idx);
                        self.emit(
                            Op::RmwIndexS(*slot, *op, idx.len() as u32),
                            idx.len() + 1,
                            0,
                        );
                    }
                }
            }
            RStmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.expr(cond);
                let to_else = self.hole(Op::BranchFalse(0), 1, 0);
                for s in then_blk {
                    self.stmt(s);
                }
                match else_blk {
                    None => self.patch(to_else),
                    Some(else_blk) => {
                        let to_end = self.hole(Op::Jump(0), 0, 0);
                        self.patch(to_else);
                        for s in else_blk {
                            self.stmt(s);
                        }
                        self.patch(to_end);
                    }
                }
            }
            RStmt::While { cond, body, .. } => {
                let top = self.ops.len() as u32;
                // One fuel unit per iteration check, before the condition.
                self.emit(Op::Spend, 0, 0);
                self.expr(cond);
                let to_end = self.hole(Op::BranchFalse(0), 1, 0);
                for s in body {
                    self.stmt(s);
                }
                self.emit(Op::Jump(top), 0, 0);
                self.patch(to_end);
            }
            RStmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                let top = self.ops.len() as u32;
                self.emit(Op::Spend, 0, 0);
                let to_end = match cond {
                    Some(c) => {
                        self.expr(c);
                        Some(self.hole(Op::BranchFalse(0), 1, 0))
                    }
                    None => None,
                };
                for s in body {
                    self.stmt(s);
                }
                if let Some(s) = step {
                    self.stmt(s);
                }
                self.emit(Op::Jump(top), 0, 0);
                if let Some(h) = to_end {
                    self.patch(h);
                }
            }
            RStmt::Expr(e, _) => self.expr_stmt(e),
            RStmt::Return => self.emit(Op::Return, 0, 0),
        }
    }

    /// Compiles an expression whose value is discarded, fusing the
    /// discard into the producing opcode where one exists.
    fn expr_stmt(&mut self, e: &RExpr) {
        match e {
            RExpr::Push(v) => {
                self.expr(v);
                self.emit(Op::PushTapeS, 1, 0);
            }
            RExpr::Print { newline, arg } => {
                self.expr(arg);
                self.emit(Op::PrintS(*newline), 1, 0);
            }
            RExpr::PostIncDec { target, inc } => {
                let op = if *inc { BinOp::Add } else { BinOp::Sub };
                self.emit(Op::Const(Value::Int(1)), 0, 1);
                match target {
                    RLValue::Var(slot) => self.emit(Op::RmwVarS(*slot, op), 1, 0),
                    RLValue::Index(slot, idx) => {
                        self.indices(idx);
                        self.emit(Op::RmwIndexS(*slot, op, idx.len() as u32), idx.len() + 1, 0);
                    }
                }
            }
            other => {
                self.expr(other);
                self.emit(Op::Discard, 1, 0);
            }
        }
    }

    /// Compiles index expressions, validating each as it is produced
    /// (the tree-walker's interleaved `eval(e)?.as_index()?`).
    fn indices(&mut self, idx: &[RExpr]) {
        for e in idx {
            self.expr(e);
            self.emit(Op::ToIndex, 1, 1);
        }
    }

    /// Compiles an expression that leaves exactly one value on the stack.
    fn expr(&mut self, e: &RExpr) {
        match e {
            RExpr::Int(v) => self.emit(Op::Const(Value::Int(*v)), 0, 1),
            RExpr::Float(v) => self.emit(Op::Const(Value::Float(*v)), 0, 1),
            RExpr::Bool(v) => self.emit(Op::Const(Value::Bool(*v)), 0, 1),
            RExpr::Var(slot) => self.emit(Op::LoadVar(*slot), 0, 1),
            RExpr::Index(slot, idx) => {
                self.indices(idx);
                self.emit(Op::LoadIndex(*slot, idx.len() as u32), idx.len(), 1);
            }
            RExpr::Unary(op, e) => {
                self.expr(e);
                self.emit(Op::Unary(*op), 1, 1);
            }
            RExpr::Binary(BinOp::And, a, b) => {
                self.expr(a);
                // The taken path pushes Bool(false) and jumps; both paths
                // reach the merge with one value on the stack.
                let end = self.hole(Op::AndSC(0), 1, 0);
                self.expr(b);
                self.emit(Op::AsBool, 1, 1);
                self.patch(end);
            }
            RExpr::Binary(BinOp::Or, a, b) => {
                self.expr(a);
                let end = self.hole(Op::OrSC(0), 1, 0);
                self.expr(b);
                self.emit(Op::AsBool, 1, 1);
                self.patch(end);
            }
            RExpr::Binary(op, a, b) => {
                self.expr(a);
                self.expr(b);
                self.emit(Op::Binary(*op), 2, 1);
            }
            RExpr::Peek(i) => {
                self.expr(i);
                self.emit(Op::Peek, 1, 1);
            }
            RExpr::Pop => self.emit(Op::PopTape, 0, 1),
            RExpr::Push(v) => {
                self.expr(v);
                self.emit(Op::PushTape, 1, 1);
            }
            RExpr::Math(f, args) => {
                for a in args {
                    self.expr(a);
                }
                self.emit(Op::Math(*f, args.len() as u32), args.len(), 1);
            }
            RExpr::Print { newline, arg } => {
                self.expr(arg);
                self.emit(Op::Print(*newline), 1, 1);
            }
            RExpr::PostIncDec { target, inc } => {
                let op = if *inc { BinOp::Add } else { BinOp::Sub };
                self.emit(Op::Const(Value::Int(1)), 0, 1);
                match target {
                    RLValue::Var(slot) => self.emit(Op::RmwVar(*slot, op), 1, 1),
                    RLValue::Index(slot, idx) => {
                        self.indices(idx);
                        self.emit(Op::RmwIndex(*slot, op, idx.len() as u32), idx.len() + 1, 1);
                    }
                }
            }
        }
    }
}

/// Structurally matches `for (int v = lo; v < hi; v++) acc += a * b`
/// where `lo`/`hi` are literals or variables other than `v`, and `a`/`b`
/// are each `arr[v]`, `peek(v)` or `peek(s)`. Value-level preconditions
/// are left to runtime; this only guarantees the *shape* (in particular
/// that the loop writes nothing but `v` and `acc`, making single reads
/// of the bounds and any `peek(s)` index exact).
fn dot_candidate(s: &RStmt) -> Option<DotSpec> {
    let RStmt::For {
        init: Some(init),
        cond: Some(cond),
        step: Some(step),
        body,
        ..
    } = s
    else {
        return None;
    };
    let RStmt::Decl {
        slot: iv,
        base: DataType::Int,
        dims,
        init: Some(lo),
        ..
    } = &**init
    else {
        return None;
    };
    if !dims.is_empty() {
        return None;
    }
    let lo = dot_bound(lo, *iv)?;
    let RExpr::Binary(BinOp::Lt, cl, ch) = cond else {
        return None;
    };
    if **cl != RExpr::Var(Slot::Frame(*iv)) {
        return None;
    }
    let hi = dot_bound(ch, *iv)?;
    let counter = RLValue::Var(Slot::Frame(*iv));
    match &**step {
        RStmt::Expr(RExpr::PostIncDec { target, inc: true }, _) if *target == counter => {}
        RStmt::Assign {
            target,
            op: Some(BinOp::Add),
            value: RExpr::Int(1),
            ..
        } if *target == counter => {}
        _ => return None,
    }
    let [RStmt::Assign {
        target: RLValue::Var(acc),
        op: Some(BinOp::Add),
        value: RExpr::Binary(BinOp::Mul, a, b),
        ..
    }] = body.as_slice()
    else {
        return None;
    };
    if *acc == Slot::Frame(*iv) {
        return None;
    }
    Some(DotSpec {
        iv: *iv,
        lo,
        hi,
        acc: *acc,
        a: dot_operand(a, *iv)?,
        b: dot_operand(b, *iv)?,
        exit: 0, // patched once the generic fallback is laid out
    })
}

fn dot_bound(e: &RExpr, iv: u32) -> Option<DotBound> {
    match e {
        RExpr::Int(k) => Some(DotBound::Lit(*k)),
        // The counter's own (freshly declared) slot is excluded: its
        // value changes every iteration.
        RExpr::Var(s) if *s != Slot::Frame(iv) => Some(DotBound::Var(*s)),
        _ => None,
    }
}

fn dot_operand(e: &RExpr, iv: u32) -> Option<DotOperand> {
    match e {
        RExpr::Index(slot, idx) => match idx.as_slice() {
            [RExpr::Var(s)] if *s == Slot::Frame(iv) => Some(DotOperand::Arr(*slot)),
            _ => None,
        },
        RExpr::Peek(i) => match &**i {
            RExpr::Var(s) if *s == Slot::Frame(iv) => Some(DotOperand::PeekIv),
            RExpr::Var(s) => Some(DotOperand::PeekVar(*s)),
            _ => None,
        },
        _ => None,
    }
}

// ---- execution --------------------------------------------------------------

/// The FLOP-accounting rule of the tree-walker, verbatim: only operations
/// touching a float value count, bucketed by operator family.
#[inline]
fn count_binop<H: Host>(host: &mut H, op: BinOp, a: Value, b: Value) {
    if !(a.is_float() || b.is_float()) {
        return; // integer/boolean ops are not FP instructions
    }
    match op {
        BinOp::Add | BinOp::Sub => host.count_add(),
        BinOp::Mul => host.count_mul(),
        BinOp::Div => host.count_div(),
        BinOp::Rem => host.count_other(),               // fprem
        op if op.is_comparison() => host.count_other(), // fcom
        _ => {}
    }
}

/// Pops `rank` validated indices off the stack top into an index buffer.
#[inline]
fn take_indices(stack: &mut Vec<Value>, rank: usize) -> Result<IndexBuf, EvalError> {
    let start = stack.len() - rank;
    let mut idx = IndexBuf::default();
    for v in &stack[start..] {
        idx.push(v.as_index()?);
    }
    stack.truncate(start);
    Ok(idx)
}

#[inline]
fn array_cell_mut<'a>(
    store: &'a mut SlotStore<'_>,
    slot: Slot,
) -> Result<&'a mut ArrayVal, EvalError> {
    match store.cell_mut(slot) {
        Cell::Array(a) => Ok(a),
        Cell::Scalar(..) => Err(EvalError::new("variable is a scalar, not an array")),
    }
}

/// Shared-borrow cell read (the fused dot loop holds several at once).
#[inline]
fn cell_ref<'a>(store: &'a SlotStore<'_>, slot: Slot) -> &'a Cell {
    match slot {
        Slot::Global(i) => &store.globals[i as usize],
        Slot::Frame(i) => &store.frame[i as usize],
    }
}

/// Reads a loop bound; `None` (non-int value) falls back.
#[inline]
fn dot_bound_val(store: &SlotStore<'_>, b: DotBound) -> Option<i64> {
    match b {
        DotBound::Lit(k) => Some(k),
        DotBound::Var(s) => match cell_ref(store, s) {
            Cell::Scalar(_, Value::Int(v)) => Some(*v),
            _ => None,
        },
    }
}

/// A resolved multiplicand: borrowed array contents or a tape index.
enum DotSrc<'a> {
    Arr(&'a [Value]),
    PeekIv,
    PeekAt(usize),
}

/// Resolves an operand, proving every access the loop will make is one
/// the tree-walker would also accept (in-range counter indices for
/// arrays, a non-negative invariant index for `peek(s)`); `None` falls
/// back to the generic bytecode, which reproduces the exact error.
fn dot_src<'a>(store: &'a SlotStore<'_>, op: DotOperand, lo: i64, hi: i64) -> Option<DotSrc<'a>> {
    match op {
        DotOperand::Arr(slot) => match cell_ref(store, slot) {
            Cell::Array(a) if a.elem == DataType::Float && a.dims.len() == 1 => {
                if lo < hi && (lo < 0 || hi as u64 > a.data.len() as u64) {
                    return None;
                }
                Some(DotSrc::Arr(&a.data))
            }
            _ => None,
        },
        DotOperand::PeekIv => {
            if lo < hi && lo < 0 {
                return None; // as_index would reject a negative counter
            }
            Some(DotSrc::PeekIv)
        }
        DotOperand::PeekVar(s) => match cell_ref(store, s) {
            Cell::Scalar(_, Value::Int(v)) if *v >= 0 => Some(DotSrc::PeekAt(*v as usize)),
            _ => None,
        },
    }
}

#[inline(always)]
fn dot_read<H: Host>(src: &DotSrc<'_>, i: i64, host: &mut H) -> Result<f64, EvalError> {
    match *src {
        DotSrc::Arr(data) => match data[i as usize] {
            Value::Float(f) => Ok(f),
            // Float arrays hold floats by construction; mirror the
            // tree-walker's promotion for completeness.
            v => v.as_f64(),
        },
        DotSrc::PeekIv => host.peek(i as usize),
        DotSrc::PeekAt(j) => host.peek(j),
    }
}

/// Runs a fused dot-product loop. `Ok(Some(fuel))` means the fast path
/// ran to completion (counter and accumulator written back, fuel
/// charged exactly as the generic shape would); `Ok(None)` means a
/// precondition failed and the generic bytecode should run instead —
/// in that case **no** state was touched. A tape error mid-loop writes
/// back the partial accumulator and counter first, matching the
/// tree-walker's state at the same failure point.
fn run_dot<H: Host>(
    spec: &DotSpec,
    store: &mut SlotStore<'_>,
    host: &mut H,
    fuel: u64,
) -> Result<Option<u64>, EvalError> {
    let Some(lo) = dot_bound_val(store, spec.lo) else {
        return Ok(None);
    };
    let Some(hi) = dot_bound_val(store, spec.hi) else {
        return Ok(None);
    };
    let n = if hi > lo { (hi - lo) as u64 } else { 0 };
    // Fuel mirror of the generic shape: the `for` statement, the counter
    // declaration, one check + one body + one step per iteration, and
    // the final failed check.
    let Some(need) = n.checked_mul(3).and_then(|f| f.checked_add(3)) else {
        return Ok(None);
    };
    if fuel < need {
        return Ok(None); // let the generic loop exhaust fuel precisely
    }
    let mut acc = match cell_ref(store, spec.acc) {
        Cell::Scalar(DataType::Float, Value::Float(v)) => *v,
        _ => return Ok(None),
    };
    let mut i = lo;
    let end: Result<Option<()>, EvalError> = {
        match (
            dot_src(store, spec.a, lo, hi),
            dot_src(store, spec.b, lo, hi),
        ) {
            (Some(a), Some(b)) => loop {
                if i >= hi {
                    break Ok(Some(()));
                }
                let x = match dot_read(&a, i, host) {
                    Ok(v) => v,
                    Err(e) => break Err(e),
                };
                let y = match dot_read(&b, i, host) {
                    Ok(v) => v,
                    Err(e) => break Err(e),
                };
                host.count_mul();
                host.count_add();
                acc += x * y;
                i += 1;
            },
            _ => Ok(None),
        }
    };
    match end {
        Ok(None) => Ok(None),
        Ok(Some(())) => {
            write_dot_state(store, spec, acc, i);
            Ok(Some(fuel - need))
        }
        Err(e) => {
            write_dot_state(store, spec, acc, i);
            Err(e)
        }
    }
}

/// Writes the counter (fresh declaration semantics) and accumulator
/// back to their slots.
fn write_dot_state(store: &mut SlotStore<'_>, spec: &DotSpec, acc: f64, i: i64) {
    store.frame[spec.iv as usize] = Cell::Scalar(DataType::Int, Value::Int(i));
    match store.cell_mut(spec.acc) {
        Cell::Scalar(_, v) => *v = Value::Float(acc),
        Cell::Array(_) => unreachable!("checked float scalar at loop entry"),
    }
}

/// Executes a compiled work phase over slot storage, driving the same
/// [`Host`] protocol (tape access, printing, FLOP tallies) and the same
/// fuel discipline as [`crate::lower::SlotInterp::exec_work`].
///
/// # Errors
///
/// Propagates any [`EvalError`], with messages identical to the
/// tree-walker's (the differential suites compare failure text too).
pub fn exec<H: Host>(
    code: &ByteCode,
    store: &mut SlotStore<'_>,
    host: &mut H,
    mut fuel: u64,
) -> Result<Flow, EvalError> {
    let mut stack: Vec<Value> = Vec::with_capacity(code.max_stack);
    let ops = code.ops.as_slice();
    let mut pc = 0usize;
    while let Some(op) = ops.get(pc) {
        pc += 1;
        match op {
            Op::Spend => {
                if fuel == 0 {
                    return Err(EvalError::new(
                        "execution fuel exhausted (possible infinite loop)",
                    ));
                }
                fuel -= 1;
            }
            Op::Const(v) => stack.push(*v),
            Op::LoadVar(slot) => match store.cell_mut(*slot) {
                Cell::Scalar(_, v) => stack.push(*v),
                Cell::Array(_) => {
                    return Err(EvalError::new(
                        "variable is an array; index it to read an element",
                    ))
                }
            },
            Op::LoadIndex(slot, rank) => {
                let idx = take_indices(&mut stack, *rank as usize)?;
                let a = array_cell_mut(store, *slot)?;
                stack.push(a.get(idx.as_slice())?);
            }
            Op::StoreVar(slot) => {
                let v = stack.pop().expect("stack sized at compile time");
                match store.cell_mut(*slot) {
                    Cell::Scalar(ty, cur) => *cur = v.coerce_to(*ty)?,
                    Cell::Array(_) => {
                        return Err(EvalError::new("cannot assign a scalar to an array"))
                    }
                }
            }
            Op::StoreIndex(slot, rank) => {
                let idx = take_indices(&mut stack, *rank as usize)?;
                let v = stack.pop().expect("stack sized at compile time");
                let a = array_cell_mut(store, *slot)?;
                a.set(idx.as_slice(), v)?;
            }
            Op::RmwVar(slot, op) => {
                let rhs = stack.pop().expect("stack sized at compile time");
                let cur = rmw_var(store, host, *slot, *op, rhs)?;
                stack.push(cur);
            }
            Op::RmwVarS(slot, op) => {
                let rhs = stack.pop().expect("stack sized at compile time");
                rmw_var(store, host, *slot, *op, rhs)?;
            }
            Op::RmwIndex(slot, op, rank) => {
                let idx = take_indices(&mut stack, *rank as usize)?;
                let rhs = stack.pop().expect("stack sized at compile time");
                let cur = rmw_index(store, host, *slot, *op, &idx, rhs)?;
                stack.push(cur);
            }
            Op::RmwIndexS(slot, op, rank) => {
                let idx = take_indices(&mut stack, *rank as usize)?;
                let rhs = stack.pop().expect("stack sized at compile time");
                rmw_index(store, host, *slot, *op, &idx, rhs)?;
            }
            Op::DeclScalar(slot, base) => {
                store.frame[*slot as usize] = Cell::Scalar(*base, Value::zero_of(*base));
            }
            Op::DeclArray(slot, base, rank) => {
                let start = stack.len() - *rank as usize;
                let mut sizes = Vec::with_capacity(*rank as usize);
                for v in &stack[start..] {
                    sizes.push(v.as_index()?);
                }
                stack.truncate(start);
                store.frame[*slot as usize] = Cell::Array(ArrayVal::zeros(*base, sizes));
            }
            Op::DeclInit(slot) => {
                let v = stack.pop().expect("stack sized at compile time");
                match &mut store.frame[*slot as usize] {
                    Cell::Scalar(ty, cur) => *cur = v.coerce_to(*ty)?,
                    Cell::Array(_) => {
                        return Err(EvalError::new("cannot assign a scalar to an array"))
                    }
                }
            }
            Op::ToIndex => {
                let v = stack.pop().expect("stack sized at compile time");
                stack.push(Value::Int(v.as_index()? as i64));
            }
            Op::AsBool => {
                let v = stack.pop().expect("stack sized at compile time");
                stack.push(Value::Bool(v.as_bool()?));
            }
            Op::Unary(op) => {
                let v = stack.pop().expect("stack sized at compile time");
                if *op == UnOp::Neg && v.is_float() {
                    host.count_other(); // fchs
                }
                stack.push(un_op(*op, v)?);
            }
            Op::Binary(op) => {
                let y = stack.pop().expect("stack sized at compile time");
                let x = stack.pop().expect("stack sized at compile time");
                count_binop(host, *op, x, y);
                stack.push(bin_op(*op, x, y)?);
            }
            Op::Peek => {
                let i = stack.pop().expect("stack sized at compile time");
                stack.push(Value::Float(host.peek(i.as_index()?)?));
            }
            Op::PopTape => stack.push(Value::Float(host.pop()?)),
            Op::PushTape => {
                let v = stack.pop().expect("stack sized at compile time");
                host.push(v.as_f64()?)?;
                // `push` has no value; Int(0) keeps it harmless in
                // expression position.
                stack.push(Value::Int(0));
            }
            Op::PushTapeS => {
                let v = stack.pop().expect("stack sized at compile time");
                host.push(v.as_f64()?)?;
            }
            Op::Math(f, argc) => {
                // Arity was validated at lowering and never exceeds 2.
                let argc = *argc as usize;
                let start = stack.len() - argc;
                let mut vals = [Value::Int(0); 2];
                vals[..argc].copy_from_slice(&stack[start..]);
                stack.truncate(start);
                let r = f.call(&vals[..argc])?;
                if r.is_float() {
                    host.count_other(); // transcendental FP instruction
                }
                stack.push(r);
            }
            Op::Print(newline) => {
                let v = stack.pop().expect("stack sized at compile time");
                host.print(v, *newline)?;
                stack.push(Value::Int(0));
            }
            Op::PrintS(newline) => {
                let v = stack.pop().expect("stack sized at compile time");
                host.print(v, *newline)?;
            }
            Op::Jump(t) => pc = *t as usize,
            Op::BranchFalse(t) => {
                let v = stack.pop().expect("stack sized at compile time");
                if !v.as_bool()? {
                    pc = *t as usize;
                }
            }
            Op::AndSC(t) => {
                let v = stack.pop().expect("stack sized at compile time");
                if !v.as_bool()? {
                    stack.push(Value::Bool(false));
                    pc = *t as usize;
                }
            }
            Op::OrSC(t) => {
                let v = stack.pop().expect("stack sized at compile time");
                if v.as_bool()? {
                    stack.push(Value::Bool(true));
                    pc = *t as usize;
                }
            }
            Op::Discard => {
                stack.pop().expect("stack sized at compile time");
            }
            Op::Return => return Ok(Flow::Return),
            Op::Dot(d) => {
                let spec = &code.dots[*d as usize];
                // `None` falls through into the generic loop laid after
                // this op, which re-runs the statement from scratch.
                if let Some(left) = run_dot(spec, store, host, fuel)? {
                    fuel = left;
                    pc = spec.exit as usize;
                }
            }
        }
    }
    Ok(Flow::Normal)
}

/// Compound assignment / `++`/`--` on a scalar slot; returns the prior
/// value (the expression value of `PostIncDec`).
#[inline(always)]
fn rmw_var<H: Host>(
    store: &mut SlotStore<'_>,
    host: &mut H,
    slot: Slot,
    op: BinOp,
    rhs: Value,
) -> Result<Value, EvalError> {
    let cur = match store.cell_mut(slot) {
        Cell::Scalar(_, v) => *v,
        Cell::Array(_) => {
            return Err(EvalError::new(
                "variable is an array; index it to read an element",
            ))
        }
    };
    count_binop(host, op, cur, rhs);
    let next = bin_op(op, cur, rhs)?;
    match store.cell_mut(slot) {
        Cell::Scalar(ty, cell) => *cell = next.coerce_to(*ty)?,
        Cell::Array(_) => unreachable!("checked scalar above"),
    }
    Ok(cur)
}

/// Compound assignment / `++`/`--` on an array element (single index
/// evaluation); returns the prior value.
#[inline(always)]
fn rmw_index<H: Host>(
    store: &mut SlotStore<'_>,
    host: &mut H,
    slot: Slot,
    op: BinOp,
    idx: &IndexBuf,
    rhs: Value,
) -> Result<Value, EvalError> {
    let a = array_cell_mut(store, slot)?;
    let cur = a.get(idx.as_slice())?;
    count_binop(host, op, cur, rhs);
    let next = bin_op(op, cur, rhs)?;
    a.set(idx.as_slice(), next)?;
    Ok(cur)
}
