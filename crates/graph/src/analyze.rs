//! Verified-filter dataflow framework: a flow-sensitive abstract
//! interpreter over the lowered work bodies ([`crate::lower`]).
//!
//! The paper's compiler symbolically executes work functions to extract
//! linear coefficients (§3.2). This module generalises that move into a
//! reusable abstract interpretation with three clients:
//!
//! 1. **Rate & bounds certification** — peek offsets are tracked as
//!    integer intervals and pop/push counts are accumulated symbolically
//!    along all paths. A phase whose tape accesses provably stay inside
//!    the declared `peek` window and whose final pop/push counts provably
//!    equal the declared rates earns a [`RateCert`]; the runtime engines
//!    use it to elide per-access tape checks and post-firing rate
//!    validation. Provable violations become [`AnalysisError`]s that fail
//!    elaboration with source spans instead of surfacing as runtime
//!    `EvalError`s on the Nth firing.
//! 2. **State-effect lattice** — [`StateEffect`]: `Pure ⊏ ReadsState ⊏
//!    AffineState ⊏ OpaqueState`. `AffineState` means every executed
//!    write to persistent state stores a value that is affine in fields
//!    and inputs (degree ≤ linear in the abstract domain). Fission
//!    consults this instead of a syntactic `writes_global` walk, so a
//!    store that only happens in a provably-dead branch no longer blocks
//!    data parallelism.
//! 3. **Lints** — [`Lint`]s with spans: dead field stores, constant
//!    conditions, possibly-out-of-range peeks, possible rate mismatches.
//!    (Unused-field/-parameter lints are added at elaboration, which
//!    still sees the source names.)
//!
//! The analysis is deliberately *checked against the concrete
//! semantics*: constant folding calls the very same [`bin_op`]/[`un_op`]/
//! [`MathFn::call`] the runtime interpreter uses, so a decided branch or
//! loop trip count can never disagree with execution.

use std::collections::{HashMap, HashSet};

use streamlin_lang::ast::{BinOp, DataType, UnOp};
use streamlin_lang::token::Span;

use crate::ir::WorkFn;
use crate::lower::{LoweredFilter, LoweredWork, RExpr, RLValue, RStmt, Slot};
use crate::value::{bin_op, Cell, Value};

/// Sentinel for "no static bound" in pop/push counters.
const UNBOUNDED: i64 = i64::MAX;

/// Abstract steps (statements evaluated) per phase before the analysis
/// gives up and reports conservative facts.
const ANALYSIS_FUEL: u64 = 2_000_000;

/// Concrete iterations a single loop may be unrolled before the analysis
/// falls back to widening.
const MAX_UNROLL: u64 = 65_536;

// ---------------------------------------------------------------------------
// Public facts
// ---------------------------------------------------------------------------

/// How a filter's work code interacts with its persistent state
/// (fields). Ordered: each level includes everything the previous one
/// permits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum StateEffect {
    /// Neither reads nor writes mutable state on any executed path.
    Pure,
    /// Reads mutable state, never writes it on any executed path.
    ReadsState,
    /// Writes state, but every stored value is affine in fields and
    /// inputs (and array stores use constant indices).
    AffineState,
    /// Writes state in a way the analysis cannot bound.
    #[default]
    OpaqueState,
}

impl std::fmt::Display for StateEffect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StateEffect::Pure => "pure",
            StateEffect::ReadsState => "reads-state",
            StateEffect::AffineState => "affine-state",
            StateEffect::OpaqueState => "opaque-state",
        })
    }
}

/// Proof that one work phase always pops/pushes exactly its declared
/// rates and every tape access stays inside the declared peek window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateCert {
    /// Certified peek window.
    pub peek: usize,
    /// Certified pop count.
    pub pop: usize,
    /// Certified push count.
    pub push: usize,
}

/// Per-phase analysis results.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseFacts {
    /// Present iff the phase's rates and bounds were proved.
    pub cert: Option<RateCert>,
    /// Why certification failed (absent when `cert` is present).
    pub uncertified: Option<String>,
    /// Statically possible pop counts (`i64::MAX` = unbounded).
    pub pop_range: (i64, i64),
    /// Statically possible push counts (`i64::MAX` = unbounded).
    pub push_range: (i64, i64),
}

/// A spanned advisory diagnostic produced by the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Stable lint identifier (`dead-store`, `constant-condition`,
    /// `peek-range`, `rate-mismatch`, `unused-field`, `unused-param`).
    pub code: &'static str,
    /// Source position.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

/// A provable error: every execution of the phase violates its declared
/// rates or peeks out of bounds. Fails elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisError {
    /// Source position.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

/// Everything the framework proved about one filter. Attached to
/// [`crate::ir::FilterInst`] at elaboration; execution paths must
/// consult this record rather than re-deriving effects syntactically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FilterFacts {
    /// Joined state effect across both phases.
    pub effect: StateEffect,
    /// Facts for the steady-state work phase.
    pub work: PhaseFacts,
    /// Facts for the optional first-firing phase.
    pub init_work: Option<PhaseFacts>,
    /// Advisory diagnostics.
    pub lints: Vec<Lint>,
    /// Provable violations (non-empty fails elaboration).
    pub errors: Vec<AnalysisError>,
}

impl FilterFacts {
    /// True if the given phase is rate/bounds certified (`init` selects
    /// the first-firing phase; a filter without one vacuously defers to
    /// the work phase being irrelevant — callers pass the phase they are
    /// about to run).
    pub fn phase_certified(&self, init: bool) -> bool {
        if init {
            self.init_work.as_ref().is_some_and(|p| p.cert.is_some())
        } else {
            self.work.cert.is_some()
        }
    }
}

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

/// Abstract scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Num {
    /// Exactly this concrete value on every path.
    Known(Value),
    /// An integer in `[lo, hi]`.
    Int(i64, i64),
    /// A float with no further information.
    FloatAny,
    /// Anything.
    Any,
}

/// Dependence of a value on inputs and mutable state, in the sense of
/// the paper's linear forms: `Const` depends on neither, `Linear` is an
/// affine combination, `Top` is anything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Degree {
    Const,
    Linear,
    Top,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct AbsV {
    num: Num,
    deg: Degree,
}

impl AbsV {
    fn known(v: Value) -> AbsV {
        AbsV {
            num: Num::Known(v),
            deg: Degree::Const,
        }
    }

    /// A fresh tape item: an unknown float, linear by definition.
    fn input() -> AbsV {
        AbsV {
            num: Num::FloatAny,
            deg: Degree::Linear,
        }
    }

    fn top() -> AbsV {
        AbsV {
            num: Num::Any,
            deg: Degree::Top,
        }
    }

    /// Integer range, if this value is provably an integer.
    fn int_range(&self) -> Option<(i64, i64)> {
        match self.num {
            Num::Known(Value::Int(v)) => Some((v, v)),
            Num::Int(lo, hi) => Some((lo, hi)),
            _ => None,
        }
    }

    fn known_bool(&self) -> Option<bool> {
        match self.num {
            Num::Known(Value::Bool(b)) => Some(b),
            _ => None,
        }
    }

    fn is_floatish(&self) -> bool {
        matches!(self.num, Num::Known(Value::Float(_)) | Num::FloatAny)
    }

    fn join(a: AbsV, b: AbsV) -> AbsV {
        let num = if a.num == b.num {
            a.num
        } else {
            match (a.int_range(), b.int_range()) {
                (Some((al, ah)), Some((bl, bh))) => Num::Int(al.min(bl), ah.max(bh)),
                _ if a.is_floatish() && b.is_floatish() => Num::FloatAny,
                _ => Num::Any,
            }
        };
        AbsV {
            num,
            deg: a.deg.max(b.deg),
        }
    }
}

fn clamp128(v: i128) -> i64 {
    if v > i64::MAX as i128 {
        i64::MAX
    } else if v < i64::MIN as i128 {
        i64::MIN
    } else {
        v as i64
    }
}

/// Interval arithmetic on integer ranges (clamped, never wraps — a
/// clamped bound only widens the range, which is sound).
fn int_interval(op: BinOp, a: (i64, i64), b: (i64, i64)) -> Num {
    let (al, ah, bl, bh) = (a.0 as i128, a.1 as i128, b.0 as i128, b.1 as i128);
    match op {
        BinOp::Add => Num::Int(clamp128(al + bl), clamp128(ah + bh)),
        BinOp::Sub => Num::Int(clamp128(al - bh), clamp128(ah - bl)),
        BinOp::Mul => {
            let c = [al * bl, al * bh, ah * bl, ah * bh];
            Num::Int(
                clamp128(*c.iter().min().expect("non-empty")),
                clamp128(*c.iter().max().expect("non-empty")),
            )
        }
        _ => Num::Any,
    }
}

/// Decides an integer comparison when the ranges permit.
fn int_compare(op: BinOp, a: (i64, i64), b: (i64, i64)) -> Num {
    let decided = match op {
        BinOp::Lt => decide(a.1 < b.0, a.0 >= b.1),
        BinOp::Le => decide(a.1 <= b.0, a.0 > b.1),
        BinOp::Gt => decide(a.0 > b.1, a.1 <= b.0),
        BinOp::Ge => decide(a.0 >= b.1, a.1 < b.0),
        BinOp::Eq => decide(
            a.0 == a.1 && b.0 == b.1 && a.0 == b.0,
            a.1 < b.0 || b.1 < a.0,
        ),
        BinOp::Ne => decide(
            a.1 < b.0 || b.1 < a.0,
            a.0 == a.1 && b.0 == b.1 && a.0 == b.0,
        ),
        _ => None,
    };
    match decided {
        Some(v) => Num::Known(Value::Bool(v)),
        None => Num::Any,
    }
}

fn decide(yes: bool, no: bool) -> Option<bool> {
    if yes {
        Some(true)
    } else if no {
        Some(false)
    } else {
        None
    }
}

/// Abstract binary operation (everything except short-circuit `&&`/`||`,
/// which the walker handles to model conditional side effects).
fn abin(op: BinOp, a: AbsV, b: AbsV) -> AbsV {
    use BinOp::*;
    let deg = match op {
        Add | Sub => a.deg.max(b.deg),
        Mul => {
            if a.deg == Degree::Const || b.deg == Degree::Const {
                a.deg.max(b.deg)
            } else {
                Degree::Top
            }
        }
        Div => {
            if a.deg == Degree::Const && b.deg == Degree::Const {
                Degree::Const
            } else if b.deg == Degree::Const && (a.is_floatish() || b.is_floatish()) {
                // Float division by a constant is a linear scaling;
                // integer division truncates and is not.
                a.deg
            } else {
                Degree::Top
            }
        }
        _ => {
            if a.deg == Degree::Const && b.deg == Degree::Const {
                Degree::Const
            } else {
                Degree::Top
            }
        }
    };
    if let (Num::Known(x), Num::Known(y)) = (a.num, b.num) {
        if let Ok(v) = bin_op(op, x, y) {
            return AbsV {
                num: Num::Known(v),
                deg,
            };
        }
        // A constant evaluation error (e.g. division by zero) fails the
        // same way at runtime under both execution paths; stay sound.
        return AbsV { num: Num::Any, deg };
    }
    let num = match op {
        Add | Sub | Mul | Div | Rem => {
            if a.is_floatish() || b.is_floatish() {
                Num::FloatAny
            } else if matches!(op, Add | Sub | Mul) {
                match (a.int_range(), b.int_range()) {
                    (Some(x), Some(y)) => int_interval(op, x, y),
                    _ => Num::Any,
                }
            } else {
                Num::Any
            }
        }
        Lt | Le | Gt | Ge | Eq | Ne => match (a.int_range(), b.int_range()) {
            (Some(x), Some(y)) => int_compare(op, x, y),
            _ => Num::Any,
        },
        _ => Num::Any,
    };
    AbsV { num, deg }
}

/// Abstract unary operation.
fn aun(op: UnOp, a: AbsV) -> AbsV {
    if let Num::Known(x) = a.num {
        if let Ok(v) = crate::value::un_op(op, x) {
            return AbsV {
                num: Num::Known(v),
                deg: a.deg,
            };
        }
        return AbsV {
            num: Num::Any,
            deg: a.deg,
        };
    }
    match (op, a.num) {
        (UnOp::Neg, Num::Int(lo, hi)) => AbsV {
            num: Num::Int(clamp128(-(hi as i128)), clamp128(-(lo as i128))),
            deg: a.deg,
        },
        (UnOp::Neg, Num::FloatAny) => AbsV {
            num: Num::FloatAny,
            deg: a.deg,
        },
        _ => AbsV {
            num: Num::Any,
            deg: if a.deg == Degree::Const {
                Degree::Const
            } else {
                Degree::Top
            },
        },
    }
}

// ---------------------------------------------------------------------------
// Abstract machine state
// ---------------------------------------------------------------------------

/// Saturating pop/push counter interval.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ctr {
    lo: i64,
    hi: i64,
}

impl Ctr {
    fn zero() -> Ctr {
        Ctr { lo: 0, hi: 0 }
    }
    fn bump(&mut self) {
        self.lo = self.lo.saturating_add(1);
        self.hi = self.hi.saturating_add(1);
    }
    fn join(a: Ctr, b: Ctr) -> Ctr {
        Ctr {
            lo: a.lo.min(b.lo),
            hi: a.hi.max(b.hi),
        }
    }
}

/// One abstract program state: a value per storage slot plus the tape
/// counters. Array slots hold a single element summary (weak updates).
#[derive(Clone, PartialEq)]
struct AState {
    globals: Vec<AbsV>,
    frame: Vec<AbsV>,
    pops: Ctr,
    pushes: Ctr,
}

impl AState {
    fn join(mut a: AState, b: &AState) -> AState {
        for (x, y) in a.globals.iter_mut().zip(&b.globals) {
            *x = AbsV::join(*x, *y);
        }
        for (x, y) in a.frame.iter_mut().zip(&b.frame) {
            *x = AbsV::join(*x, *y);
        }
        a.pops = Ctr::join(a.pops, b.pops);
        a.pushes = Ctr::join(a.pushes, b.pushes);
        a
    }
}

/// Effects accumulated across both phases of one filter.
#[derive(Default)]
struct Fx {
    reads_state: bool,
    writes_state: bool,
    affine_ok: bool,
    global_reads: Vec<bool>,
    global_writes: Vec<Option<Span>>,
    lints: Vec<Lint>,
    errors: Vec<AnalysisError>,
}

/// Syntactic summary of a statement list, used to widen unresolved
/// loops: which slots it can write, and whether it touches the tape.
#[derive(Default)]
struct SynFx {
    writes: HashSet<Slot>,
    pops: bool,
    pushes: bool,
    peeks: bool,
}

fn syn_stmts(stmts: &[RStmt], fx: &mut SynFx) {
    for s in stmts {
        syn_stmt(s, fx);
    }
}

fn syn_stmt(s: &RStmt, fx: &mut SynFx) {
    match s {
        RStmt::Decl {
            slot, dims, init, ..
        } => {
            fx.writes.insert(Slot::Frame(*slot));
            for d in dims {
                syn_expr(d, fx);
            }
            if let Some(e) = init {
                syn_expr(e, fx);
            }
        }
        RStmt::Assign { target, value, .. } => {
            syn_lvalue(target, fx);
            syn_expr(value, fx);
        }
        RStmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            syn_expr(cond, fx);
            syn_stmts(then_blk, fx);
            if let Some(e) = else_blk {
                syn_stmts(e, fx);
            }
        }
        RStmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(s) = init {
                syn_stmt(s, fx);
            }
            if let Some(c) = cond {
                syn_expr(c, fx);
            }
            if let Some(s) = step {
                syn_stmt(s, fx);
            }
            syn_stmts(body, fx);
        }
        RStmt::While { cond, body, .. } => {
            syn_expr(cond, fx);
            syn_stmts(body, fx);
        }
        RStmt::Expr(e, _) => syn_expr(e, fx),
        RStmt::Return => {}
    }
}

fn syn_lvalue(lv: &RLValue, fx: &mut SynFx) {
    match lv {
        RLValue::Var(slot) => {
            fx.writes.insert(*slot);
        }
        RLValue::Index(slot, idxs) => {
            fx.writes.insert(*slot);
            for i in idxs {
                syn_expr(i, fx);
            }
        }
    }
}

fn syn_expr(e: &RExpr, fx: &mut SynFx) {
    match e {
        RExpr::Int(_) | RExpr::Float(_) | RExpr::Bool(_) | RExpr::Var(_) => {}
        RExpr::Index(_, idxs) => {
            for i in idxs {
                syn_expr(i, fx);
            }
        }
        RExpr::Unary(_, a) => syn_expr(a, fx),
        RExpr::Binary(_, a, b) => {
            syn_expr(a, fx);
            syn_expr(b, fx);
        }
        RExpr::Peek(i) => {
            fx.peeks = true;
            syn_expr(i, fx);
        }
        RExpr::Pop => fx.pops = true,
        RExpr::Push(v) => {
            fx.pushes = true;
            syn_expr(v, fx);
        }
        RExpr::Math(_, args) => {
            for a in args {
                syn_expr(a, fx);
            }
        }
        RExpr::Print { arg, .. } => syn_expr(arg, fx),
        RExpr::PostIncDec { target, .. } => syn_lvalue(target, fx),
    }
}

// ---------------------------------------------------------------------------
// The walker
// ---------------------------------------------------------------------------

struct Analyzer<'a> {
    /// Declared rates of the phase under analysis.
    decl: &'a WorkFn,
    /// Concrete cells of globals never written by any phase (`None` for
    /// mutable globals, whose entry values are unknown).
    consts: &'a [Option<&'a Cell>],
    /// Scalar type of each global, for assignment coercion.
    global_ty: &'a [Option<DataType>],
    fx: &'a mut Fx,
    fuel: u64,
    poisoned: bool,
    /// Depth of statically-undecided control flow around the current
    /// point. Zero means the current statement executes on every firing,
    /// which is what upgrades a possible violation to a provable one.
    cond_depth: u32,
    cur_span: Span,
    /// Joined state at `return` statements.
    exit: Option<AState>,
    /// First reason certification failed, if any.
    uncert: Option<String>,
}

impl Analyzer<'_> {
    fn uncertify(&mut self, reason: impl Into<String>) {
        if self.uncert.is_none() {
            self.uncert = Some(reason.into());
        }
    }

    fn lint(&mut self, code: &'static str, message: String) {
        let span = self.cur_span;
        if !self
            .fx
            .lints
            .iter()
            .any(|l| l.code == code && l.span == span && l.message == message)
        {
            self.fx.lints.push(Lint {
                code,
                span,
                message,
            });
        }
    }

    fn error(&mut self, message: String) {
        self.fx.errors.push(AnalysisError {
            span: self.cur_span,
            message,
        });
    }

    fn exec_stmts(&mut self, mut st: Option<AState>, stmts: &[RStmt]) -> Option<AState> {
        for s in stmts {
            match st {
                Some(state) => st = self.exec_stmt(state, s),
                None => return None,
            }
        }
        st
    }

    fn exec_stmt(&mut self, mut st: AState, s: &RStmt) -> Option<AState> {
        if self.poisoned {
            return Some(st);
        }
        if self.fuel == 0 {
            self.poisoned = true;
            return Some(st);
        }
        self.fuel -= 1;
        self.cur_span = s.span();
        match s {
            RStmt::Decl {
                slot,
                base,
                dims,
                init,
                ..
            } => {
                for d in dims {
                    self.eval(&mut st, d);
                }
                let mut v = match init {
                    Some(e) => self.eval(&mut st, e),
                    None => AbsV::known(Value::zero_of(*base)),
                };
                if dims.is_empty() {
                    v = coerce(v, Some(*base));
                } else {
                    // Array: summarise zero-fill joined with the
                    // (scalar) initializer, if any.
                    v = AbsV::join(v, AbsV::known(Value::zero_of(*base)));
                }
                st.frame[*slot as usize] = v;
                Some(st)
            }
            RStmt::Assign {
                target, op, value, ..
            } => {
                let rhs = self.eval(&mut st, value);
                let new = match op {
                    None => rhs,
                    Some(op) => {
                        let old = self.read_lvalue(&mut st, target);
                        abin(*op, old, rhs)
                    }
                };
                self.write_lvalue(&mut st, target, new);
                Some(st)
            }
            RStmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let c = self.eval(&mut st, cond);
                if let Some(b) = c.known_bool() {
                    self.lint(
                        "constant-condition",
                        format!("`if` condition is always {b}"),
                    );
                    return if b {
                        self.exec_stmts(Some(st), then_blk)
                    } else {
                        match else_blk {
                            Some(e) => self.exec_stmts(Some(st), e),
                            None => Some(st),
                        }
                    };
                }
                self.cond_depth += 1;
                let t = self.exec_stmts(Some(st.clone()), then_blk);
                let e = match else_blk {
                    Some(blk) => self.exec_stmts(Some(st), blk),
                    None => Some(st),
                };
                self.cond_depth -= 1;
                match (t, e) {
                    (Some(a), Some(b)) => Some(AState::join(a, &b)),
                    (Some(a), None) | (None, Some(a)) => Some(a),
                    (None, None) => None,
                }
            }
            RStmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                let st = match init {
                    Some(s) => self.exec_stmt(st, s)?,
                    None => st,
                };
                self.exec_loop(st, cond.as_ref(), step.as_deref(), body)
            }
            RStmt::While { cond, body, .. } => self.exec_loop(st, Some(cond), None, body),
            RStmt::Expr(e, _) => {
                self.eval(&mut st, e);
                Some(st)
            }
            RStmt::Return => {
                self.exit = Some(match self.exit.take() {
                    Some(prev) => AState::join(prev, &st),
                    None => st,
                });
                None
            }
        }
    }

    /// Shared `for`/`while` engine: unroll while the condition stays
    /// statically decided, fall back to widening otherwise.
    fn exec_loop(
        &mut self,
        mut st: AState,
        cond: Option<&RExpr>,
        step: Option<&RStmt>,
        body: &[RStmt],
    ) -> Option<AState> {
        let loop_span = self.cur_span;
        for _ in 0..MAX_UNROLL {
            if self.poisoned {
                return Some(st);
            }
            let decided = match cond {
                None => Some(true),
                Some(c) => self.eval(&mut st, c).known_bool(),
            };
            match decided {
                Some(false) => return Some(st),
                Some(true) => {
                    let after = self.exec_stmts(Some(st), body)?;
                    st = after;
                    if let Some(s) = step {
                        st = self.exec_stmt(st, s)?;
                    }
                }
                None => return Some(self.widen_loop(st, cond, step, body, loop_span)),
            }
        }
        Some(self.widen_loop(st, cond, step, body, loop_span))
    }

    /// A loop whose trip count could not be resolved: clobber everything
    /// it can write, saturate the tape counters if it touches the tape,
    /// then walk the body once (under `cond_depth`) so its reads, writes
    /// and nested diagnostics are still accounted for.
    fn widen_loop(
        &mut self,
        mut st: AState,
        cond: Option<&RExpr>,
        step: Option<&RStmt>,
        body: &[RStmt],
        loop_span: Span,
    ) -> AState {
        let mut syn = SynFx::default();
        if let Some(c) = cond {
            syn_expr(c, &mut syn);
        }
        if let Some(s) = step {
            syn_stmt(s, &mut syn);
        }
        syn_stmts(body, &mut syn);
        let widen = |st: &mut AState| {
            for w in &syn.writes {
                match w {
                    Slot::Global(g) => st.globals[*g as usize] = AbsV::top(),
                    Slot::Frame(f) => st.frame[*f as usize] = AbsV::top(),
                }
            }
        };
        widen(&mut st);
        if syn.pops {
            st.pops.hi = UNBOUNDED;
        }
        if syn.pushes {
            st.pushes.hi = UNBOUNDED;
        }
        if syn.pops || syn.pushes || syn.peeks {
            self.cur_span = loop_span;
            self.uncertify(format!(
                "a loop at {loop_span} with a statically unresolved trip count touches the tape"
            ));
        }
        // One widened pass for effect accounting; its value state is
        // discarded (the widening above already covers every write).
        self.cond_depth += 1;
        let mut probe = st.clone();
        if let Some(c) = cond {
            self.eval(&mut probe, c);
        }
        if let Some(after) = self.exec_stmts(Some(probe), body) {
            if let Some(s) = step {
                self.exec_stmt(after, s);
            }
        }
        self.cond_depth -= 1;
        widen(&mut st);
        st
    }

    fn read_slot(&mut self, st: &AState, slot: Slot) -> AbsV {
        match slot {
            Slot::Global(g) => {
                let g = g as usize;
                self.fx.global_reads[g] = true;
                match self.consts[g] {
                    Some(Cell::Scalar(_, v)) => AbsV::known(*v),
                    Some(Cell::Array(_)) => AbsV {
                        num: Num::Any,
                        deg: Degree::Const,
                    },
                    None => {
                        self.fx.reads_state = true;
                        st.globals[g]
                    }
                }
            }
            Slot::Frame(f) => st.frame[f as usize],
        }
    }

    fn read_lvalue(&mut self, st: &mut AState, lv: &RLValue) -> AbsV {
        match lv {
            RLValue::Var(slot) => self.read_slot(st, *slot),
            RLValue::Index(slot, idxs) => self.read_index(st, *slot, idxs),
        }
    }

    fn read_index(&mut self, st: &mut AState, slot: Slot, idxs: &[RExpr]) -> AbsV {
        let iv: Vec<AbsV> = idxs.iter().map(|i| self.eval(st, i)).collect();
        let idx_const = iv.iter().all(|i| i.deg == Degree::Const);
        match slot {
            Slot::Global(g) => {
                let gi = g as usize;
                self.fx.global_reads[gi] = true;
                if let Some(Cell::Array(av)) = self.consts[gi] {
                    // Constant table: a fully known index reads the exact
                    // element; a constant-degree index is still some fixed
                    // element (degree const); anything else is a data-
                    // dependent table lookup (non-affine).
                    let concrete: Option<Vec<usize>> = iv
                        .iter()
                        .map(|i| match i.num {
                            Num::Known(v) => v.as_index().ok(),
                            _ => None,
                        })
                        .collect();
                    if let Some(ix) = concrete {
                        if let Ok(v) = av.get(&ix) {
                            return AbsV::known(v);
                        }
                    }
                    return AbsV {
                        num: elem_num(av.elem),
                        deg: if idx_const {
                            Degree::Const
                        } else {
                            Degree::Top
                        },
                    };
                }
                self.fx.reads_state = true;
                let summary = st.globals[gi];
                AbsV {
                    num: summary.num,
                    deg: if idx_const { summary.deg } else { Degree::Top },
                }
            }
            Slot::Frame(f) => {
                let summary = st.frame[f as usize];
                AbsV {
                    num: summary.num,
                    deg: if idx_const { summary.deg } else { Degree::Top },
                }
            }
        }
    }

    fn write_lvalue(&mut self, st: &mut AState, lv: &RLValue, v: AbsV) {
        match lv {
            RLValue::Var(slot) => match slot {
                Slot::Global(g) => {
                    let gi = *g as usize;
                    self.record_global_write(gi, v.deg <= Degree::Linear);
                    st.globals[gi] = coerce(v, self.global_ty[gi]);
                }
                Slot::Frame(f) => st.frame[*f as usize] = v,
            },
            RLValue::Index(slot, idxs) => {
                let iv: Vec<AbsV> = idxs.iter().map(|i| self.eval(st, i)).collect();
                let idx_const = iv.iter().all(|i| i.deg == Degree::Const);
                match slot {
                    Slot::Global(g) => {
                        let gi = *g as usize;
                        // An array store is affine only when the element
                        // it targets is fixed (constant indices) and the
                        // stored value is affine.
                        self.record_global_write(gi, idx_const && v.deg <= Degree::Linear);
                        st.globals[gi] = AbsV::join(st.globals[gi], v);
                    }
                    Slot::Frame(f) => {
                        let fi = *f as usize;
                        st.frame[fi] = AbsV::join(st.frame[fi], v);
                    }
                }
            }
        }
    }

    fn record_global_write(&mut self, g: usize, affine: bool) {
        self.fx.writes_state = true;
        if !affine {
            self.fx.affine_ok = false;
        }
        if self.fx.global_writes[g].is_none() {
            self.fx.global_writes[g] = Some(self.cur_span);
        }
    }

    fn eval(&mut self, st: &mut AState, e: &RExpr) -> AbsV {
        match e {
            RExpr::Int(v) => AbsV::known(Value::Int(*v)),
            RExpr::Float(v) => AbsV::known(Value::Float(*v)),
            RExpr::Bool(v) => AbsV::known(Value::Bool(*v)),
            RExpr::Var(slot) => self.read_slot(st, *slot),
            RExpr::Index(slot, idxs) => self.read_index(st, *slot, idxs),
            RExpr::Unary(op, a) => {
                let v = self.eval(st, a);
                aun(*op, v)
            }
            RExpr::Binary(op @ (BinOp::And | BinOp::Or), a, b) => {
                // Short-circuit: the right operand's side effects happen
                // only on some paths.
                let av = self.eval(st, a);
                match av.known_bool() {
                    Some(false) if *op == BinOp::And => AbsV::known(Value::Bool(false)),
                    Some(true) if *op == BinOp::Or => AbsV::known(Value::Bool(true)),
                    Some(_) => {
                        let bv = self.eval(st, b);
                        AbsV {
                            num: match bv.known_bool() {
                                Some(x) => Num::Known(Value::Bool(x)),
                                None => Num::Any,
                            },
                            deg: if av.deg == Degree::Const && bv.deg == Degree::Const {
                                Degree::Const
                            } else {
                                Degree::Top
                            },
                        }
                    }
                    None => {
                        let before = st.clone();
                        self.cond_depth += 1;
                        let bv = self.eval(st, b);
                        self.cond_depth -= 1;
                        *st = AState::join(st.clone(), &before);
                        AbsV {
                            num: Num::Any,
                            deg: if av.deg == Degree::Const && bv.deg == Degree::Const {
                                Degree::Const
                            } else {
                                Degree::Top
                            },
                        }
                    }
                }
            }
            RExpr::Binary(op, a, b) => {
                let av = self.eval(st, a);
                let bv = self.eval(st, b);
                abin(*op, av, bv)
            }
            RExpr::Peek(i) => {
                let idx = self.eval(st, i);
                self.check_peek(st, idx);
                AbsV::input()
            }
            RExpr::Pop => {
                self.check_pop(st);
                st.pops.bump();
                AbsV::input()
            }
            RExpr::Push(v) => {
                let pushed = self.eval(st, v);
                st.pushes.bump();
                pushed
            }
            RExpr::Math(f, args) => {
                let av: Vec<AbsV> = args.iter().map(|a| self.eval(st, a)).collect();
                let known: Option<Vec<Value>> = av
                    .iter()
                    .map(|a| match a.num {
                        Num::Known(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                let deg = if av.iter().all(|a| a.deg == Degree::Const) {
                    Degree::Const
                } else {
                    Degree::Top
                };
                if let Some(vals) = known {
                    if let Ok(v) = f.call(&vals) {
                        return AbsV {
                            num: Num::Known(v),
                            deg,
                        };
                    }
                }
                AbsV { num: Num::Any, deg }
            }
            RExpr::Print { arg, .. } => {
                self.eval(st, arg);
                AbsV::known(Value::Int(0))
            }
            RExpr::PostIncDec { target, inc } => {
                let old = self.read_lvalue(st, target);
                let op = if *inc { BinOp::Add } else { BinOp::Sub };
                let new = abin(op, old, AbsV::known(Value::Int(1)));
                self.write_lvalue(st, target, new);
                old
            }
        }
    }

    fn check_peek(&mut self, st: &AState, idx: AbsV) {
        let peek = self.decl.peek as i64;
        let Some((il, ih)) = idx.int_range() else {
            self.uncertify("a peek index is not statically an integer constant or bounded range");
            self.lint(
                "peek-range",
                "peek index could not be statically bounded".to_string(),
            );
            return;
        };
        if il < 0 {
            if ih < 0 && self.cond_depth == 0 {
                self.error(format!("peek index is always negative ({il})"));
            } else {
                self.lint("peek-range", format!("peek index may be negative ({il})"));
            }
            self.uncertify("a peek index may be negative");
            return;
        }
        let reach_lo = st.pops.lo.saturating_add(il);
        let reach_hi = st.pops.hi.saturating_add(ih);
        if reach_lo >= peek && self.cond_depth == 0 {
            self.error(format!(
                "peek({il}) after {} pops reads past the declared peek window of {peek}",
                st.pops.lo
            ));
            self.uncertify("a peek provably reads past the declared window");
        } else if reach_hi >= peek {
            self.lint(
                "peek-range",
                format!(
                    "peek index may reach offset {reach_hi} but the declared peek window is {peek}"
                ),
            );
            self.uncertify("a peek may read past the declared window");
        }
    }

    fn check_pop(&mut self, st: &AState) {
        let peek = self.decl.peek as i64;
        if st.pops.lo >= peek && self.cond_depth == 0 {
            self.error(format!(
                "pop() after {} pops reads past the declared peek window of {peek}",
                st.pops.lo
            ));
            self.uncertify("a pop provably reads past the declared window");
        } else if st.pops.hi >= peek {
            self.uncertify("a pop may read past the declared window");
        }
    }
}

fn elem_num(ty: DataType) -> Num {
    match ty {
        DataType::Int => Num::Int(i64::MIN, i64::MAX),
        DataType::Bool => Num::Any,
        _ => Num::FloatAny,
    }
}

/// Models the runtime's store-time coercion into a declared scalar type.
fn coerce(v: AbsV, ty: Option<DataType>) -> AbsV {
    let Some(ty) = ty else { return v };
    match (ty, v.num) {
        (DataType::Float, Num::Known(Value::Int(i))) => AbsV {
            num: Num::Known(Value::Float(i as f64)),
            deg: v.deg,
        },
        (DataType::Float, Num::Int(..)) => AbsV {
            num: Num::FloatAny,
            deg: v.deg,
        },
        _ => v,
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs the framework over both phases of a filter.
///
/// `state` holds the persistent cells after `init` ran; `work_span` /
/// `init_span` anchor phase-level diagnostics (rate mismatches) to the
/// `work` / `initWork` headers.
pub fn analyze_filter(
    state: &HashMap<String, Cell>,
    lowered: &LoweredFilter,
    work: &WorkFn,
    init_work: Option<&WorkFn>,
    work_span: Span,
    init_span: Span,
) -> FilterFacts {
    let n = lowered.globals.len();
    // A global is mutable iff any phase can write it syntactically;
    // everything else keeps its concrete elaboration-time value, which is
    // what makes loop trip counts and peek offsets decidable.
    let mut syn = SynFx::default();
    syn_stmts(&lowered.work.body, &mut syn);
    if let Some(iw) = &lowered.init_work {
        syn_stmts(&iw.body, &mut syn);
    }
    let cells: Vec<Option<&Cell>> = lowered.globals.iter().map(|g| state.get(g)).collect();
    let consts: Vec<Option<&Cell>> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if syn.writes.contains(&Slot::Global(i as u32)) {
                None
            } else {
                *c
            }
        })
        .collect();
    let global_ty: Vec<Option<DataType>> = cells
        .iter()
        .map(|c| match c {
            Some(Cell::Scalar(ty, _)) => Some(*ty),
            _ => None,
        })
        .collect();
    let entry_globals: Vec<AbsV> = cells
        .iter()
        .map(|c| match c {
            Some(Cell::Scalar(ty, _)) => AbsV {
                num: elem_num(*ty),
                deg: Degree::Linear,
            },
            Some(Cell::Array(av)) => AbsV {
                num: elem_num(av.elem),
                deg: Degree::Linear,
            },
            None => AbsV::top(),
        })
        .collect();

    let mut fx = Fx {
        affine_ok: true,
        global_reads: vec![false; n],
        global_writes: vec![None; n],
        ..Fx::default()
    };

    let mut poisoned = false;
    let run_phase = |fx: &mut Fx,
                     code: &LoweredWork,
                     decl: &WorkFn,
                     span: Span,
                     poisoned: &mut bool|
     -> PhaseFacts {
        let mut az = Analyzer {
            decl,
            consts: &consts,
            global_ty: &global_ty,
            fx,
            fuel: ANALYSIS_FUEL,
            poisoned: false,
            cond_depth: 0,
            cur_span: span,
            exit: None,
            uncert: None,
        };
        let entry = AState {
            globals: entry_globals.clone(),
            frame: vec![AbsV::top(); lowered.frame_slots()],
            pops: Ctr::zero(),
            pushes: Ctr::zero(),
        };
        let fall = az.exec_stmts(Some(entry), &code.body);
        let exit = az.exit.take();
        let final_st = match (fall, exit) {
            (Some(a), Some(b)) => AState::join(a, &b),
            (Some(a), None) | (None, Some(a)) => a,
            (None, None) => unreachable!("a body either falls through or returns"),
        };
        if az.poisoned {
            *poisoned = true;
            return PhaseFacts {
                cert: None,
                uncertified: Some("analysis fuel exhausted".to_string()),
                pop_range: (0, UNBOUNDED),
                push_range: (0, UNBOUNDED),
            };
        }
        let mut uncert = az.uncert.take();
        let pops = final_st.pops;
        let pushes = final_st.pushes;
        az.cur_span = span;
        let (dp, du) = (decl.pop as i64, decl.push as i64);
        for (what, verb, ctr, want) in [("pop", "pops", pops, dp), ("push", "pushes", pushes, du)] {
            if want < ctr.lo || want > ctr.hi {
                let got = if ctr.lo == ctr.hi {
                    format!("{}", ctr.lo)
                } else if ctr.hi == UNBOUNDED {
                    format!("at least {}", ctr.lo)
                } else {
                    format!("between {} and {}", ctr.lo, ctr.hi)
                };
                az.error(format!(
                    "declared {what} rate is {want} but the body always {verb} {got}"
                ));
                if uncert.is_none() {
                    uncert = Some(format!("provable {what} rate mismatch"));
                }
            } else if ctr.lo != ctr.hi {
                let hi = if ctr.hi == UNBOUNDED {
                    "unboundedly many".to_string()
                } else {
                    format!("{}", ctr.hi)
                };
                az.lint(
                    "rate-mismatch",
                    format!(
                        "body may {what} between {} and {hi} items per firing; declared {what} rate is {want}",
                        ctr.lo
                    ),
                );
                if uncert.is_none() {
                    uncert = Some(format!(
                        "{what} count varies between paths ({} to {hi})",
                        ctr.lo
                    ));
                }
            }
        }
        let cert = if uncert.is_none() {
            Some(RateCert {
                peek: decl.peek,
                pop: decl.pop,
                push: decl.push,
            })
        } else {
            None
        };
        PhaseFacts {
            cert,
            uncertified: uncert,
            pop_range: (pops.lo, pops.hi),
            push_range: (pushes.lo, pushes.hi),
        }
    };

    let work_facts = run_phase(&mut fx, &lowered.work, work, work_span, &mut poisoned);
    let init_facts = match (init_work, &lowered.init_work) {
        (Some(decl), Some(code)) => Some(run_phase(&mut fx, code, decl, init_span, &mut poisoned)),
        _ => None,
    };

    if poisoned {
        // Analysis gave up: conservative facts, no diagnostics (partial
        // walks could misreport).
        return FilterFacts {
            effect: StateEffect::OpaqueState,
            work: PhaseFacts {
                cert: None,
                uncertified: Some("analysis fuel exhausted".to_string()),
                pop_range: (0, UNBOUNDED),
                push_range: (0, UNBOUNDED),
            },
            init_work: init_facts.map(|_| PhaseFacts {
                cert: None,
                uncertified: Some("analysis fuel exhausted".to_string()),
                pop_range: (0, UNBOUNDED),
                push_range: (0, UNBOUNDED),
            }),
            lints: Vec::new(),
            errors: Vec::new(),
        };
    }

    // Dead stores: a global written on some executed path but read on
    // none (across both phases).
    for g in 0..n {
        if let Some(span) = fx.global_writes[g] {
            if !fx.global_reads[g] {
                fx.lints.push(Lint {
                    code: "dead-store",
                    span,
                    message: format!(
                        "field `{}` is written but its value is never read",
                        lowered.globals[g]
                    ),
                });
            }
        }
    }

    let effect = if fx.writes_state {
        if fx.affine_ok {
            StateEffect::AffineState
        } else {
            StateEffect::OpaqueState
        }
    } else if fx.reads_state {
        StateEffect::ReadsState
    } else {
        StateEffect::Pure
    };

    FilterFacts {
        effect,
        work: work_facts,
        init_work: init_facts,
        lints: fx.lints,
        errors: fx.errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate_named;
    use crate::ir::Stream;

    fn facts(src: &str, name: &str) -> FilterFacts {
        let p = streamlin_lang::parse(src).unwrap();
        let g = elaborate_named(&p, name, &[]).unwrap();
        let mut out = None;
        g.for_each_filter(&mut |inst| {
            if inst.decl_name == name {
                out = Some(inst.facts.clone());
            }
        });
        out.expect("filter not found")
    }

    fn elab_err(src: &str, name: &str) -> String {
        let p = streamlin_lang::parse(src).unwrap();
        match elaborate_named(&p, name, &[]) {
            Ok(_) => panic!("expected elaboration to fail"),
            Err(e) => e.to_string(),
        }
    }

    #[test]
    fn straight_line_filter_certifies_pure() {
        let f = facts(
            "float->float filter F { work peek 2 pop 1 push 1 {
                 push(peek(0) + peek(1)); pop();
             } }",
            "F",
        );
        assert_eq!(f.effect, StateEffect::Pure);
        assert_eq!(
            f.work.cert,
            Some(RateCert {
                peek: 2,
                pop: 1,
                push: 1
            }),
            "{:?}",
            f.work.uncertified
        );
        assert!(f.lints.is_empty(), "{:?}", f.lints);
    }

    #[test]
    fn counted_loop_unrolls_and_certifies() {
        let f = facts(
            "void->float filter F { work push 8 {
                 for (int i = 0; i < 8; i++) push(i);
             } }",
            "F",
        );
        assert!(f.work.cert.is_some(), "{:?}", f.work.uncertified);
        assert_eq!(f.work.push_range, (8, 8));
    }

    #[test]
    fn input_dependent_peek_is_uncertified_with_lint() {
        let f = facts(
            "int->int filter F { work peek 2 pop 1 push 1 {
                 push(peek(pop()));
             } }",
            "F",
        );
        assert!(f.work.cert.is_none());
        assert!(f.work.uncertified.is_some());
        assert!(
            f.lints.iter().any(|l| l.code == "peek-range"),
            "{:?}",
            f.lints
        );
    }

    #[test]
    fn dead_branch_write_is_pruned_from_effects() {
        // The old syntactic walk saw the write under `if (false)` and
        // called this filter stateful; flow-sensitive analysis prunes the
        // dead branch, so fission admissions are a strict superset.
        let f = facts(
            "float->float filter F { float s; work pop 1 push 1 {
                 if (false) s = 1.0;
                 push(pop());
             } }",
            "F",
        );
        assert_eq!(f.effect, StateEffect::Pure);
        assert!(
            f.lints.iter().any(|l| l.code == "constant-condition"),
            "{:?}",
            f.lints
        );
    }

    #[test]
    fn affine_state_update_is_classified_affine() {
        let f = facts(
            "float->float filter F { float s; work pop 1 push 1 {
                 s = s + pop(); push(s);
             } }",
            "F",
        );
        assert_eq!(f.effect, StateEffect::AffineState);
    }

    #[test]
    fn nonlinear_state_update_is_opaque() {
        let f = facts(
            "float->float filter F { float s; work pop 1 push 1 {
                 s = s * (1.0 + pop()); push(s);
             } }",
            "F",
        );
        assert_eq!(f.effect, StateEffect::OpaqueState);
    }

    #[test]
    fn reads_without_writes_is_reads_state() {
        let f = facts(
            "float->float filter F { float s;
                 init { s = 2.0; }
                 work pop 1 push 1 { push(s * pop()); s = s; }
             }",
            "F",
        );
        // `s = s` stores an unchanged affine value; the meaningful part is
        // that a pure read of mutable state is at least ReadsState.
        assert!(f.effect >= StateEffect::ReadsState);
    }

    #[test]
    fn definite_rate_mismatch_fails_elaboration() {
        let err = elab_err("void->float filter F { work push 2 { push(1.0); } }", "F");
        assert!(
            err.contains("declared push rate is 2 but the body always pushes 1"),
            "{err}"
        );
    }

    #[test]
    fn possible_rate_mismatch_lints_but_elaborates() {
        let f = facts(
            "float->float filter F { float x; work pop 1 push 2 {
                 push(pop()); if (x > 0.5) push(x); x = x + 1;
             } }",
            "F",
        );
        assert!(f.work.cert.is_none());
        assert!(
            f.lints.iter().any(|l| l.code == "rate-mismatch"),
            "{:?}",
            f.lints
        );
    }

    #[test]
    fn dead_store_to_field_is_linted() {
        let f = facts(
            "float->float filter F { float s; work pop 1 push 1 {
                 s = pop(); push(1.0);
             } }",
            "F",
        );
        assert!(
            f.lints.iter().any(|l| l.code == "dead-store"),
            "{:?}",
            f.lints
        );
    }

    #[test]
    fn unused_field_and_param_are_linted() {
        let src = "float->float filter F(int n) { float unused;
             work pop 1 push 1 { push(pop()); } }";
        let p = streamlin_lang::parse(src).unwrap();
        let g = elaborate_named(&p, "F", &[Value::Int(3)]).unwrap();
        let Stream::Filter(inst) = &g else { panic!() };
        let codes: Vec<&str> = inst.facts.lints.iter().map(|l| l.code).collect();
        assert!(codes.contains(&"unused-param"), "{codes:?}");
        assert!(codes.contains(&"unused-field"), "{codes:?}");
    }

    #[test]
    fn undecidable_loop_widens_instead_of_diverging() {
        let f = facts(
            "float->float filter F { float x; work pop 1 push 1 {
                 while (x < pop()) x = x + 1.0;
                 push(x);
             } }",
            "F",
        );
        // The analysis must terminate and stay conservative: the loop's
        // trip count is input-dependent, so the write to `x` is unbounded.
        assert_eq!(f.effect, StateEffect::OpaqueState);
    }
}
