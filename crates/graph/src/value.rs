//! Dynamic values and operator semantics of the StreamIt dialect.
//!
//! StreamIt's `work` code is C-like (§2.1); its values here are 64-bit
//! integers, 64-bit floats and booleans, plus dense (possibly
//! multi-dimensional) arrays for fields like FIR weight tables. Operator
//! semantics follow C with the usual int→float promotion. All three
//! consumers — elaboration-time constant evaluation, the runtime
//! interpreter, and the linear-extraction symbolic executor — share these
//! rules so a filter behaves identically under analysis and execution.

use streamlin_lang::ast::{BinOp, DataType, UnOp};

/// A scalar runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

/// Errors raised by value operations and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// Explanation of the problem.
    pub message: String,
}

impl EvalError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        EvalError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

impl Value {
    /// The zero value of a scalar type.
    pub fn zero_of(ty: DataType) -> Value {
        match ty {
            DataType::Int => Value::Int(0),
            DataType::Bool => Value::Bool(false),
            _ => Value::Float(0.0),
        }
    }

    /// Numeric value as `f64` (booleans are rejected).
    pub fn as_f64(&self) -> Result<f64, EvalError> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v),
            Value::Bool(_) => Err(EvalError::new("expected a number, found a boolean")),
        }
    }

    /// Integer value (floats are rejected — C-style implicit float→int
    /// truncation is not part of the dialect).
    pub fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(EvalError::new(format!(
                "expected an integer, found {other:?}"
            ))),
        }
    }

    /// Non-negative integer (for rates, sizes and indices).
    pub fn as_index(&self) -> Result<usize, EvalError> {
        let v = self.as_int()?;
        usize::try_from(v)
            .map_err(|_| EvalError::new(format!("expected a non-negative integer, found {v}")))
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvalError::new(format!(
                "expected a boolean, found {other:?}"
            ))),
        }
    }

    /// Coerces to the declared type of an assignment target
    /// (int promotes to float; everything else must match).
    pub fn coerce_to(&self, ty: DataType) -> Result<Value, EvalError> {
        match (ty, self) {
            (DataType::Float, Value::Int(v)) => Ok(Value::Float(*v as f64)),
            (DataType::Float, Value::Float(_))
            | (DataType::Int, Value::Int(_))
            | (DataType::Bool, Value::Bool(_)) => Ok(*self),
            (want, got) => Err(EvalError::new(format!(
                "cannot store {got:?} into a variable of type {want:?}"
            ))),
        }
    }

    /// True if the value is a float (used by FLOP accounting: integer
    /// arithmetic is free, exactly as in the paper's instruction counts).
    pub fn is_float(&self) -> bool {
        matches!(self, Value::Float(_))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Applies a binary operator with C-like semantics and int→float promotion.
///
/// # Errors
///
/// Returns an [`EvalError`] for type mismatches and division by zero.
pub fn bin_op(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    // Logical and bitwise families first (no promotion across kinds).
    match op {
        And | Or => {
            let (x, y) = (a.as_bool()?, b.as_bool()?);
            return Ok(Value::Bool(if op == And { x && y } else { x || y }));
        }
        BitAnd | BitOr | BitXor | Shl | Shr => {
            let (x, y) = (a.as_int()?, b.as_int()?);
            let r = match op {
                BitAnd => x & y,
                BitOr => x | y,
                BitXor => x ^ y,
                Shl => x.checked_shl(y as u32).unwrap_or(0),
                Shr => x.checked_shr(y as u32).unwrap_or(0),
                _ => unreachable!(),
            };
            return Ok(Value::Int(r));
        }
        _ => {}
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => int_op(op, x, y),
        (Value::Bool(x), Value::Bool(y)) if matches!(op, Eq | Ne) => {
            Ok(Value::Bool(if op == Eq { x == y } else { x != y }))
        }
        _ => {
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            float_op(op, x, y)
        }
    }
}

fn int_op(op: BinOp, x: i64, y: i64) -> Result<Value, EvalError> {
    use BinOp::*;
    Ok(match op {
        Add => Value::Int(x.wrapping_add(y)),
        Sub => Value::Int(x.wrapping_sub(y)),
        Mul => Value::Int(x.wrapping_mul(y)),
        Div => {
            if y == 0 {
                return Err(EvalError::new("integer division by zero"));
            }
            Value::Int(x.wrapping_div(y))
        }
        Rem => {
            if y == 0 {
                return Err(EvalError::new("integer remainder by zero"));
            }
            Value::Int(x.wrapping_rem(y))
        }
        Eq => Value::Bool(x == y),
        Ne => Value::Bool(x != y),
        Lt => Value::Bool(x < y),
        Gt => Value::Bool(x > y),
        Le => Value::Bool(x <= y),
        Ge => Value::Bool(x >= y),
        _ => {
            return Err(EvalError::new(format!(
                "operator {op:?} not defined on integers"
            )))
        }
    })
}

fn float_op(op: BinOp, x: f64, y: f64) -> Result<Value, EvalError> {
    use BinOp::*;
    Ok(match op {
        Add => Value::Float(x + y),
        Sub => Value::Float(x - y),
        Mul => Value::Float(x * y),
        Div => Value::Float(x / y),
        Rem => Value::Float(x % y),
        Eq => Value::Bool(x == y),
        Ne => Value::Bool(x != y),
        Lt => Value::Bool(x < y),
        Gt => Value::Bool(x > y),
        Le => Value::Bool(x <= y),
        Ge => Value::Bool(x >= y),
        _ => {
            return Err(EvalError::new(format!(
                "operator {op:?} not defined on floats"
            )))
        }
    })
}

/// Applies a unary operator.
///
/// # Errors
///
/// Returns an [`EvalError`] on type mismatch.
pub fn un_op(op: UnOp, a: Value) -> Result<Value, EvalError> {
    match (op, a) {
        (UnOp::Neg, Value::Int(v)) => Ok(Value::Int(-v)),
        (UnOp::Neg, Value::Float(v)) => Ok(Value::Float(-v)),
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (op, v) => Err(EvalError::new(format!(
            "operator {op:?} not defined on {v:?}"
        ))),
    }
}

/// A math intrinsic of the dialect, resolved from its source name once (at
/// lowering time) so dispatch on the firing path is a jump table rather
/// than a string comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants mirror the C math functions they wrap
pub enum MathFn {
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Exp,
    Log,
    Log10,
    Sqrt,
    Abs,
    Floor,
    Ceil,
    Round,
    Pow,
    Atan2,
    Min,
    Max,
}

impl MathFn {
    /// Resolves a source-level name, or `None` for unknown functions.
    pub fn from_name(name: &str) -> Option<MathFn> {
        Some(match name {
            "sin" => MathFn::Sin,
            "cos" => MathFn::Cos,
            "tan" => MathFn::Tan,
            "asin" => MathFn::Asin,
            "acos" => MathFn::Acos,
            "atan" => MathFn::Atan,
            "exp" => MathFn::Exp,
            "log" => MathFn::Log,
            "log10" => MathFn::Log10,
            "sqrt" => MathFn::Sqrt,
            "abs" => MathFn::Abs,
            "floor" => MathFn::Floor,
            "ceil" => MathFn::Ceil,
            "round" => MathFn::Round,
            "pow" => MathFn::Pow,
            "atan2" => MathFn::Atan2,
            "min" => MathFn::Min,
            "max" => MathFn::Max,
            _ => return None,
        })
    }

    /// The source-level name (for error messages).
    pub fn name(self) -> &'static str {
        match self {
            MathFn::Sin => "sin",
            MathFn::Cos => "cos",
            MathFn::Tan => "tan",
            MathFn::Asin => "asin",
            MathFn::Acos => "acos",
            MathFn::Atan => "atan",
            MathFn::Exp => "exp",
            MathFn::Log => "log",
            MathFn::Log10 => "log10",
            MathFn::Sqrt => "sqrt",
            MathFn::Abs => "abs",
            MathFn::Floor => "floor",
            MathFn::Ceil => "ceil",
            MathFn::Round => "round",
            MathFn::Pow => "pow",
            MathFn::Atan2 => "atan2",
            MathFn::Min => "min",
            MathFn::Max => "max",
        }
    }

    /// How many arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            MathFn::Pow | MathFn::Atan2 | MathFn::Min | MathFn::Max => 2,
            _ => 1,
        }
    }

    /// Applies the function.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] for wrong arity or non-numeric arguments.
    pub fn call(self, args: &[Value]) -> Result<Value, EvalError> {
        let name = self.name();
        let unary = |f: fn(f64) -> f64| -> Result<Value, EvalError> {
            if args.len() != 1 {
                return Err(EvalError::new(format!("{name} expects 1 argument")));
            }
            Ok(Value::Float(f(args[0].as_f64()?)))
        };
        let binary = |f: fn(f64, f64) -> f64| -> Result<Value, EvalError> {
            if args.len() != 2 {
                return Err(EvalError::new(format!("{name} expects 2 arguments")));
            }
            Ok(Value::Float(f(args[0].as_f64()?, args[1].as_f64()?)))
        };
        match self {
            MathFn::Sin => unary(f64::sin),
            MathFn::Cos => unary(f64::cos),
            MathFn::Tan => unary(f64::tan),
            MathFn::Asin => unary(f64::asin),
            MathFn::Acos => unary(f64::acos),
            MathFn::Atan => unary(f64::atan),
            MathFn::Exp => unary(f64::exp),
            MathFn::Log => unary(f64::ln),
            MathFn::Log10 => unary(f64::log10),
            MathFn::Sqrt => unary(f64::sqrt),
            MathFn::Abs => {
                if args.len() != 1 {
                    return Err(EvalError::new("abs expects 1 argument"));
                }
                match args[0] {
                    Value::Int(v) => Ok(Value::Int(v.abs())),
                    other => Ok(Value::Float(other.as_f64()?.abs())),
                }
            }
            MathFn::Floor => unary(f64::floor),
            MathFn::Ceil => unary(f64::ceil),
            MathFn::Round => unary(f64::round),
            MathFn::Pow => binary(f64::powf),
            MathFn::Atan2 => binary(f64::atan2),
            MathFn::Min | MathFn::Max => {
                if args.len() != 2 {
                    return Err(EvalError::new(format!("{name} expects 2 arguments")));
                }
                let is_min = self == MathFn::Min;
                match (args[0], args[1]) {
                    (Value::Int(x), Value::Int(y)) => {
                        Ok(Value::Int(if is_min { x.min(y) } else { x.max(y) }))
                    }
                    (x, y) => {
                        let (x, y) = (x.as_f64()?, y.as_f64()?);
                        Ok(Value::Float(if is_min { x.min(y) } else { x.max(y) }))
                    }
                }
            }
        }
    }
}

/// Applies a named math intrinsic.
///
/// Supported: `sin cos tan asin acos atan exp log log10 sqrt abs floor ceil
/// round` (unary, float result) and `min max pow atan2` (binary).
///
/// # Errors
///
/// Returns an [`EvalError`] for unknown names or wrong arity.
pub fn math_call(name: &str, args: &[Value]) -> Result<Value, EvalError> {
    MathFn::from_name(name)
        .ok_or_else(|| EvalError::new(format!("unknown function `{name}`")))?
        .call(args)
}

/// True if `name` is a math intrinsic handled by [`math_call`].
pub fn is_math_fn(name: &str) -> bool {
    MathFn::from_name(name).is_some()
}

/// A dense array value with row-major storage.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayVal {
    /// Dimension sizes, outermost first.
    pub dims: Vec<usize>,
    /// Element type.
    pub elem: DataType,
    /// Row-major elements.
    pub data: Vec<Value>,
}

impl ArrayVal {
    /// Creates an array of zeros.
    pub fn zeros(elem: DataType, dims: Vec<usize>) -> Self {
        let n = dims.iter().product();
        ArrayVal {
            dims,
            elem,
            data: vec![Value::zero_of(elem); n],
        }
    }

    /// Flattens a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] for rank mismatch or out-of-bounds access.
    pub fn offset(&self, idx: &[usize]) -> Result<usize, EvalError> {
        if idx.len() != self.dims.len() {
            return Err(EvalError::new(format!(
                "array expects {} indices, got {}",
                self.dims.len(),
                idx.len()
            )));
        }
        let mut off = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.dims).enumerate() {
            if ix >= dim {
                return Err(EvalError::new(format!(
                    "index {ix} out of bounds for dimension {i} of size {dim}"
                )));
            }
            off = off * dim + ix;
        }
        Ok(off)
    }

    /// Reads an element.
    ///
    /// # Errors
    ///
    /// See [`offset`](Self::offset).
    pub fn get(&self, idx: &[usize]) -> Result<Value, EvalError> {
        Ok(self.data[self.offset(idx)?])
    }

    /// Writes an element (coercing to the element type).
    ///
    /// # Errors
    ///
    /// See [`offset`](Self::offset); also fails on type mismatch.
    pub fn set(&mut self, idx: &[usize], v: Value) -> Result<(), EvalError> {
        let off = self.offset(idx)?;
        self.data[off] = v.coerce_to(self.elem)?;
        Ok(())
    }
}

/// A storage cell: either a scalar or an array.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Scalar variable of the given declared type.
    Scalar(DataType, Value),
    /// Array variable.
    Array(ArrayVal),
}

impl Cell {
    /// Creates the default cell for a declared type.
    pub fn zero_of(elem: DataType, dims: Vec<usize>) -> Cell {
        if dims.is_empty() {
            Cell::Scalar(elem, Value::zero_of(elem))
        } else {
            Cell::Array(ArrayVal::zeros(elem, dims))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_and_arithmetic() {
        assert_eq!(
            bin_op(BinOp::Add, Value::Int(2), Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            bin_op(BinOp::Add, Value::Int(2), Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            bin_op(BinOp::Div, Value::Int(7), Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            bin_op(BinOp::Rem, Value::Int(7), Value::Int(3)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            bin_op(BinOp::Div, Value::Float(7.0), Value::Float(2.0)).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(bin_op(BinOp::Div, Value::Int(1), Value::Int(0)).is_err());
        assert!(bin_op(BinOp::Rem, Value::Int(1), Value::Int(0)).is_err());
        // Float division by zero follows IEEE
        assert_eq!(
            bin_op(BinOp::Div, Value::Float(1.0), Value::Float(0.0)).unwrap(),
            Value::Float(f64::INFINITY)
        );
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            bin_op(BinOp::Lt, Value::Int(1), Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin_op(BinOp::Ge, Value::Float(2.0), Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin_op(BinOp::And, Value::Bool(true), Value::Bool(false)).unwrap(),
            Value::Bool(false)
        );
        assert!(bin_op(BinOp::And, Value::Int(1), Value::Bool(true)).is_err());
    }

    #[test]
    fn bitwise_requires_ints() {
        assert_eq!(
            bin_op(BinOp::BitAnd, Value::Int(6), Value::Int(3)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            bin_op(BinOp::Shl, Value::Int(1), Value::Int(4)).unwrap(),
            Value::Int(16)
        );
        assert!(bin_op(BinOp::BitOr, Value::Float(1.0), Value::Int(1)).is_err());
    }

    #[test]
    fn unary_ops() {
        assert_eq!(un_op(UnOp::Neg, Value::Int(3)).unwrap(), Value::Int(-3));
        assert_eq!(
            un_op(UnOp::Neg, Value::Float(1.5)).unwrap(),
            Value::Float(-1.5)
        );
        assert_eq!(
            un_op(UnOp::Not, Value::Bool(false)).unwrap(),
            Value::Bool(true)
        );
        assert!(un_op(UnOp::Not, Value::Int(1)).is_err());
    }

    #[test]
    fn math_intrinsics() {
        assert_eq!(
            math_call("sqrt", &[Value::Float(9.0)]).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(math_call("abs", &[Value::Int(-4)]).unwrap(), Value::Int(4));
        assert_eq!(
            math_call("max", &[Value::Int(3), Value::Int(7)]).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            math_call("pow", &[Value::Float(2.0), Value::Int(10)]).unwrap(),
            Value::Float(1024.0)
        );
        assert!(math_call("nope", &[]).is_err());
        assert!(is_math_fn("atan"));
        assert!(!is_math_fn("println"));
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert!(Value::Float(3.5).coerce_to(DataType::Int).is_err());
        assert!(Value::Bool(true).coerce_to(DataType::Float).is_err());
    }

    #[test]
    fn arrays_round_trip() {
        let mut a = ArrayVal::zeros(DataType::Float, vec![2, 3]);
        a.set(&[1, 2], Value::Int(7)).unwrap();
        assert_eq!(a.get(&[1, 2]).unwrap(), Value::Float(7.0));
        assert_eq!(a.get(&[0, 0]).unwrap(), Value::Float(0.0));
        assert!(a.get(&[2, 0]).is_err());
        assert!(a.get(&[0]).is_err());
    }
}
