//! Steady-state schedule solver.
//!
//! StreamIt programs admit a *steady-state schedule*: an assignment of
//! repetition counts to filters such that every channel returns to its
//! initial occupancy (§3.3.1 of the paper, after Karczmarek's scheduling
//! work). This module solves the SDF balance equations hierarchically with
//! exact rationals and normalizes to the minimal integral repetition
//! vector. The optimization-selection cost model scales per-firing costs by
//! these repetition counts, and Table 5.2's statistics derive from them.

use std::collections::HashMap;

use streamlin_support::ratio::{common_denominator, Ratio};

use crate::ir::{Splitter, Stream};

/// Items consumed/produced by one macro-firing of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SteadyIo {
    /// Items popped from the stream's input per steady-state cycle.
    pub pop: u64,
    /// Items pushed to the stream's output per steady-state cycle.
    pub push: u64,
}

/// A solved steady state: I/O totals plus per-filter repetition counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Steady {
    /// I/O per steady-state cycle of the whole stream.
    pub io: SteadyIo,
    /// Filter-instance id → firings per steady-state cycle.
    pub reps: HashMap<usize, u64>,
}

/// Errors from the balance-equation solver.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleError {
    /// Explanation of the inconsistency.
    pub message: String,
}

impl ScheduleError {
    fn new(message: impl Into<String>) -> Self {
        ScheduleError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scheduling error: {}", self.message)
    }
}

impl std::error::Error for ScheduleError {}

/// Solves the steady state of a stream.
///
/// # Errors
///
/// Returns a [`ScheduleError`] when the balance equations are inconsistent
/// (e.g. a splitjoin whose branches cannot agree on a splitter rate).
pub fn steady_state(s: &Stream) -> Result<Steady, ScheduleError> {
    solve(s)
}

/// Macro-firings of each *immediate child* per macro-firing of the given
/// container (all 1 for a filter). This is the scaling factor chain the
/// optimization-selection cost model uses.
///
/// # Errors
///
/// Propagates solver errors.
pub fn child_multipliers(s: &Stream) -> Result<Vec<u64>, ScheduleError> {
    Ok(match s {
        Stream::Filter(_) => Vec::new(),
        Stream::Pipeline(children) => pipeline_multipliers(children)?.0,
        Stream::SplitJoin {
            split,
            children,
            join,
        } => splitjoin_multipliers(split, children, join)?.0,
        Stream::FeedbackLoop {
            join,
            body,
            loop_stream,
            split,
            ..
        } => {
            let m = feedback_multipliers(join, body, loop_stream, split)?;
            vec![m.body, m.loop_reps]
        }
    })
}

/// One directed channel of a flat SDF graph, with per-firing rates: node
/// `from` pushes `push` items per firing, node `to` pops `pop` per firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateEdge {
    /// Producer node index.
    pub from: usize,
    /// Consumer node index.
    pub to: usize,
    /// Items pushed per producer firing.
    pub push: u64,
    /// Items popped per consumer firing.
    pub pop: u64,
}

/// Solves the balance equations of a *flat* SDF graph: returns the minimal
/// repetition vector `q` such that `q[from] * push == q[to] * pop` holds on
/// every edge. This is the entry point the runtime's schedule compiler uses
/// on the flattened node/channel graph (where splitters, joiners, and
/// decimators are materialized nodes the hierarchical solver never sees).
///
/// Disconnected components are normalized independently, each to its own
/// minimal positive vector.
///
/// # Errors
///
/// Returns a [`ScheduleError`] if an edge has a zero rate on one side only
/// (data piles up or starves forever) or if two paths between the same
/// nodes imply inconsistent rates.
pub fn balance(num_nodes: usize, edges: &[RateEdge]) -> Result<Vec<u64>, ScheduleError> {
    for e in edges {
        if e.from >= num_nodes || e.to >= num_nodes {
            return Err(ScheduleError::new("edge endpoint out of range"));
        }
        if (e.push == 0) != (e.pop == 0) {
            return Err(ScheduleError::new(format!(
                "channel {} -> {} has a zero rate on one side only ({} vs {})",
                e.from, e.to, e.push, e.pop
            )));
        }
    }
    // Undirected adjacency for rate propagation.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    for (i, e) in edges.iter().enumerate() {
        adj[e.from].push(i);
        adj[e.to].push(i);
    }
    let mut rates: Vec<Option<Ratio>> = vec![None; num_nodes];
    let mut reps = vec![0u64; num_nodes];
    for root in 0..num_nodes {
        if rates[root].is_some() {
            continue;
        }
        // BFS this component with root rate 1.
        rates[root] = Some(Ratio::one());
        let mut component = vec![root];
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(n) = queue.pop_front() {
            let rn = rates[n].expect("queued nodes have rates");
            for &ei in &adj[n] {
                let e = &edges[ei];
                if e.push == 0 {
                    continue; // zero-zero edge constrains nothing
                }
                let (other, implied) = if e.from == n {
                    (e.to, rn * Ratio::new(e.push as i128, e.pop as i128))
                } else {
                    (e.from, rn * Ratio::new(e.pop as i128, e.push as i128))
                };
                match rates[other] {
                    None => {
                        rates[other] = Some(implied);
                        component.push(other);
                        queue.push_back(other);
                    }
                    Some(existing) if existing == implied => {}
                    Some(existing) => {
                        return Err(ScheduleError::new(format!(
                            "nodes {n} and {other} disagree on rates ({existing} vs {implied}); \
                             the graph is not schedulable"
                        )))
                    }
                }
            }
        }
        let ms: Vec<Ratio> = component
            .iter()
            .map(|&n| rates[n].expect("component solved"))
            .collect();
        let ints = normalize(&ms)?;
        for (&n, &q) in component.iter().zip(&ints) {
            reps[n] = q;
        }
    }
    Ok(reps)
}

fn solve(s: &Stream) -> Result<Steady, ScheduleError> {
    match s {
        Stream::Filter(f) => {
            let mut reps = HashMap::new();
            reps.insert(f.id, 1);
            Ok(Steady {
                io: SteadyIo {
                    pop: f.work.pop as u64,
                    push: f.work.push as u64,
                },
                reps,
            })
        }
        Stream::Pipeline(children) => {
            let (mults, sols) = pipeline_multipliers(children)?;
            let io = SteadyIo {
                pop: mults[0] * sols[0].io.pop,
                push: mults[mults.len() - 1] * sols[sols.len() - 1].io.push,
            };
            Ok(Steady {
                io,
                reps: merge_reps(&sols, &mults),
            })
        }
        Stream::SplitJoin {
            split,
            children,
            join,
        } => {
            let (mults, sols, s_cycles, j_cycles) = splitjoin_multipliers(split, children, join)?;
            let pop = s_cycles * split.items_per_cycle() as u64;
            let push = j_cycles * join.items_per_cycle() as u64;
            Ok(Steady {
                io: SteadyIo { pop, push },
                reps: merge_reps(&sols, &mults),
            })
        }
        Stream::FeedbackLoop {
            join,
            body,
            loop_stream,
            split,
            ..
        } => {
            let m = feedback_multipliers(join, body, loop_stream, split)?;
            let body_sol = solve(body)?;
            let loop_sol = solve(loop_stream)?;
            let reps = merge_reps(&[body_sol, loop_sol], &[m.body, m.loop_reps]);
            Ok(Steady {
                io: SteadyIo {
                    pop: m.pop,
                    push: m.push,
                },
                reps,
            })
        }
    }
}

fn merge_reps(sols: &[Steady], mults: &[u64]) -> HashMap<usize, u64> {
    let mut reps = HashMap::new();
    for (sol, &m) in sols.iter().zip(mults) {
        for (&id, &r) in &sol.reps {
            reps.insert(id, r * m);
        }
    }
    reps
}

fn gcd(a: u64, b: u64) -> u64 {
    streamlin_support::num::gcd(a, b)
}

/// Normalizes rational multipliers to the minimal positive integers with
/// the same ratios.
fn normalize(ms: &[Ratio]) -> Result<Vec<u64>, ScheduleError> {
    let l = common_denominator(ms.iter());
    let mut ints = Vec::with_capacity(ms.len());
    for m in ms {
        let v = (*m * Ratio::from_int(l))
            .to_integer()
            .expect("common denominator clears all fractions");
        if v <= 0 {
            return Err(ScheduleError::new("non-positive repetition count"));
        }
        ints.push(v as u64);
    }
    let g = ints.iter().copied().fold(0, gcd).max(1);
    Ok(ints.iter().map(|v| v / g).collect())
}

fn pipeline_multipliers(children: &[Stream]) -> Result<(Vec<u64>, Vec<Steady>), ScheduleError> {
    let sols: Vec<Steady> = children.iter().map(solve).collect::<Result<_, _>>()?;
    let mut ms = vec![Ratio::one()];
    for i in 0..sols.len() - 1 {
        let up = sols[i].io.push;
        let down = sols[i + 1].io.pop;
        let next = match (up, down) {
            (0, 0) => Ratio::one(),
            (0, _) => {
                return Err(ScheduleError::new(format!(
                    "pipeline stage {} produces nothing but stage {} consumes",
                    i,
                    i + 1
                )))
            }
            (_, 0) => {
                return Err(ScheduleError::new(format!(
                    "pipeline stage {} produces data but stage {} consumes nothing",
                    i,
                    i + 1
                )))
            }
            (u, d) => ms[i] * Ratio::new(u as i128, d as i128),
        };
        ms.push(next);
    }
    let mults = normalize(&ms)?;
    Ok((mults, sols))
}

#[allow(clippy::type_complexity)]
fn splitjoin_multipliers(
    split: &Splitter,
    children: &[Stream],
    join: &crate::ir::Joiner,
) -> Result<(Vec<u64>, Vec<Steady>, u64, u64), ScheduleError> {
    let sols: Vec<Steady> = children.iter().map(solve).collect::<Result<_, _>>()?;
    if join.weights.len() != children.len() {
        return Err(ScheduleError::new("joiner weight count mismatch"));
    }
    let n = children.len();
    // Work with joiner cycles J = 1.
    let mut r: Vec<Option<Ratio>> = vec![None; n];
    for k in 0..n {
        let q = sols[k].io.push;
        let w = join.weights[k] as u64;
        match (q, w) {
            (0, 0) => {}
            (0, _) => {
                return Err(ScheduleError::new(format!(
                    "splitjoin child {k} pushes nothing but the joiner expects items from it"
                )))
            }
            (_, 0) => {
                return Err(ScheduleError::new(format!(
                    "splitjoin child {k} pushes data but its joiner weight is zero"
                )))
            }
            (q, w) => r[k] = Some(Ratio::new(w as i128, q as i128)),
        }
    }
    // Determine splitter cycles S from any child constrained on both sides.
    let mut s_cycles: Option<Ratio> = None;
    for k in 0..n {
        let p = sols[k].io.pop;
        let v = split.weight(k) as u64;
        if let (Some(rk), true, true) = (r[k], p > 0, v > 0) {
            let cand = rk * Ratio::new(p as i128, v as i128);
            match s_cycles {
                None => s_cycles = Some(cand),
                Some(existing) if existing == cand => {}
                Some(existing) => {
                    return Err(ScheduleError::new(format!(
                        "splitjoin branches disagree on the splitter rate ({existing} vs {cand}); \
                         the graph is not schedulable"
                    )))
                }
            }
        }
    }
    let s_cycles = match s_cycles {
        Some(s) => s,
        None => {
            // No child consumes input: a splitjoin of sources.
            if sols.iter().any(|s| s.io.pop > 0) {
                return Err(ScheduleError::new(
                    "splitjoin mixes source children with consuming children",
                ));
            }
            Ratio::zero()
        }
    };
    // Children unconstrained by the joiner get their rate from the splitter.
    for k in 0..n {
        if r[k].is_none() {
            let p = sols[k].io.pop;
            let v = split.weight(k) as u64;
            if p == 0 {
                return Err(ScheduleError::new(format!(
                    "splitjoin child {k} neither consumes nor produces data"
                )));
            }
            r[k] = Some(s_cycles * Ratio::new(v as i128, p as i128));
        }
    }
    // Consistency: every child must drain exactly what the splitter sends.
    for k in 0..n {
        let p = sols[k].io.pop;
        let v = split.weight(k) as u64;
        let rk = r[k].expect("all rates resolved above");
        if rk * Ratio::from_int(p as i128) != s_cycles * Ratio::from_int(v as i128) {
            return Err(ScheduleError::new(format!(
                "splitjoin child {k} cannot keep up with the splitter; not schedulable"
            )));
        }
    }
    // Normalize r ∪ {S, J}.
    let mut all: Vec<Ratio> = r.iter().map(|x| x.expect("resolved")).collect();
    all.push(Ratio::one()); // J
    let with_s = s_cycles != Ratio::zero();
    if with_s {
        all.push(s_cycles);
    }
    let ints = normalize(&all)?;
    let mults = ints[..n].to_vec();
    let j_cycles = ints[n];
    let s_int = if with_s { ints[n + 1] } else { 0 };
    Ok((mults, sols, s_int, j_cycles))
}

struct FeedbackRates {
    body: u64,
    loop_reps: u64,
    pop: u64,
    push: u64,
}

fn feedback_multipliers(
    join: &crate::ir::Joiner,
    body: &Stream,
    loop_stream: &Stream,
    split: &Splitter,
) -> Result<FeedbackRates, ScheduleError> {
    let body_sol = solve(body)?;
    let loop_sol = solve(loop_stream)?;
    let (w_in, w_fb) = (join.weights[0] as i128, join.weights[1] as i128);
    let (pb, qb) = (body_sol.io.pop as i128, body_sol.io.push as i128);
    let (pl, ql) = (loop_sol.io.pop as i128, loop_sol.io.push as i128);
    if pb == 0 || qb == 0 || pl == 0 || ql == 0 {
        return Err(ScheduleError::new(
            "feedbackloop body and loop streams must both consume and produce data",
        ));
    }
    // J = 1 joiner cycles.
    let rb = Ratio::new(w_in + w_fb, pb);
    let (s_cycles, loop_in, push_per_s) = match split {
        Splitter::Duplicate => {
            let s = rb * Ratio::from_int(qb);
            (s, s, Ratio::one())
        }
        Splitter::RoundRobin(v) => {
            if v.len() != 2 {
                return Err(ScheduleError::new("feedback splitter must have 2 weights"));
            }
            let (v_out, v_fb) = (v[0] as i128, v[1] as i128);
            let s = rb * Ratio::from_int(qb) / Ratio::from_int(v_out + v_fb);
            (s, s * Ratio::from_int(v_fb), Ratio::from_int(v_out))
        }
    };
    let rl = loop_in / Ratio::from_int(pl);
    // Consistency: the loop must feed the joiner exactly w_fb per cycle.
    if rl * Ratio::from_int(ql) != Ratio::from_int(w_fb) {
        return Err(ScheduleError::new(
            "feedbackloop rates are inconsistent: the loop path does not balance",
        ));
    }
    let push_total = s_cycles * push_per_s;
    let all = [rb, rl, Ratio::one(), push_total, Ratio::from_int(w_in)];
    let nonzero: Vec<Ratio> = all.iter().filter(|r| !r.is_zero()).copied().collect();
    let l = common_denominator(nonzero.iter());
    let scale =
        |r: Ratio| -> u64 { (r * Ratio::from_int(l)).to_integer().expect("cleared") as u64 };
    let mut ints = vec![scale(rb), scale(rl), scale(Ratio::one())];
    let push_i = scale(push_total);
    let pop_i = scale(Ratio::from_int(w_in));
    ints.push(push_i);
    ints.push(pop_i);
    let g = ints.iter().copied().filter(|&v| v > 0).fold(0, gcd).max(1);
    Ok(FeedbackRates {
        body: scale(rb) / g,
        loop_reps: scale(rl) / g,
        pop: pop_i / g,
        push: push_i / g,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use streamlin_lang::parse;

    fn steady(src: &str) -> Steady {
        steady_state(&elaborate(&parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn downsample_pipeline_rates() {
        // Source(push 1) -> Compressor(pop 2 push 1) -> Sink(pop 1):
        // source fires 2x per sink firing.
        let s = steady(
            "void->void pipeline Main { add S(); add C(); add K(); }
             void->float filter S { work push 1 { push(0.0); } }
             float->float filter C { work pop 2 push 1 { push(pop()); pop(); } }
             float->void filter K { work pop 1 { pop(); } }",
        );
        let reps: Vec<u64> = {
            let mut v: Vec<_> = s.reps.iter().collect();
            v.sort();
            v.into_iter().map(|(_, &r)| r).collect()
        };
        assert_eq!(reps, vec![2, 1, 1]);
        assert_eq!(s.io.pop, 0);
        assert_eq!(s.io.push, 0);
    }

    #[test]
    fn expander_compressor_cancel() {
        let s = steady(
            "void->void pipeline Main { add S(); add E(); add C(); add K(); }
             void->float filter S { work push 1 { push(0.0); } }
             float->float filter E { work pop 1 push 3 { push(pop()); push(0); push(0); } }
             float->float filter C { work pop 3 push 1 { push(pop()); pop(); pop(); } }
             float->void filter K { work pop 1 { pop(); } }",
        );
        let mut v: Vec<_> = s.reps.iter().collect();
        v.sort();
        let reps: Vec<u64> = v.into_iter().map(|(_, &r)| r).collect();
        assert_eq!(reps, vec![1, 1, 1, 1]);
    }

    #[test]
    fn duplicate_splitjoin_balances() {
        let s = steady(
            "void->void pipeline Main { add S(); add SJ(); add K(); }
             void->float filter S { work push 1 { push(0.0); } }
             float->float splitjoin SJ {
                 split duplicate;
                 add A(); add B();
                 join roundrobin(1, 2);
             }
             float->float filter A { work pop 2 push 1 { push(pop()); pop(); } }
             float->float filter B { work pop 1 push 1 { push(pop()); } }
             float->void filter K { work pop 1 { pop(); } }",
        );
        // A: per joiner cycle needs 1 output => 1 firing consuming 2.
        // B: needs 2 outputs => 2 firings consuming 2. Consistent: S=2.
        assert_eq!(s.io.pop, 0);
        // Source fires 2 per steady state; sink pops 3.
        let total: u64 = s.reps.values().sum();
        assert!(total >= 6, "reps: {:?}", s.reps);
    }

    #[test]
    fn inconsistent_splitjoin_is_rejected() {
        let p = parse(
            "void->void pipeline Main { add S(); add SJ(); add K(); }
             void->float filter S { work push 1 { push(0.0); } }
             float->float splitjoin SJ {
                 split duplicate;
                 add A(); add B();
                 join roundrobin(1, 1);
             }
             float->float filter A { work pop 2 push 1 { push(pop()); pop(); } }
             float->float filter B { work pop 1 push 1 { push(pop()); } }
             float->void filter K { work pop 1 { pop(); } }",
        )
        .unwrap();
        let g = elaborate(&p).unwrap();
        let err = steady_state(&g).unwrap_err();
        assert!(err.message.contains("not schedulable"), "{err}");
    }

    #[test]
    fn roundrobin_splitter_rates() {
        let s = steady(
            "void->void pipeline Main { add S(); add SJ(); add K(); }
             void->float filter S { work push 3 { push(0.0); push(0.0); push(0.0); } }
             float->float splitjoin SJ {
                 split roundrobin(2, 1);
                 add A(); add B();
                 join roundrobin(2, 1);
             }
             float->float filter A { work pop 1 push 1 { push(pop()); } }
             float->float filter B { work pop 1 push 1 { push(pop()); } }
             float->void filter K { work pop 3 { pop(); pop(); pop(); } }",
        );
        let total: u64 = s.reps.values().sum();
        // S:1, A:2, B:1, K:1 => 5
        assert_eq!(total, 5, "reps: {:?}", s.reps);
    }

    #[test]
    fn feedbackloop_balances() {
        let s = steady(
            "void->void pipeline Main { add S(); add FB(); add K(); }
             void->float filter S { work push 1 { push(1.0); } }
             float->void filter K { work pop 1 { pop(); } }
             float->float feedbackloop FB {
                 join roundrobin(1, 1);
                 body B();
                 loop L();
                 split roundrobin(1, 1);
                 enqueue 0;
             }
             float->float filter B { work pop 2 push 2 { push(pop() + peek(0)); push(pop()); } }
             float->float filter L { work pop 1 push 1 { push(pop()); } }",
        );
        let total: u64 = s.reps.values().sum();
        assert_eq!(total, 4, "reps: {:?}", s.reps); // S, B, L, K once each
    }

    #[test]
    fn child_multiplier_chain() {
        let p = parse(
            "void->void pipeline Main { add S(); add C(); add K(); }
             void->float filter S { work push 1 { push(0.0); } }
             float->float filter C { work pop 4 push 1 { for (int i=0;i<4;i++) pop(); push(0.0); } }
             float->void filter K { work pop 1 { pop(); } }",
        )
        .unwrap();
        let g = elaborate(&p).unwrap();
        assert_eq!(child_multipliers(&g).unwrap(), vec![4, 1, 1]);
    }

    #[test]
    fn flat_balance_solves_a_chain() {
        // S (push 1) -> C (pop 2, push 1) -> K (pop 3): q = [6, 3, 1].
        let edges = [
            RateEdge {
                from: 0,
                to: 1,
                push: 1,
                pop: 2,
            },
            RateEdge {
                from: 1,
                to: 2,
                push: 1,
                pop: 3,
            },
        ];
        assert_eq!(balance(3, &edges).unwrap(), vec![6, 3, 1]);
    }

    #[test]
    fn flat_balance_solves_a_diamond() {
        // split(1 each) -> two branches (pop 1 push 1 / pop 1 push 2) -> join(1, 2).
        let edges = [
            RateEdge {
                from: 0,
                to: 1,
                push: 1,
                pop: 1,
            },
            RateEdge {
                from: 0,
                to: 2,
                push: 1,
                pop: 1,
            },
            RateEdge {
                from: 1,
                to: 3,
                push: 1,
                pop: 1,
            },
            RateEdge {
                from: 2,
                to: 3,
                push: 2,
                pop: 2,
            },
        ];
        assert_eq!(balance(4, &edges).unwrap(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn flat_balance_rejects_inconsistent_cycles_of_constraints() {
        // Diamond whose two paths imply different rates for the join.
        let edges = [
            RateEdge {
                from: 0,
                to: 1,
                push: 1,
                pop: 1,
            },
            RateEdge {
                from: 0,
                to: 2,
                push: 1,
                pop: 1,
            },
            RateEdge {
                from: 1,
                to: 3,
                push: 1,
                pop: 1,
            },
            RateEdge {
                from: 2,
                to: 3,
                push: 2,
                pop: 1,
            },
        ];
        assert!(balance(4, &edges).is_err());
    }

    #[test]
    fn flat_balance_rejects_one_sided_zero_rates() {
        let edges = [RateEdge {
            from: 0,
            to: 1,
            push: 0,
            pop: 2,
        }];
        assert!(balance(2, &edges).is_err());
    }

    #[test]
    fn flat_balance_normalizes_components_independently() {
        // Two disjoint chains: each gets its own minimal vector.
        let edges = [
            RateEdge {
                from: 0,
                to: 1,
                push: 2,
                pop: 1,
            },
            RateEdge {
                from: 2,
                to: 3,
                push: 1,
                pop: 3,
            },
        ];
        assert_eq!(balance(4, &edges).unwrap(), vec![1, 2, 3, 1]);
    }

    #[test]
    fn rate_mismatch_mid_pipeline_is_rejected() {
        let p = parse(
            "void->void pipeline Main { add S(); add X(); add K(); }
             void->float filter S { work push 1 { push(0.0); } }
             float->void filter X { work pop 1 { pop(); } }
             float->void filter K { work pop 1 { pop(); } }",
        )
        .unwrap();
        let g = elaborate(&p).unwrap();
        assert!(steady_state(&g).is_err());
    }
}
