//! Hierarchical stream-graph IR, elaboration and steady-state scheduling.
//!
//! This crate turns a parsed StreamIt program ([`streamlin_lang::Program`])
//! into the structures the analyses and the runtime consume:
//!
//! * [`value`] — the dynamic values of the dialect (ints, floats, booleans,
//!   arrays) and their operator semantics, shared by constant evaluation,
//!   the work-function interpreter and the linear extraction analysis.
//! * [`exec`] — a statement/expression interpreter over the AST,
//!   parameterized by a [`exec::Host`] so the same engine serves both pure
//!   constant evaluation (elaboration-time `init` blocks) and tape-connected
//!   runtime execution.
//! * [`ir`] — the elaborated hierarchical [`ir::Stream`] graph: concrete
//!   filter instances (with evaluated field values and I/O rates) composed
//!   by pipelines, splitjoins and feedbackloops, mirroring the StreamIt SIR
//!   the paper's compiler operates on (§4.4).
//! * [`lower`] — slot resolution of work-function bodies: every field,
//!   parameter and lexical local is assigned a storage slot at elaboration
//!   (shadowing resolved statically), and the runtime executes the
//!   resolved tree over plain `Vec<Cell>` storage — no name hashing on the
//!   firing path.
//! * [`elaborate`] — instantiation of parameterized stream declarations:
//!   runs container bodies and filter `init` blocks under constant
//!   evaluation, exactly like the StreamIt compiler resolves its graph at
//!   compile time (§2.1: "these rates must be resolvable at compile time"),
//!   and lowers each filter's work phases to their slot-resolved form.
//! * [`steady`] — the steady-state schedule solver (SDF balance equations,
//!   solved hierarchically with exact rationals), providing the repetition
//!   counts used by the cost model of the optimization-selection pass.
//! * [`stats`] — structural statistics for Table 5.2.
//!
//! # Examples
//!
//! ```
//! let program = streamlin_lang::parse(
//!     "void->void pipeline Main { add Src(); add Sink(); }
//!      void->float filter Src { work push 2 { push(1.0); push(2.0); } }
//!      float->void filter Sink { work pop 1 { println(pop()); } }",
//! )
//! .unwrap();
//! let graph = streamlin_graph::elaborate::elaborate(&program).unwrap();
//! let steady = streamlin_graph::steady::steady_state(&graph).unwrap();
//! // The top-level stream consumes and produces nothing.
//! assert_eq!(steady.io.pop, 0);
//! assert_eq!(steady.io.push, 0);
//! ```

pub mod analyze;
pub mod bytecode;
pub mod elaborate;
pub mod exec;
pub mod ir;
pub mod lower;
pub mod stats;
pub mod steady;
pub mod value;

pub use analyze::{FilterFacts, RateCert, StateEffect};
pub use elaborate::{elaborate, ElabError};
pub use ir::{FilterInst, Joiner, Splitter, Stream};
pub use lower::{LoweredFilter, SlotInterp, SlotStore};
pub use value::Value;
