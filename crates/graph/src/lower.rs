//! Slot resolution: compiling work-function bodies for the runtime.
//!
//! The paper's compiler resolves every filter name at elaboration time
//! (§2.1, §4.4): fields, parameters and locals are ordinary storage by the
//! time code runs. The AST interpreter in [`crate::exec`] instead resolved
//! names *per access* — a `HashMap<String, Cell>` probe for every variable
//! read and a fresh scope map for every executed block — which put a
//! hashing floor under every interpreted benchmark. This module removes
//! that floor:
//!
//! * [`lower_filter`] walks each work body **once** at elaboration,
//!   assigns every field/parameter a *global* slot and every lexical local
//!   a *frame* slot (static scoping, shadowing resolved at lowering), and
//!   emits a resolved tree ([`RStmt`]/[`RExpr`]) in which `Expr::Var(name)`
//!   has become [`RExpr::Var`]`(`[`Slot`]`)`. Unknown names, unknown
//!   functions, wrong intrinsic arity and `add` statements are reported
//!   here — at compile time — instead of on the Nth firing.
//! * [`SlotInterp`] executes the resolved tree over two plain `Vec<Cell>`
//!   arrays (persistent globals + a reusable frame): no per-block scope
//!   maps, no string hashing, no name cloning on the firing path. It
//!   drives the same [`Host`] trait as the AST interpreter and performs
//!   byte-for-byte the same arithmetic in the same order, so outputs and
//!   operation tallies are identical — `tests/interp_differential.rs`
//!   pins that down across the nine benchmarks.
//!
//! The name-based [`crate::exec::Interp`] remains the engine for constant
//! contexts (container bodies, `init` blocks, rate expressions), where
//! the environment is genuinely dynamic.

use std::collections::HashMap;

use streamlin_lang::ast::{BinOp, Block, DataType, Expr, LValue, Stmt, UnOp};
use streamlin_lang::token::Span;

use crate::exec::{Flow, Host, IndexBuf};
use crate::ir::WorkFn;
use crate::value::{bin_op, un_op, ArrayVal, Cell, EvalError, MathFn, Value};

/// A static resolution error (undefined name, unknown function, `add` in a
/// work body). Reported at elaboration time. [`lower_filter`] collects
/// *every* error in a body rather than stopping at the first.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Explanation of the problem.
    pub message: String,
    /// Source position of the offending statement (the default span when
    /// the body was built without position information).
    pub span: Span,
}

impl LowerError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        LowerError {
            message: message.into(),
            span,
        }
    }
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.span == Span::default() {
            write!(f, "lowering error: {}", self.message)
        } else {
            write!(f, "lowering error at {}: {}", self.span, self.message)
        }
    }
}

impl std::error::Error for LowerError {}

/// A resolved storage location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// Persistent cell (field, stream parameter or captured constant):
    /// index into the instance's global vector, fixed by
    /// [`LoweredFilter::globals`].
    Global(u32),
    /// Per-firing local: index into the frame vector. Disjoint lexical
    /// scopes reuse frame slots; every local is (re)declared before use,
    /// so stale frame contents are never observable.
    Frame(u32),
}

/// A resolved assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum RLValue {
    /// A scalar variable.
    Var(Slot),
    /// An array element.
    Index(Slot, Vec<RExpr>),
}

/// A resolved expression. Mirrors [`Expr`] with names replaced by slots,
/// `pi` folded to its value, intrinsics resolved to [`MathFn`], and
/// `print`/`println` split out of the call form.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// Integer literal.
    Int(i64),
    /// Float literal (also lowered `pi`).
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Variable read.
    Var(Slot),
    /// Array element read.
    Index(Slot, Vec<RExpr>),
    /// Unary operation.
    Unary(UnOp, Box<RExpr>),
    /// Binary operation (`&&`/`||` short-circuit).
    Binary(BinOp, Box<RExpr>, Box<RExpr>),
    /// `peek(i)`.
    Peek(Box<RExpr>),
    /// `pop()`.
    Pop,
    /// `push(v)`.
    Push(Box<RExpr>),
    /// Math intrinsic call (arity validated at lowering; never above 2).
    Math(MathFn, Vec<RExpr>),
    /// `print(v)` / `println(v)`.
    Print {
        /// True for `println`.
        newline: bool,
        /// The printed value.
        arg: Box<RExpr>,
    },
    /// Postfix `++`/`--` (evaluates to the pre-increment value).
    PostIncDec {
        /// The mutated location.
        target: RLValue,
        /// `true` for `++`.
        inc: bool,
    },
}

/// A resolved statement. Every variant but `Return` carries the source
/// span of the originating statement, so post-lowering analyses (the
/// abstract interpreter in [`crate::analyze`], the lint driver) can point
/// diagnostics back at the source.
#[derive(Debug, Clone, PartialEq)]
pub enum RStmt {
    /// Local declaration into a frame slot. Executing it installs a fresh
    /// zero cell (dimensions re-evaluated), then applies the initializer.
    Decl {
        /// Target frame slot.
        slot: u32,
        /// Element type.
        base: DataType,
        /// Array dimensions (empty for scalars).
        dims: Vec<RExpr>,
        /// Optional initializer.
        init: Option<RExpr>,
        /// Source position.
        span: Span,
    },
    /// Assignment through `=` or a compound operator.
    Assign {
        /// Target location.
        target: RLValue,
        /// Compound operator (`None` for plain `=`).
        op: Option<BinOp>,
        /// Right-hand side.
        value: RExpr,
        /// Source position.
        span: Span,
    },
    /// `if`/`else`.
    If {
        /// Condition.
        cond: RExpr,
        /// Then branch.
        then_blk: Vec<RStmt>,
        /// Optional else branch.
        else_blk: Option<Vec<RStmt>>,
        /// Source position.
        span: Span,
    },
    /// C-style `for`.
    For {
        /// Initialization statement.
        init: Option<Box<RStmt>>,
        /// Condition (absent means `true`).
        cond: Option<RExpr>,
        /// Step statement.
        step: Option<Box<RStmt>>,
        /// Body.
        body: Vec<RStmt>,
        /// Source position.
        span: Span,
    },
    /// `while`.
    While {
        /// Condition.
        cond: RExpr,
        /// Body.
        body: Vec<RStmt>,
        /// Source position.
        span: Span,
    },
    /// Expression statement.
    Expr(RExpr, Span),
    /// `return;`.
    Return,
}

impl RStmt {
    /// The source span of this statement.
    pub fn span(&self) -> Span {
        match self {
            RStmt::Decl { span, .. }
            | RStmt::Assign { span, .. }
            | RStmt::If { span, .. }
            | RStmt::For { span, .. }
            | RStmt::While { span, .. }
            | RStmt::Expr(_, span) => *span,
            RStmt::Return => Span::default(),
        }
    }
}

/// One lowered work phase.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoweredWork {
    /// The resolved body.
    pub body: Vec<RStmt>,
    /// Frame slots this phase needs.
    pub frame_slots: usize,
    /// The body flattened to the linear bytecode tier
    /// ([`crate::bytecode`]), compiled once here so every consumer of the
    /// phase — both engines, the pipeline executor, fission workers, the
    /// streamlind plan cache — shares the same compiled form.
    pub code: crate::bytecode::ByteCode,
}

impl LoweredWork {
    /// Number of statements in the body, counted recursively through
    /// `if`/`for`/`while` blocks (each loop body once — a *static* size,
    /// used by cost heuristics such as pipeline stage balancing, not a
    /// dynamic execution count).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[RStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    RStmt::If {
                        then_blk, else_blk, ..
                    } => 1 + count(then_blk) + else_blk.as_deref().map_or(0, count),
                    RStmt::For {
                        init, step, body, ..
                    } => {
                        1 + usize::from(init.is_some()) + usize::from(step.is_some()) + count(body)
                    }
                    RStmt::While { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }
}

/// The slot-resolved form of a filter's work phases, produced at
/// elaboration and carried on [`crate::ir::FilterInst`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoweredFilter {
    /// Global slot `i` holds the cell of `globals[i]` (sorted field,
    /// parameter and captured-constant names — the deterministic order the
    /// runtime uses to build its `Vec<Cell>` from the instance state).
    pub globals: Vec<String>,
    /// The steady-state work phase.
    pub work: LoweredWork,
    /// The optional first-firing phase.
    pub init_work: Option<LoweredWork>,
}

impl LoweredFilter {
    /// Frame slots needed to run any phase of this filter.
    pub fn frame_slots(&self) -> usize {
        self.work
            .frame_slots
            .max(self.init_work.as_ref().map_or(0, |w| w.frame_slots))
    }
}

/// Lowers a filter's work phases against its persistent state (fields,
/// parameters, captured constants).
///
/// # Errors
///
/// Returns every [`LowerError`] found across both phases — undefined
/// names, unknown functions, wrong intrinsic arity, `add` statements
/// inside a work body — instead of stopping at the first. A statement
/// that fails to lower is dropped and the walk continues (a failed
/// declaration still binds its name, so uses of it don't cascade).
pub fn lower_filter(
    state: &HashMap<String, Cell>,
    work: &WorkFn,
    init_work: Option<&WorkFn>,
) -> Result<LoweredFilter, Vec<LowerError>> {
    let mut globals: Vec<String> = state.keys().cloned().collect();
    globals.sort();
    let index: HashMap<&str, u32> = globals
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();
    let mut errors = Vec::new();
    let lowered_work = lower_work(&index, &work.body, &mut errors);
    let lowered_init = init_work.map(|w| lower_work(&index, &w.body, &mut errors));
    if !errors.is_empty() {
        return Err(errors);
    }
    Ok(LoweredFilter {
        globals,
        work: lowered_work,
        init_work: lowered_init,
    })
}

fn lower_work(
    globals: &HashMap<&str, u32>,
    body: &Block,
    errors: &mut Vec<LowerError>,
) -> LoweredWork {
    let mut lo = Lowerer {
        globals,
        scopes: Vec::new(),
        next_frame: 0,
        max_frame: 0,
        cur_span: Span::default(),
        errors,
    };
    let body = lo.lower_block(body);
    let code = crate::bytecode::compile(&body);
    LoweredWork {
        body,
        frame_slots: lo.max_frame as usize,
        code,
    }
}

/// The lowering pass: a lexical scope stack mapping names to frame slots,
/// with the persistent names underneath. Slot allocation is stack-shaped:
/// leaving a scope releases its slots for reuse by sibling scopes, and
/// `max_frame` records the high-water mark that sizes the runtime frame.
struct Lowerer<'a> {
    globals: &'a HashMap<&'a str, u32>,
    scopes: Vec<(HashMap<String, u32>, u32)>,
    next_frame: u32,
    max_frame: u32,
    /// Span of the statement currently being lowered — the position
    /// expression-level errors are reported at.
    cur_span: Span,
    /// Every error found so far, across statements.
    errors: &'a mut Vec<LowerError>,
}

impl Lowerer<'_> {
    fn err(&self, message: impl Into<String>) -> LowerError {
        LowerError::new(message, self.cur_span)
    }
    fn push_scope(&mut self) {
        self.scopes.push((HashMap::new(), self.next_frame));
    }

    fn pop_scope(&mut self) {
        let (_, watermark) = self.scopes.pop().expect("scope stack underflow");
        self.next_frame = watermark;
    }

    fn declare(&mut self, name: &str) -> u32 {
        let slot = self.next_frame;
        self.next_frame += 1;
        self.max_frame = self.max_frame.max(self.next_frame);
        self.scopes
            .last_mut()
            .expect("declarations only occur inside a scope")
            .0
            .insert(name.to_string(), slot);
        slot
    }

    fn resolve(&self, name: &str) -> Result<Slot, LowerError> {
        for (scope, _) in self.scopes.iter().rev() {
            if let Some(&s) = scope.get(name) {
                return Ok(Slot::Frame(s));
            }
        }
        self.globals
            .get(name)
            .map(|&i| Slot::Global(i))
            .ok_or_else(|| self.err(format!("undefined variable `{name}`")))
    }

    /// Lowers a block, recording (not propagating) per-statement errors:
    /// a statement that fails is dropped from the output and the walk
    /// continues with the next one, so one pass reports them all.
    fn lower_block(&mut self, block: &Block) -> Vec<RStmt> {
        self.push_scope();
        let mut out = Vec::with_capacity(block.stmts.len());
        for (i, s) in block.stmts.iter().enumerate() {
            match self.lower_stmt(s, block.span_of(i)) {
                Ok(r) => out.push(r),
                Err(e) => {
                    self.errors.push(e);
                    // Keep the name visible so later uses of a failed
                    // declaration don't cascade into `undefined variable`.
                    if let Stmt::Decl { name, .. } = s {
                        self.declare(name);
                    }
                }
            }
        }
        self.pop_scope();
        out
    }

    fn lower_stmt(&mut self, stmt: &Stmt, span: Span) -> Result<RStmt, LowerError> {
        self.cur_span = span;
        Ok(match stmt {
            Stmt::Decl { ty, name, init } => {
                // Dimensions are evaluated before the name becomes
                // visible; the initializer sees the new (zeroed) variable,
                // exactly as in the AST interpreter.
                let dims = self.lower_exprs(&ty.dims)?;
                let slot = self.declare(name);
                let init = init.as_ref().map(|e| self.lower_expr(e)).transpose()?;
                RStmt::Decl {
                    slot,
                    base: ty.base,
                    dims,
                    init,
                    span,
                }
            }
            Stmt::Assign { target, op, value } => RStmt::Assign {
                target: self.lower_lvalue(target)?,
                op: *op,
                value: self.lower_expr(value)?,
                span,
            },
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => RStmt::If {
                cond: self.lower_expr(cond)?,
                then_blk: self.lower_block(then_blk),
                else_blk: else_blk.as_ref().map(|b| self.lower_block(b)),
                span,
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // The init declaration lives in its own scope that also
                // encloses the condition, step and body. The header
                // statements have no spans of their own and inherit the
                // `for`'s.
                self.push_scope();
                let r = (|| {
                    let init = init
                        .as_deref()
                        .map(|s| self.lower_stmt(s, span).map(Box::new))
                        .transpose()?;
                    self.cur_span = span;
                    let cond = cond.as_ref().map(|e| self.lower_expr(e)).transpose()?;
                    let step = step
                        .as_deref()
                        .map(|s| self.lower_stmt(s, span).map(Box::new))
                        .transpose()?;
                    Ok(RStmt::For {
                        init,
                        cond,
                        step,
                        body: self.lower_block(body),
                        span,
                    })
                })();
                self.pop_scope();
                r?
            }
            Stmt::While { cond, body } => RStmt::While {
                cond: self.lower_expr(cond)?,
                body: self.lower_block(body),
                span,
            },
            Stmt::Expr(e) => RStmt::Expr(self.lower_expr(e)?, span),
            Stmt::Return => RStmt::Return,
            Stmt::Add(_) => {
                return Err(self.err("`add` is only allowed in stream container bodies"))
            }
        })
    }

    fn lower_lvalue(&mut self, lv: &LValue) -> Result<RLValue, LowerError> {
        Ok(match lv {
            LValue::Var(name) => RLValue::Var(self.resolve(name)?),
            LValue::Index(name, idx) => RLValue::Index(self.resolve(name)?, self.lower_exprs(idx)?),
        })
    }

    fn lower_exprs(&mut self, exprs: &[Expr]) -> Result<Vec<RExpr>, LowerError> {
        exprs.iter().map(|e| self.lower_expr(e)).collect()
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<RExpr, LowerError> {
        Ok(match expr {
            Expr::Int(v) => RExpr::Int(*v),
            Expr::Float(v) => RExpr::Float(*v),
            Expr::Bool(v) => RExpr::Bool(*v),
            Expr::Pi => RExpr::Float(std::f64::consts::PI),
            Expr::Var(name) => RExpr::Var(self.resolve(name)?),
            Expr::Index(name, idx) => RExpr::Index(self.resolve(name)?, self.lower_exprs(idx)?),
            Expr::Unary(op, e) => RExpr::Unary(*op, Box::new(self.lower_expr(e)?)),
            Expr::Binary(op, a, b) => RExpr::Binary(
                *op,
                Box::new(self.lower_expr(a)?),
                Box::new(self.lower_expr(b)?),
            ),
            Expr::Peek(i) => RExpr::Peek(Box::new(self.lower_expr(i)?)),
            Expr::Pop => RExpr::Pop,
            Expr::Push(e) => RExpr::Push(Box::new(self.lower_expr(e)?)),
            Expr::Call(name, args) => {
                if name == "print" || name == "println" {
                    if args.len() != 1 {
                        return Err(self.err(format!("{name} expects 1 argument")));
                    }
                    return Ok(RExpr::Print {
                        newline: name == "println",
                        arg: Box::new(self.lower_expr(&args[0])?),
                    });
                }
                let f = MathFn::from_name(name)
                    .ok_or_else(|| self.err(format!("unknown function `{name}`")))?;
                if args.len() != f.arity() {
                    return Err(self.err(format!(
                        "{name} expects {} argument(s), got {}",
                        f.arity(),
                        args.len()
                    )));
                }
                RExpr::Math(f, self.lower_exprs(args)?)
            }
            Expr::PostIncDec { target, inc } => RExpr::PostIncDec {
                target: self.lower_lvalue(target)?,
                inc: *inc,
            },
        })
    }
}

// ---- execution --------------------------------------------------------------

/// The storage a firing executes over: the instance's persistent globals
/// (ordered by [`LoweredFilter::globals`]) and a reusable local frame.
#[derive(Debug)]
pub struct SlotStore<'a> {
    /// Persistent cells, global slot order.
    pub globals: &'a mut [Cell],
    /// Frame cells; contents need not be initialized (every local is
    /// declared before use).
    pub frame: &'a mut [Cell],
}

impl SlotStore<'_> {
    #[inline]
    pub(crate) fn cell_mut(&mut self, slot: Slot) -> &mut Cell {
        match slot {
            Slot::Global(i) => &mut self.globals[i as usize],
            Slot::Frame(i) => &mut self.frame[i as usize],
        }
    }
}

/// The slot-resolved interpreter: same [`Host`] protocol, same fuel
/// discipline and byte-for-byte the same arithmetic as
/// [`crate::exec::Interp`], over direct vector indexing instead of name
/// lookup.
#[derive(Debug)]
pub struct SlotInterp<'h, H: Host> {
    host: &'h mut H,
    fuel: u64,
}

impl<'h, H: Host> SlotInterp<'h, H> {
    /// Creates an interpreter with the given fuel budget.
    pub fn new(host: &'h mut H, fuel: u64) -> Self {
        SlotInterp { host, fuel }
    }

    #[inline]
    fn spend(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::new(
                "execution fuel exhausted (possible infinite loop)",
            ));
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Executes a lowered work body.
    ///
    /// # Errors
    ///
    /// Propagates any [`EvalError`] from the statements.
    pub fn exec_work(
        &mut self,
        store: &mut SlotStore<'_>,
        body: &[RStmt],
    ) -> Result<Flow, EvalError> {
        self.exec_stmts(store, body)
    }

    fn exec_stmts(
        &mut self,
        store: &mut SlotStore<'_>,
        stmts: &[RStmt],
    ) -> Result<Flow, EvalError> {
        for s in stmts {
            if self.exec_stmt(store, s)? == Flow::Return {
                return Ok(Flow::Return);
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, store: &mut SlotStore<'_>, stmt: &RStmt) -> Result<Flow, EvalError> {
        self.spend()?;
        match stmt {
            RStmt::Decl {
                slot,
                base,
                dims,
                init,
                ..
            } => {
                let cell = if dims.is_empty() {
                    Cell::Scalar(*base, Value::zero_of(*base))
                } else {
                    let mut sizes = Vec::with_capacity(dims.len());
                    for d in dims {
                        sizes.push(self.eval(store, d)?.as_index()?);
                    }
                    Cell::Array(ArrayVal::zeros(*base, sizes))
                };
                store.frame[*slot as usize] = cell;
                if let Some(e) = init {
                    let v = self.eval(store, e)?;
                    match &mut store.frame[*slot as usize] {
                        Cell::Scalar(ty, cur) => *cur = v.coerce_to(*ty)?,
                        Cell::Array(_) => {
                            return Err(EvalError::new("cannot assign a scalar to an array"))
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::Assign {
                target, op, value, ..
            } => {
                let rhs = self.eval(store, value)?;
                match op {
                    None => self.assign(store, target, rhs)?,
                    Some(op) => {
                        self.read_modify_write(store, target, *op, rhs)?;
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let c = self.eval(store, cond)?.as_bool()?;
                if c {
                    self.exec_stmts(store, then_blk)
                } else if let Some(e) = else_blk {
                    self.exec_stmts(store, e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            RStmt::While { cond, body, .. } => {
                loop {
                    self.spend()?;
                    if !self.eval(store, cond)?.as_bool()? {
                        break;
                    }
                    if self.exec_stmts(store, body)? == Flow::Return {
                        return Ok(Flow::Return);
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init {
                    if self.exec_stmt(store, i)? == Flow::Return {
                        return Ok(Flow::Return);
                    }
                }
                loop {
                    self.spend()?;
                    let go = match cond {
                        Some(c) => self.eval(store, c)?.as_bool()?,
                        None => true,
                    };
                    if !go {
                        break;
                    }
                    if self.exec_stmts(store, body)? == Flow::Return {
                        return Ok(Flow::Return);
                    }
                    if let Some(s) = step {
                        if self.exec_stmt(store, s)? == Flow::Return {
                            return Ok(Flow::Return);
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::Expr(e, _) => {
                self.eval(store, e)?;
                Ok(Flow::Normal)
            }
            RStmt::Return => Ok(Flow::Return),
        }
    }

    #[inline]
    fn read_var(&mut self, store: &mut SlotStore<'_>, slot: Slot) -> Result<Value, EvalError> {
        match store.cell_mut(slot) {
            Cell::Scalar(_, v) => Ok(*v),
            Cell::Array(_) => Err(EvalError::new(
                "variable is an array; index it to read an element",
            )),
        }
    }

    fn read_index(
        &mut self,
        store: &mut SlotStore<'_>,
        slot: Slot,
        idx_exprs: &[RExpr],
    ) -> Result<Value, EvalError> {
        let idx = self.eval_indices(store, idx_exprs)?;
        match store.cell_mut(slot) {
            Cell::Array(a) => a.get(idx.as_slice()),
            Cell::Scalar(..) => Err(EvalError::new("variable is a scalar, not an array")),
        }
    }

    fn assign(
        &mut self,
        store: &mut SlotStore<'_>,
        lv: &RLValue,
        v: Value,
    ) -> Result<(), EvalError> {
        match lv {
            RLValue::Var(slot) => match store.cell_mut(*slot) {
                Cell::Scalar(ty, cur) => {
                    *cur = v.coerce_to(*ty)?;
                    Ok(())
                }
                Cell::Array(_) => Err(EvalError::new("cannot assign a scalar to an array")),
            },
            RLValue::Index(slot, idx_exprs) => {
                let idx = self.eval_indices(store, idx_exprs)?;
                match store.cell_mut(*slot) {
                    Cell::Array(a) => a.set(idx.as_slice(), v),
                    Cell::Scalar(..) => Err(EvalError::new("variable is a scalar, not an array")),
                }
            }
        }
    }

    /// Read-modify-write of one location with a single index evaluation
    /// (the same single-evaluation semantics as
    /// [`crate::exec::Interp`]). Returns `(old, new)`.
    fn read_modify_write(
        &mut self,
        store: &mut SlotStore<'_>,
        target: &RLValue,
        op: BinOp,
        rhs: Value,
    ) -> Result<(Value, Value), EvalError> {
        match target {
            RLValue::Var(slot) => {
                let cur = self.read_var(store, *slot)?;
                self.count_binop(op, cur, rhs);
                let next = bin_op(op, cur, rhs)?;
                match store.cell_mut(*slot) {
                    Cell::Scalar(ty, cell) => *cell = next.coerce_to(*ty)?,
                    Cell::Array(_) => unreachable!("read_var rejects arrays"),
                }
                Ok((cur, next))
            }
            RLValue::Index(slot, idx_exprs) => {
                let idx = self.eval_indices(store, idx_exprs)?;
                let Cell::Array(a) = store.cell_mut(*slot) else {
                    return Err(EvalError::new("variable is a scalar, not an array"));
                };
                let cur = a.get(idx.as_slice())?;
                self.count_binop(op, cur, rhs);
                let next = bin_op(op, cur, rhs)?;
                a.set(idx.as_slice(), next)?;
                Ok((cur, next))
            }
        }
    }

    fn eval_indices(
        &mut self,
        store: &mut SlotStore<'_>,
        exprs: &[RExpr],
    ) -> Result<IndexBuf, EvalError> {
        let mut idx = IndexBuf::default();
        for e in exprs {
            idx.push(self.eval(store, e)?.as_index()?);
        }
        Ok(idx)
    }

    fn count_binop(&mut self, op: BinOp, a: Value, b: Value) {
        if !(a.is_float() || b.is_float()) {
            return; // integer/boolean ops are not FP instructions
        }
        match op {
            BinOp::Add | BinOp::Sub => self.host.count_add(),
            BinOp::Mul => self.host.count_mul(),
            BinOp::Div => self.host.count_div(),
            BinOp::Rem => self.host.count_other(), // fprem
            op if op.is_comparison() => self.host.count_other(), // fcom
            _ => {}
        }
    }

    /// Evaluates a resolved expression.
    ///
    /// # Errors
    ///
    /// Propagates any [`EvalError`].
    pub fn eval(&mut self, store: &mut SlotStore<'_>, expr: &RExpr) -> Result<Value, EvalError> {
        match expr {
            RExpr::Int(v) => Ok(Value::Int(*v)),
            RExpr::Float(v) => Ok(Value::Float(*v)),
            RExpr::Bool(v) => Ok(Value::Bool(*v)),
            RExpr::Var(slot) => self.read_var(store, *slot),
            RExpr::Index(slot, idx) => self.read_index(store, *slot, idx),
            RExpr::Unary(op, e) => {
                let v = self.eval(store, e)?;
                if *op == UnOp::Neg && v.is_float() {
                    self.host.count_other(); // fchs
                }
                un_op(*op, v)
            }
            RExpr::Binary(op, a, b) => {
                // Short-circuit logical operators.
                if *op == BinOp::And {
                    return Ok(Value::Bool(
                        self.eval(store, a)?.as_bool()? && self.eval(store, b)?.as_bool()?,
                    ));
                }
                if *op == BinOp::Or {
                    return Ok(Value::Bool(
                        self.eval(store, a)?.as_bool()? || self.eval(store, b)?.as_bool()?,
                    ));
                }
                let x = self.eval(store, a)?;
                let y = self.eval(store, b)?;
                self.count_binop(*op, x, y);
                bin_op(*op, x, y)
            }
            RExpr::Peek(i) => {
                let i = self.eval(store, i)?.as_index()?;
                Ok(Value::Float(self.host.peek(i)?))
            }
            RExpr::Pop => Ok(Value::Float(self.host.pop()?)),
            RExpr::Push(e) => {
                let v = self.eval(store, e)?.as_f64()?;
                self.host.push(v)?;
                // `push` has no value; Int(0) keeps it harmless in
                // expression statements.
                Ok(Value::Int(0))
            }
            RExpr::Math(f, args) => {
                // Arity was validated at lowering and never exceeds 2, so
                // argument evaluation needs no heap.
                let mut vals = [Value::Int(0); 2];
                for (slot, a) in vals.iter_mut().zip(args) {
                    *slot = self.eval(store, a)?;
                }
                let r = f.call(&vals[..args.len()])?;
                if r.is_float() {
                    self.host.count_other(); // transcendental FP instruction
                }
                Ok(r)
            }
            RExpr::Print { newline, arg } => {
                let v = self.eval(store, arg)?;
                self.host.print(v, *newline)?;
                Ok(Value::Int(0))
            }
            RExpr::PostIncDec { target, inc } => {
                let op = if *inc { BinOp::Add } else { BinOp::Sub };
                let (cur, _) = self.read_modify_write(store, target, op, Value::Int(1))?;
                Ok(cur)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlin_lang::ast::StreamKind;
    use streamlin_lang::parse;

    fn lowered_for(src: &str) -> (LoweredFilter, HashMap<String, Cell>) {
        let p = parse(src).unwrap();
        let StreamKind::Filter(f) = &p.decls[0].kind else {
            panic!("expected filter");
        };
        let mut state = HashMap::new();
        for field in &f.fields {
            state.insert(field.name.clone(), Cell::zero_of(field.ty.base, Vec::new()));
        }
        let work = WorkFn {
            peek: 0,
            pop: 0,
            push: 0,
            body: f.work.body.clone(),
        };
        (lower_filter(&state, &work, None).unwrap(), state)
    }

    /// Host used by the lowering unit tests.
    #[derive(Default)]
    struct TestHost {
        pushed: Vec<f64>,
    }

    impl Host for TestHost {
        fn peek(&mut self, _i: usize) -> Result<f64, EvalError> {
            Err(EvalError::new("no input"))
        }
        fn pop(&mut self) -> Result<f64, EvalError> {
            Err(EvalError::new("no input"))
        }
        fn push(&mut self, v: f64) -> Result<(), EvalError> {
            self.pushed.push(v);
            Ok(())
        }
        fn print(&mut self, v: Value, _nl: bool) -> Result<(), EvalError> {
            self.pushed.push(v.as_f64()?);
            Ok(())
        }
    }

    fn run(src: &str) -> Vec<f64> {
        let (lowered, state) = lowered_for(src);
        let mut globals: Vec<Cell> = lowered.globals.iter().map(|n| state[n].clone()).collect();
        let mut frame = vec![Cell::Scalar(DataType::Int, Value::Int(0)); lowered.frame_slots()];
        let mut host = TestHost::default();
        let mut interp = SlotInterp::new(&mut host, 1_000_000);
        let mut store = SlotStore {
            globals: &mut globals,
            frame: &mut frame,
        };
        interp.exec_work(&mut store, &lowered.work.body).unwrap();
        host.pushed
    }

    #[test]
    fn globals_are_sorted_and_resolved() {
        let (lowered, _) = lowered_for(
            "void->float filter F {
                float z; float a;
                work push 1 { push(a + z); }
            }",
        );
        assert_eq!(lowered.globals, vec!["a".to_string(), "z".to_string()]);
        // `a + z` resolves to Global(0) + Global(1).
        let RStmt::Expr(RExpr::Push(e), _) = &lowered.work.body[0] else {
            panic!("{:?}", lowered.work.body);
        };
        let RExpr::Binary(BinOp::Add, lhs, rhs) = &**e else {
            panic!()
        };
        assert_eq!(**lhs, RExpr::Var(Slot::Global(0)));
        assert_eq!(**rhs, RExpr::Var(Slot::Global(1)));
    }

    #[test]
    fn locals_shadow_globals_statically() {
        let (lowered, _) = lowered_for(
            "void->float filter F {
                float x;
                work push 2 {
                    push(x);
                    float x = 7;
                    push(x);
                }
            }",
        );
        let RStmt::Expr(RExpr::Push(first), _) = &lowered.work.body[0] else {
            panic!()
        };
        assert_eq!(**first, RExpr::Var(Slot::Global(0)));
        let RStmt::Expr(RExpr::Push(second), _) = &lowered.work.body[2] else {
            panic!()
        };
        assert_eq!(**second, RExpr::Var(Slot::Frame(0)));
    }

    #[test]
    fn inner_scopes_shadow_and_restore() {
        // Mirrors exec.rs's scoping_shadows_and_restores, through slots.
        let pushed = run("void->float filter F {
                work push 2 {
                    int x = 1;
                    for (int x = 10; x < 11; x++) { push(x); }
                    push(x);
                }
            }");
        assert_eq!(pushed, vec![10.0, 1.0]);
    }

    #[test]
    fn sibling_scopes_reuse_frame_slots() {
        let (lowered, _) = lowered_for(
            "void->float filter F {
                work push 2 {
                    if (true) { int a = 1; push(a); }
                    if (true) { int b = 2; push(b); }
                }
            }",
        );
        // Both branch locals occupy frame slot 0; the frame never grows
        // past one slot.
        assert_eq!(lowered.work.frame_slots, 1);
    }

    #[test]
    fn declaration_initializer_sees_the_new_zeroed_variable() {
        // `int x = x + 1` reads the freshly declared x (0), not an outer
        // binding — the AST interpreter's declare-then-assign order.
        let pushed = run("void->float filter F {
                work push 2 {
                    int x = 40;
                    if (true) {
                        int x = x + 1;
                        push(x);
                    }
                    push(x);
                }
            }");
        assert_eq!(pushed, vec![1.0, 40.0]);
    }

    #[test]
    fn undefined_variable_is_a_lowering_error() {
        let p = parse("void->float filter F { work push 1 { push(nope); } }").unwrap();
        let StreamKind::Filter(f) = &p.decls[0].kind else {
            panic!()
        };
        let work = WorkFn {
            peek: 0,
            pop: 0,
            push: 1,
            body: f.work.body.clone(),
        };
        let errs = lower_filter(&HashMap::new(), &work, None).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("nope"), "{errs:?}");
        assert_ne!(errs[0].span, Span::default(), "error carries a position");
    }

    #[test]
    fn unknown_function_is_a_lowering_error() {
        let p = parse("void->float filter F { work push 1 { push(frob(1)); } }").unwrap();
        let StreamKind::Filter(f) = &p.decls[0].kind else {
            panic!()
        };
        let work = WorkFn {
            peek: 0,
            pop: 0,
            push: 1,
            body: f.work.body.clone(),
        };
        let errs = lower_filter(&HashMap::new(), &work, None).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("frob"), "{errs:?}");
    }

    #[test]
    fn all_errors_reported_in_one_pass_with_spans() {
        let p = parse(
            "void->float filter F {
                work push 2 {
                    push(nope);
                    int ok = 1;
                    push(frob(ok));
                    push(alsonope);
                }
            }",
        )
        .unwrap();
        let StreamKind::Filter(f) = &p.decls[0].kind else {
            panic!()
        };
        let work = WorkFn {
            peek: 0,
            pop: 0,
            push: 2,
            body: f.work.body.clone(),
        };
        let errs = lower_filter(&HashMap::new(), &work, None).unwrap_err();
        let msgs: Vec<&str> = errs.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(errs.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("nope"));
        assert!(msgs[1].contains("frob"));
        assert!(msgs[2].contains("alsonope"));
        // Each error points at its own statement.
        assert!(errs[0].span.line < errs[1].span.line);
        assert!(errs[1].span.line < errs[2].span.line);
    }

    #[test]
    fn failed_declaration_does_not_cascade() {
        // `int x = frob();` fails, but a later use of `x` must not produce
        // a second, spurious `undefined variable` error.
        let p = parse(
            "void->float filter F {
                work push 1 {
                    int x = frob();
                    push(x);
                }
            }",
        )
        .unwrap();
        let StreamKind::Filter(f) = &p.decls[0].kind else {
            panic!()
        };
        let work = WorkFn {
            peek: 0,
            pop: 0,
            push: 1,
            body: f.work.body.clone(),
        };
        let errs = lower_filter(&HashMap::new(), &work, None).unwrap_err();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].message.contains("frob"));
    }

    #[test]
    fn statements_carry_their_source_spans() {
        let (lowered, _) = lowered_for(
            "void->float filter F {
                work push 1 {
                    int x = 1;
                    push(x);
                }
            }",
        );
        let spans: Vec<Span> = lowered.work.body.iter().map(|s| s.span()).collect();
        assert!(spans.iter().all(|s| *s != Span::default()));
        assert!(spans[0].line < spans[1].line);
    }

    #[test]
    fn loop_locals_redeclare_per_iteration() {
        let pushed = run("void->float filter F {
                work push 3 {
                    for (int i = 0; i < 3; i++) {
                        float s;
                        s = s + i;
                        push(s);
                    }
                }
            }");
        // `s` is re-zeroed by its declaration every iteration.
        assert_eq!(pushed, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn side_effecting_index_evaluated_once() {
        let pushed = run("void->float filter F {
                work push 3 {
                    float[2] a;
                    int i = 0;
                    a[i++] += 10;
                    push(a[0]);
                    push(a[1]);
                    push(i);
                }
            }");
        assert_eq!(pushed, vec![10.0, 0.0, 1.0]);
    }

    #[test]
    fn pi_is_folded_at_lowering() {
        let (lowered, _) = lowered_for("void->float filter F { work push 1 { push(pi); } }");
        let RStmt::Expr(RExpr::Push(e), _) = &lowered.work.body[0] else {
            panic!()
        };
        assert_eq!(**e, RExpr::Float(std::f64::consts::PI));
    }
}
