//! The elaborated hierarchical stream graph.
//!
//! This is the analogue of the StreamIt compiler's SIR (§4.4 of the paper):
//! every node is a concrete filter *instance* (parameters bound, `init`
//! executed, rates resolved) or one of the three containers. The linear
//! analyses of `streamlin-core` and the execution engine of
//! `streamlin-runtime` both walk this structure.

use std::collections::HashMap;
use std::rc::Rc;

use streamlin_lang::ast::{Block, DataType};

use crate::analyze::FilterFacts;
use crate::lower::LoweredFilter;
use crate::value::Cell;

/// Resolved I/O rates and body of one work phase.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkFn {
    /// Maximum peek index + 1 (always `>= pop`).
    pub peek: usize,
    /// Items popped per firing.
    pub pop: usize,
    /// Items pushed per firing.
    pub push: usize,
    /// The body.
    pub body: Block,
}

/// A fully elaborated filter instance.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterInst {
    /// Unique instance id within one elaboration.
    pub id: usize,
    /// Display name, `Decl(arg, …)`.
    pub name: String,
    /// The declaration this instance came from.
    pub decl_name: String,
    /// Input tape element type ([`DataType::Void`] for sources).
    pub input: DataType,
    /// Output tape element type ([`DataType::Void`] for sinks).
    pub output: DataType,
    /// Persistent state after `init` ran: field name → initial value.
    /// Stream parameters are included as (immutable by convention) cells so
    /// work bodies can refer to them.
    pub state: HashMap<String, Cell>,
    /// Names that are bound parameters (constants for the analysis).
    pub param_names: Vec<String>,
    /// Names that are fields (mutable state).
    pub field_names: Vec<String>,
    /// The steady-state work function.
    pub work: WorkFn,
    /// Optional first-firing work function.
    pub init_work: Option<WorkFn>,
    /// True if any work body prints (a side effect that must never be
    /// collapsed away — printing filters are treated as non-linear).
    pub prints: bool,
    /// The slot-resolved form of the work phases (see [`crate::lower`]):
    /// what the runtime interpreter actually executes. The AST bodies in
    /// [`Self::work`]/[`Self::init_work`] remain the input of the linear
    /// extraction analysis and the pretty-printer.
    pub lowered: LoweredFilter,
    /// What the abstract interpreter proved about this filter (state
    /// effect, rate/bounds certificates, lints — see [`crate::analyze`]).
    /// Execution paths consult this record instead of re-deriving effects
    /// from the syntax.
    pub facts: FilterFacts,
}

impl FilterInst {
    /// True if this filter is a pure source (pops nothing, peeks nothing).
    pub fn is_source(&self) -> bool {
        self.work.pop == 0 && self.work.peek == 0
    }

    /// True if this filter is a pure sink (pushes nothing).
    pub fn is_sink(&self) -> bool {
        self.work.push == 0
    }
}

/// How a splitter distributes data to splitjoin children (§3.3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Splitter {
    /// Every child sees every item.
    Duplicate,
    /// `weights[k]` consecutive items go to child `k`, cyclically.
    RoundRobin(Vec<usize>),
}

impl Splitter {
    /// Items consumed from the input per splitter cycle.
    pub fn items_per_cycle(&self) -> usize {
        match self {
            Splitter::Duplicate => 1,
            Splitter::RoundRobin(w) => w.iter().sum(),
        }
    }

    /// Items delivered to child `k` per splitter cycle.
    pub fn weight(&self, k: usize) -> usize {
        match self {
            Splitter::Duplicate => 1,
            Splitter::RoundRobin(w) => w[k],
        }
    }
}

/// A round-robin joiner with per-child weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Joiner {
    /// `weights[k]` items are taken from child `k` per joiner cycle.
    pub weights: Vec<usize>,
}

impl Joiner {
    /// Items pushed downstream per joiner cycle.
    pub fn items_per_cycle(&self) -> usize {
        self.weights.iter().sum()
    }
}

/// A hierarchical stream (paper Figure 2-1).
#[derive(Debug, Clone, PartialEq)]
pub enum Stream {
    /// A leaf filter.
    Filter(Rc<FilterInst>),
    /// Serial composition.
    Pipeline(Vec<Stream>),
    /// Parallel composition.
    SplitJoin {
        /// Input distribution.
        split: Splitter,
        /// Parallel children.
        children: Vec<Stream>,
        /// Output interleaving.
        join: Joiner,
    },
    /// A cycle with initial items on the feedback path.
    FeedbackLoop {
        /// Merges external input (weight 0) with feedback (weight 1).
        join: Joiner,
        /// Forward body.
        body: Box<Stream>,
        /// Feedback-path stream.
        loop_stream: Box<Stream>,
        /// Splits body output between downstream (0) and feedback (1).
        split: Splitter,
        /// Items preloaded on the feedback path.
        enqueue: Vec<f64>,
    },
}

impl Stream {
    /// A short structural description, for debugging and error messages.
    pub fn describe(&self) -> String {
        match self {
            Stream::Filter(f) => f.name.clone(),
            Stream::Pipeline(c) => format!("pipeline[{}]", c.len()),
            Stream::SplitJoin { children, .. } => format!("splitjoin[{}]", children.len()),
            Stream::FeedbackLoop { .. } => "feedbackloop".to_string(),
        }
    }

    /// Visits every filter instance in the hierarchy, depth-first.
    pub fn for_each_filter<'a>(&'a self, f: &mut impl FnMut(&'a Rc<FilterInst>)) {
        match self {
            Stream::Filter(inst) => f(inst),
            Stream::Pipeline(children) => {
                for c in children {
                    c.for_each_filter(f);
                }
            }
            Stream::SplitJoin { children, .. } => {
                for c in children {
                    c.for_each_filter(f);
                }
            }
            Stream::FeedbackLoop {
                body, loop_stream, ..
            } => {
                body.for_each_filter(f);
                loop_stream.for_each_filter(f);
            }
        }
    }

    /// Number of filter instances in the hierarchy.
    pub fn filter_count(&self) -> usize {
        let mut n = 0;
        self.for_each_filter(&mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_filter(id: usize, pop: usize, push: usize) -> Stream {
        Stream::Filter(Rc::new(FilterInst {
            id,
            name: format!("F{id}"),
            decl_name: "F".into(),
            input: DataType::Float,
            output: DataType::Float,
            state: HashMap::new(),
            param_names: vec![],
            field_names: vec![],
            work: WorkFn {
                peek: pop,
                pop,
                push,
                body: Block::default(),
            },
            init_work: None,
            prints: false,
            lowered: LoweredFilter::default(),
            facts: FilterFacts::default(),
        }))
    }

    #[test]
    fn splitter_arithmetic() {
        let d = Splitter::Duplicate;
        assert_eq!(d.items_per_cycle(), 1);
        assert_eq!(d.weight(5), 1);
        let rr = Splitter::RoundRobin(vec![2, 1]);
        assert_eq!(rr.items_per_cycle(), 3);
        assert_eq!(rr.weight(1), 1);
    }

    #[test]
    fn traversal_counts_filters() {
        let s = Stream::Pipeline(vec![
            dummy_filter(0, 0, 1),
            Stream::SplitJoin {
                split: Splitter::Duplicate,
                children: vec![dummy_filter(1, 1, 1), dummy_filter(2, 1, 1)],
                join: Joiner {
                    weights: vec![1, 1],
                },
            },
            dummy_filter(3, 1, 0),
        ]);
        assert_eq!(s.filter_count(), 4);
        assert_eq!(s.describe(), "pipeline[3]");
    }

    #[test]
    fn source_sink_classification() {
        let Stream::Filter(f) = dummy_filter(0, 0, 1) else {
            panic!()
        };
        assert!(f.is_source());
        assert!(!f.is_sink());
        let Stream::Filter(g) = dummy_filter(1, 1, 0) else {
            panic!()
        };
        assert!(g.is_sink());
    }
}
