//! A statement/expression interpreter over the dialect AST.
//!
//! This is the **constant-context** engine: elaboration runs container
//! bodies, filter `init` blocks and rate expressions through it under
//! [`PureHost`], which rejects tape operations — mirroring how the
//! StreamIt compiler resolves rates and weights at compile time (§2.1).
//! Its environment is name-based (`HashMap<String, Cell>` scopes) because
//! elaboration environments are genuinely dynamic.
//!
//! **Runtime execution** of work functions no longer goes through this
//! engine: `streamlin-runtime` executes the slot-resolved form produced by
//! [`crate::lower`], which shares this module's [`Host`] trait (tape
//! access, printing, and the DynamoRIO-substitute FLOP accounting;
//! integer index arithmetic is free, matching the paper's FLOP metric)
//! and performs byte-for-byte the same arithmetic — the differential
//! suite in `tests/interp_differential.rs` holds the two engines equal.

use std::collections::HashMap;

use streamlin_lang::ast::{BinOp, Block, Expr, LValue, Stmt, Type, UnOp};

use crate::value::{bin_op, is_math_fn, math_call, un_op, ArrayVal, Cell, EvalError, Value};

/// The environment-facing side of execution: tape access, printing, and
/// FLOP accounting. Counting hooks default to no-ops.
pub trait Host {
    /// `peek(i)`.
    fn peek(&mut self, i: usize) -> Result<f64, EvalError>;
    /// `pop()`.
    fn pop(&mut self) -> Result<f64, EvalError>;
    /// `push(v)`.
    fn push(&mut self, v: f64) -> Result<(), EvalError>;
    /// `print(v)` / `println(v)`.
    fn print(&mut self, v: Value, newline: bool) -> Result<(), EvalError>;
    /// A float add/sub was executed.
    fn count_add(&mut self) {}
    /// A float multiply was executed.
    fn count_mul(&mut self) {}
    /// A float divide was executed.
    fn count_div(&mut self) {}
    /// Another FP instruction (comparison, transcendental, negation).
    fn count_other(&mut self) {}
}

/// Host for constant contexts: all tape operations and printing fail.
#[derive(Debug, Clone, Copy, Default)]
pub struct PureHost;

impl Host for PureHost {
    fn peek(&mut self, _i: usize) -> Result<f64, EvalError> {
        Err(EvalError::new(
            "`peek` is not allowed in a constant context",
        ))
    }
    fn pop(&mut self) -> Result<f64, EvalError> {
        Err(EvalError::new("`pop` is not allowed in a constant context"))
    }
    fn push(&mut self, _v: f64) -> Result<(), EvalError> {
        Err(EvalError::new(
            "`push` is not allowed in a constant context",
        ))
    }
    fn print(&mut self, _v: Value, _nl: bool) -> Result<(), EvalError> {
        Err(EvalError::new(
            "printing is not allowed in a constant context",
        ))
    }
}

/// Lexically scoped storage: an outer map of persistent variables (fields
/// and stream parameters) plus a stack of local scopes.
#[derive(Debug)]
pub struct Env<'a> {
    globals: &'a mut HashMap<String, Cell>,
    scopes: Vec<HashMap<String, Cell>>,
}

impl<'a> Env<'a> {
    /// Creates an environment over persistent storage.
    pub fn new(globals: &'a mut HashMap<String, Cell>) -> Self {
        Env {
            globals,
            scopes: vec![HashMap::new()],
        }
    }

    /// Creates a *flat* environment: declarations go straight into the
    /// persistent map (used by container-body elaboration, where loop
    /// variables must stay visible to interleaved `add` statements).
    pub fn flat(globals: &'a mut HashMap<String, Cell>) -> Self {
        Env {
            globals,
            scopes: Vec::new(),
        }
    }

    fn push_scope(&mut self) {
        if !self.scopes.is_empty() {
            self.scopes.push(HashMap::new());
        }
    }

    fn pop_scope(&mut self) {
        if self.scopes.len() > 1 {
            self.scopes.pop();
        }
    }

    fn declare(&mut self, name: &str, cell: Cell) {
        match self.scopes.last_mut() {
            Some(scope) => {
                scope.insert(name.to_string(), cell);
            }
            None => {
                self.globals.insert(name.to_string(), cell);
            }
        }
    }

    fn lookup_mut(&mut self, name: &str) -> Result<&mut Cell, EvalError> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(c) = scope.get_mut(name) {
                return Ok(c);
            }
        }
        self.globals
            .get_mut(name)
            .ok_or_else(|| EvalError::new(format!("undefined variable `{name}`")))
    }
}

/// A small inline buffer for evaluated array indices. Benchmark arrays
/// are at most 2-D, so index evaluation never allocates; deeper shapes
/// spill to the heap. Shared with the slot-resolved interpreter in
/// [`crate::lower`].
#[derive(Debug, Default)]
pub(crate) struct IndexBuf {
    inline: [usize; 2],
    len: usize,
    spill: Vec<usize>,
}

impl IndexBuf {
    pub(crate) fn push(&mut self, i: usize) {
        if self.len < self.inline.len() {
            self.inline[self.len] = i;
        } else {
            if self.spill.is_empty() {
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(i);
        }
        self.len += 1;
    }

    pub(crate) fn as_slice(&self) -> &[usize] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

/// Whether a block finished normally or via `return`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Fell off the end.
    Normal,
    /// Hit a `return`.
    Return,
}

/// The interpreter. `fuel` bounds the number of executed statements so that
/// accidental infinite loops in user programs surface as errors rather than
/// hangs (the paper's analysis similarly gives up on unresolvable loops).
#[derive(Debug)]
pub struct Interp<'h, H: Host> {
    host: &'h mut H,
    fuel: u64,
}

/// Default fuel: generous enough for every benchmark's `init` (the largest
/// is the 4412-element Radar setup) while still bounding runaway loops.
pub const DEFAULT_FUEL: u64 = 200_000_000;

impl<'h, H: Host> Interp<'h, H> {
    /// Creates an interpreter with the given fuel budget.
    pub fn new(host: &'h mut H, fuel: u64) -> Self {
        Interp { host, fuel }
    }

    fn spend(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::new(
                "execution fuel exhausted (possible infinite loop)",
            ));
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Executes a block in a fresh scope.
    ///
    /// # Errors
    ///
    /// Propagates any [`EvalError`] from the statements.
    pub fn exec_block(&mut self, env: &mut Env<'_>, block: &Block) -> Result<Flow, EvalError> {
        env.push_scope();
        let r = self.exec_stmts(env, &block.stmts);
        env.pop_scope();
        r
    }

    fn exec_stmts(&mut self, env: &mut Env<'_>, stmts: &[Stmt]) -> Result<Flow, EvalError> {
        for s in stmts {
            if self.exec_stmt(env, s)? == Flow::Return {
                return Ok(Flow::Return);
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, env: &mut Env<'_>, stmt: &Stmt) -> Result<Flow, EvalError> {
        self.spend()?;
        match stmt {
            Stmt::Decl { ty, name, init } => {
                let cell = self.make_cell(env, ty)?;
                env.declare(name, cell);
                if let Some(e) = init {
                    let v = self.eval(env, e)?;
                    self.assign(env, &LValue::Var(name.clone()), v)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, op, value } => {
                let rhs = self.eval(env, value)?;
                match op {
                    None => self.assign(env, target, rhs)?,
                    Some(op) => {
                        self.read_modify_write(env, target, *op, rhs)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.eval(env, cond)?.as_bool()?;
                if c {
                    self.exec_block(env, then_blk)
                } else if let Some(e) = else_blk {
                    self.exec_block(env, e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                loop {
                    self.spend()?;
                    if !self.eval(env, cond)?.as_bool()? {
                        break;
                    }
                    if self.exec_block(env, body)? == Flow::Return {
                        return Ok(Flow::Return);
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                env.push_scope();
                let result = (|| {
                    if let Some(i) = init {
                        if self.exec_stmt(env, i)? == Flow::Return {
                            return Ok(Flow::Return);
                        }
                    }
                    loop {
                        self.spend()?;
                        let go = match cond {
                            Some(c) => self.eval(env, c)?.as_bool()?,
                            None => true,
                        };
                        if !go {
                            break;
                        }
                        if self.exec_block(env, body)? == Flow::Return {
                            return Ok(Flow::Return);
                        }
                        if let Some(s) = step {
                            if self.exec_stmt(env, s)? == Flow::Return {
                                return Ok(Flow::Return);
                            }
                        }
                    }
                    Ok(Flow::Normal)
                })();
                env.pop_scope();
                result
            }
            Stmt::Expr(e) => {
                self.eval(env, e)?;
                Ok(Flow::Normal)
            }
            Stmt::Return => Ok(Flow::Return),
            Stmt::Add(_) => Err(EvalError::new(
                "`add` is only allowed in stream container bodies",
            )),
        }
    }

    fn make_cell(&mut self, env: &mut Env<'_>, ty: &Type) -> Result<Cell, EvalError> {
        let mut dims = Vec::with_capacity(ty.dims.len());
        for d in &ty.dims {
            dims.push(self.eval(env, d)?.as_index()?);
        }
        Ok(if dims.is_empty() {
            Cell::Scalar(ty.base, Value::zero_of(ty.base))
        } else {
            Cell::Array(ArrayVal::zeros(ty.base, dims))
        })
    }

    /// Reads a plain variable, on borrowed parts — the
    /// interpreter's hottest read; no allocation, no AST cloning.
    fn read_var(&mut self, env: &mut Env<'_>, name: &str) -> Result<Value, EvalError> {
        match env.lookup_mut(name)? {
            Cell::Scalar(_, v) => Ok(*v),
            Cell::Array(_) => Err(EvalError::new(format!(
                "`{name}` is an array; index it to read an element"
            ))),
        }
    }

    /// Reads an array element, on borrowed parts.
    fn read_index(
        &mut self,
        env: &mut Env<'_>,
        name: &str,
        idx_exprs: &[Expr],
    ) -> Result<Value, EvalError> {
        let idx = self.eval_indices(env, idx_exprs)?;
        match env.lookup_mut(name)? {
            Cell::Array(a) => a.get(idx.as_slice()),
            Cell::Scalar(..) => Err(EvalError::new(format!(
                "`{name}` is a scalar, not an array"
            ))),
        }
    }

    /// Applies `op` between the current value of `target` and `rhs` and
    /// writes the result back, returning `(old, new)`. Index expressions
    /// are evaluated exactly **once**, so a side-effecting index like
    /// `a[i++] += x` bumps `i` a single time and reads and writes the same
    /// element (compound assignment and `++`/`--` are read-modify-write of
    /// one location, as in C).
    fn read_modify_write(
        &mut self,
        env: &mut Env<'_>,
        target: &LValue,
        op: BinOp,
        rhs: Value,
    ) -> Result<(Value, Value), EvalError> {
        match target {
            LValue::Var(name) => {
                let cur = self.read_var(env, name)?;
                self.count_binop(op, cur, rhs);
                let next = bin_op(op, cur, rhs)?;
                match env.lookup_mut(name)? {
                    Cell::Scalar(ty, slot) => *slot = next.coerce_to(*ty)?,
                    Cell::Array(_) => unreachable!("read_var rejects arrays"),
                }
                Ok((cur, next))
            }
            LValue::Index(name, idx_exprs) => {
                let idx = self.eval_indices(env, idx_exprs)?;
                let Cell::Array(a) = env.lookup_mut(name)? else {
                    return Err(EvalError::new(format!(
                        "`{name}` is a scalar, not an array"
                    )));
                };
                let cur = a.get(idx.as_slice())?;
                self.count_binop(op, cur, rhs);
                let next = bin_op(op, cur, rhs)?;
                a.set(idx.as_slice(), next)?;
                Ok((cur, next))
            }
        }
    }

    fn assign(&mut self, env: &mut Env<'_>, lv: &LValue, v: Value) -> Result<(), EvalError> {
        match lv {
            LValue::Var(name) => match env.lookup_mut(name)? {
                Cell::Scalar(ty, slot) => {
                    *slot = v.coerce_to(*ty)?;
                    Ok(())
                }
                Cell::Array(_) => Err(EvalError::new(format!(
                    "cannot assign a scalar to array `{name}`"
                ))),
            },
            LValue::Index(name, idx_exprs) => {
                let idx = self.eval_indices(env, idx_exprs)?;
                match env.lookup_mut(name)? {
                    Cell::Array(a) => a.set(idx.as_slice(), v),
                    Cell::Scalar(..) => Err(EvalError::new(format!(
                        "`{name}` is a scalar, not an array"
                    ))),
                }
            }
        }
    }

    fn eval_indices(&mut self, env: &mut Env<'_>, exprs: &[Expr]) -> Result<IndexBuf, EvalError> {
        let mut idx = IndexBuf::default();
        for e in exprs {
            idx.push(self.eval(env, e)?.as_index()?);
        }
        Ok(idx)
    }

    fn count_binop(&mut self, op: BinOp, a: Value, b: Value) {
        if !(a.is_float() || b.is_float()) {
            return; // integer/boolean ops are not FP instructions
        }
        match op {
            BinOp::Add | BinOp::Sub => self.host.count_add(),
            BinOp::Mul => self.host.count_mul(),
            BinOp::Div => self.host.count_div(),
            BinOp::Rem => self.host.count_other(), // fprem
            op if op.is_comparison() => self.host.count_other(), // fcom
            _ => {}
        }
    }

    /// Evaluates an expression.
    ///
    /// # Errors
    ///
    /// Propagates any [`EvalError`].
    pub fn eval(&mut self, env: &mut Env<'_>, expr: &Expr) -> Result<Value, EvalError> {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Bool(v) => Ok(Value::Bool(*v)),
            Expr::Pi => Ok(Value::Float(std::f64::consts::PI)),
            Expr::Var(name) => self.read_var(env, name),
            Expr::Index(name, idx) => self.read_index(env, name, idx),
            Expr::Unary(op, e) => {
                let v = self.eval(env, e)?;
                if *op == UnOp::Neg && v.is_float() {
                    self.host.count_other(); // fchs
                }
                un_op(*op, v)
            }
            Expr::Binary(op, a, b) => {
                // Short-circuit logical operators.
                if *op == BinOp::And {
                    return Ok(Value::Bool(
                        self.eval(env, a)?.as_bool()? && self.eval(env, b)?.as_bool()?,
                    ));
                }
                if *op == BinOp::Or {
                    return Ok(Value::Bool(
                        self.eval(env, a)?.as_bool()? || self.eval(env, b)?.as_bool()?,
                    ));
                }
                let x = self.eval(env, a)?;
                let y = self.eval(env, b)?;
                self.count_binop(*op, x, y);
                bin_op(*op, x, y)
            }
            Expr::Peek(i) => {
                let i = self.eval(env, i)?.as_index()?;
                Ok(Value::Float(self.host.peek(i)?))
            }
            Expr::Pop => Ok(Value::Float(self.host.pop()?)),
            Expr::Push(e) => {
                let v = self.eval(env, e)?.as_f64()?;
                self.host.push(v)?;
                // `push` has no value; returning Int(0) keeps it harmless in
                // expression statements.
                Ok(Value::Int(0))
            }
            Expr::Call(name, args) => {
                if name == "print" || name == "println" {
                    if args.len() != 1 {
                        return Err(EvalError::new(format!("{name} expects 1 argument")));
                    }
                    let v = self.eval(env, &args[0])?;
                    self.host.print(v, name == "println")?;
                    return Ok(Value::Int(0));
                }
                if !is_math_fn(name) {
                    return Err(EvalError::new(format!("unknown function `{name}`")));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(env, a)?);
                }
                let r = math_call(name, &vals)?;
                if r.is_float() {
                    self.host.count_other(); // transcendental FP instruction
                }
                Ok(r)
            }
            Expr::PostIncDec { target, inc } => {
                let op = if *inc { BinOp::Add } else { BinOp::Sub };
                let (cur, _) = self.read_modify_write(env, target, op, Value::Int(1))?;
                Ok(cur)
            }
        }
    }
}

/// Convenience: evaluates a single expression in a constant context over
/// the given persistent variables.
///
/// # Errors
///
/// Fails if the expression uses tape operations, printing, or undefined
/// names.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use streamlin_graph::exec::const_eval_expr;
/// use streamlin_graph::value::Value;
/// use streamlin_lang::ast::{BinOp, Expr};
///
/// let mut globals = HashMap::new();
/// let e = Expr::Binary(BinOp::Mul, Box::new(Expr::Int(6)), Box::new(Expr::Int(7)));
/// assert_eq!(const_eval_expr(&mut globals, &e).unwrap(), Value::Int(42));
/// ```
pub fn const_eval_expr(
    globals: &mut HashMap<String, Cell>,
    expr: &Expr,
) -> Result<Value, EvalError> {
    let mut host = PureHost;
    let mut interp = Interp::new(&mut host, DEFAULT_FUEL);
    let mut env = Env::new(globals);
    interp.eval(&mut env, expr)
}

/// Convenience: executes a block in a constant context (used for `init`).
///
/// # Errors
///
/// Fails if the block uses tape operations, printing, or undefined names.
pub fn const_exec_block(
    globals: &mut HashMap<String, Cell>,
    block: &Block,
) -> Result<(), EvalError> {
    let mut host = PureHost;
    let mut interp = Interp::new(&mut host, DEFAULT_FUEL);
    let mut env = Env::new(globals);
    interp.exec_block(&mut env, block)?;
    Ok(())
}

/// Executes one *simple* statement (declaration, assignment, expression) in
/// flat constant mode: declarations land directly in `globals`. Used by
/// container-body elaboration for statements interleaved with `add`s.
///
/// # Errors
///
/// Fails on tape operations, printing, `add`, or undefined names.
pub fn const_exec_stmt_flat(
    globals: &mut HashMap<String, Cell>,
    stmt: &Stmt,
) -> Result<(), EvalError> {
    let mut host = PureHost;
    let mut interp = Interp::new(&mut host, DEFAULT_FUEL);
    let mut env = Env::flat(globals);
    interp.exec_stmt(&mut env, stmt)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlin_lang::ast::StreamKind;
    use streamlin_lang::parse;

    /// Test host that exposes an input tape and records pushes/prints.
    #[derive(Default)]
    struct VecHost {
        input: Vec<f64>,
        cursor: usize,
        pushed: Vec<f64>,
        printed: Vec<f64>,
        adds: u64,
        muls: u64,
        others: u64,
    }

    impl Host for VecHost {
        fn peek(&mut self, i: usize) -> Result<f64, EvalError> {
            self.input
                .get(self.cursor + i)
                .copied()
                .ok_or_else(|| EvalError::new("peek past end of test input"))
        }
        fn pop(&mut self) -> Result<f64, EvalError> {
            let v = self.peek(0)?;
            self.cursor += 1;
            Ok(v)
        }
        fn push(&mut self, v: f64) -> Result<(), EvalError> {
            self.pushed.push(v);
            Ok(())
        }
        fn print(&mut self, v: Value, _nl: bool) -> Result<(), EvalError> {
            self.printed.push(v.as_f64()?);
            Ok(())
        }
        fn count_add(&mut self) {
            self.adds += 1;
        }
        fn count_mul(&mut self) {
            self.muls += 1;
        }
        fn count_other(&mut self) {
            self.others += 1;
        }
    }

    fn work_block(src: &str) -> Block {
        let p = parse(src).unwrap();
        let StreamKind::Filter(f) = &p.decls[0].kind else {
            panic!("expected filter");
        };
        f.work.body.clone()
    }

    fn run_work(src: &str, input: Vec<f64>) -> VecHost {
        let body = work_block(src);
        let mut host = VecHost {
            input,
            ..VecHost::default()
        };
        let mut globals = HashMap::new();
        let mut interp = Interp::new(&mut host, 1_000_000);
        let mut env = Env::new(&mut globals);
        interp.exec_block(&mut env, &body).unwrap();
        host
    }

    #[test]
    fn fir_work_computes_weighted_sum() {
        let host = run_work(
            "float->float filter F {
                work push 1 pop 1 peek 3 {
                    float sum = 0;
                    for (int i = 0; i < 3; i++)
                        sum += (i + 1) * peek(i);
                    push(sum);
                    pop();
                }
            }",
            vec![1.0, 10.0, 100.0],
        );
        assert_eq!(host.pushed, vec![321.0]);
        assert_eq!(host.cursor, 1);
        // three multiply-adds on floats
        assert_eq!(host.muls, 3);
        assert_eq!(host.adds, 3);
    }

    #[test]
    fn integer_arithmetic_is_not_counted() {
        let host = run_work(
            "float->float filter F {
                work push 1 pop 1 {
                    int a = 2 * 21 + 7 % 3;
                    push(pop());
                    if (a > 0) { }
                }
            }",
            vec![5.0],
        );
        assert_eq!(host.muls, 0);
        assert_eq!(host.adds, 0);
        assert_eq!(host.others, 0);
    }

    #[test]
    fn post_increment_yields_old_value() {
        let host = run_work(
            "void->float filter F {
                work push 2 {
                    float x = 5;
                    push(x++);
                    push(x);
                }
            }",
            vec![],
        );
        assert_eq!(host.pushed, vec![5.0, 6.0]);
    }

    #[test]
    fn fields_persist_in_globals() {
        let body = work_block("void->float filter F { float x; work push 1 { push(x++); } }");
        let mut host = VecHost::default();
        let mut globals = HashMap::new();
        globals.insert(
            "x".to_string(),
            Cell::Scalar(streamlin_lang::ast::DataType::Float, Value::Float(0.0)),
        );
        let mut interp = Interp::new(&mut host, 10_000);
        for _ in 0..3 {
            let mut env = Env::new(&mut globals);
            interp.exec_block(&mut env, &body).unwrap();
        }
        assert_eq!(host.pushed, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn while_and_if_control_flow() {
        let host = run_work(
            "float->float filter F {
                work push 1 pop 1 {
                    int i = 0;
                    int acc = 0;
                    while (i < 10) {
                        if (i % 2 == 0) { acc = acc + i; }
                        i++;
                    }
                    push(acc);
                    pop();
                }
            }",
            vec![0.0],
        );
        assert_eq!(host.pushed, vec![20.0]); // 0+2+4+6+8
    }

    #[test]
    fn return_exits_early() {
        let host = run_work(
            "float->float filter F {
                work push 1 pop 1 {
                    push(1);
                    pop();
                    return;
                    push(2);
                }
            }",
            vec![0.0],
        );
        assert_eq!(host.pushed, vec![1.0]);
    }

    #[test]
    fn scoping_shadows_and_restores() {
        let host = run_work(
            "float->float filter F {
                work push 2 pop 1 {
                    int x = 1;
                    for (int x = 10; x < 11; x++) { push(x); }
                    push(x);
                    pop();
                }
            }",
            vec![0.0],
        );
        assert_eq!(host.pushed, vec![10.0, 1.0]);
    }

    #[test]
    fn side_effecting_index_is_evaluated_once_in_compound_assign() {
        // `a[i++] += 10` must bump `i` exactly once and read/write the
        // same element (a regression: the index used to be evaluated for
        // the read and again for the write).
        let host = run_work(
            "void->float filter F {
                work push 3 {
                    float[2] a;
                    a[0] = 1; a[1] = 2;
                    int i = 0;
                    a[i++] += 10;
                    push(a[0]);
                    push(a[1]);
                    push(i);
                }
            }",
            vec![],
        );
        assert_eq!(host.pushed, vec![11.0, 2.0, 1.0]);
    }

    #[test]
    fn side_effecting_index_is_evaluated_once_in_post_inc() {
        // `a[i++]++` must increment a[0] (old i), not a[1], and leave i=1.
        let host = run_work(
            "void->float filter F {
                work push 3 {
                    float[2] a;
                    int i = 0;
                    a[i++]++;
                    push(a[0]);
                    push(a[1]);
                    push(i);
                }
            }",
            vec![],
        );
        assert_eq!(host.pushed, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let body = work_block("float->float filter F { work push 1 pop 1 { while (true) { } } }");
        let mut host = VecHost::default();
        let mut globals = HashMap::new();
        let mut interp = Interp::new(&mut host, 1000);
        let mut env = Env::new(&mut globals);
        let err = interp.exec_block(&mut env, &body).unwrap_err();
        assert!(err.message.contains("fuel"));
    }

    #[test]
    fn const_context_rejects_tape_ops() {
        let mut globals = HashMap::new();
        let err = const_eval_expr(&mut globals, &Expr::Pop).unwrap_err();
        assert!(err.message.contains("constant context"));
    }

    #[test]
    fn const_exec_block_initializes_arrays() {
        let p = parse(
            "float->float filter F(int N) {
                float[4] h;
                init {
                    for (int i = 0; i < 4; i++) h[i] = i * 0.5;
                }
                work push 1 pop 1 { push(pop()); }
            }",
        )
        .unwrap();
        let StreamKind::Filter(f) = &p.decls[0].kind else {
            panic!()
        };
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            Cell::Array(ArrayVal::zeros(
                streamlin_lang::ast::DataType::Float,
                vec![4],
            )),
        );
        const_exec_block(&mut globals, f.init.as_ref().unwrap()).unwrap();
        let Cell::Array(a) = &globals["h"] else {
            panic!()
        };
        assert_eq!(a.get(&[3]).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn math_calls_count_as_other() {
        let host = run_work(
            "float->float filter F {
                work push 1 pop 1 { push(sin(pop()) + sqrt(4.0)); }
            }",
            vec![0.5],
        );
        assert_eq!(host.others, 2);
        assert_eq!(host.adds, 1);
    }

    #[test]
    fn println_captures_output() {
        let host = run_work(
            "float->void filter F { work pop 1 { println(pop()); } }",
            vec![7.5],
        );
        assert_eq!(host.printed, vec![7.5]);
    }
}
