//! Elaboration: from parsed declarations to a concrete stream graph.
//!
//! StreamIt resolves its stream hierarchy at compile time: container bodies
//! (including `for` loops that `add` children, as in the FilterBank
//! benchmark) run under constant evaluation, stream parameters are bound,
//! filter `init` blocks execute to produce field values (the FIR weight
//! tables the linear analysis later treats as constants), and I/O rates are
//! resolved to integers (§2.1: "these rates must be resolvable at compile
//! time"). This module performs all of that, producing the [`Stream`] IR.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use streamlin_lang::ast::{
    Block, Expr, LValue, Program, Stmt, StreamDecl, StreamKind, StreamRef, WorkDecl,
};

use crate::exec::{const_eval_expr, const_exec_block, const_exec_stmt_flat};
use crate::ir::{FilterInst, Joiner, Splitter, Stream, WorkFn};
use crate::value::{Cell, EvalError, Value};

/// An elaboration error, with the stream-instantiation context in which it
/// occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct ElabError {
    /// Explanation of the problem.
    pub message: String,
    /// Instantiation stack, outermost first.
    pub context: Vec<String>,
}

impl ElabError {
    fn new(message: impl Into<String>) -> Self {
        ElabError {
            message: message.into(),
            context: Vec::new(),
        }
    }

    fn in_context(mut self, name: &str) -> Self {
        self.context.insert(0, name.to_string());
        self
    }
}

impl std::fmt::Display for ElabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.context.is_empty() {
            write!(f, "elaboration error: {}", self.message)
        } else {
            write!(
                f,
                "elaboration error in {}: {}",
                self.context.join(" -> "),
                self.message
            )
        }
    }
}

impl std::error::Error for ElabError {}

impl From<EvalError> for ElabError {
    fn from(e: EvalError) -> Self {
        ElabError::new(e.message)
    }
}

/// Maximum stream-nesting depth, guarding against unbounded recursion in
/// (erroneous) self-referential declarations.
const MAX_DEPTH: usize = 64;

/// Elaborates the program's top-level stream (the last `void->void`
/// declaration).
///
/// # Errors
///
/// Fails if there is no top-level stream or any instantiation fails.
///
/// # Examples
///
/// ```
/// let p = streamlin_lang::parse(
///     "void->void pipeline Main { add S(); add K(); }
///      void->float filter S { work push 1 { push(1.0); } }
///      float->void filter K { work pop 1 { println(pop()); } }",
/// )
/// .unwrap();
/// let g = streamlin_graph::elaborate(&p).unwrap();
/// assert_eq!(g.filter_count(), 2);
/// ```
pub fn elaborate(program: &Program) -> Result<Stream, ElabError> {
    let top = program
        .top_level()
        .ok_or_else(|| ElabError::new("program has no void->void top-level stream"))?;
    elaborate_decl(program, top, &[])
}

/// Elaborates a named stream declaration with the given argument values.
///
/// # Errors
///
/// Fails if the declaration is missing or instantiation fails.
pub fn elaborate_named(program: &Program, name: &str, args: &[Value]) -> Result<Stream, ElabError> {
    let decl = program
        .find(name)
        .ok_or_else(|| ElabError::new(format!("no stream declaration named `{name}`")))?;
    elaborate_decl(program, decl, args)
}

fn elaborate_decl(
    program: &Program,
    decl: &StreamDecl,
    args: &[Value],
) -> Result<Stream, ElabError> {
    let mut elab = Elaborator {
        program,
        next_id: 0,
        depth: 0,
    };
    elab.instantiate(decl, args, None)
}

struct Elaborator<'a> {
    program: &'a Program,
    next_id: usize,
    depth: usize,
}

impl<'a> Elaborator<'a> {
    fn instantiate(
        &mut self,
        decl: &StreamDecl,
        args: &[Value],
        captured: Option<&HashMap<String, Cell>>,
    ) -> Result<Stream, ElabError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(ElabError::new(format!(
                "stream nesting deeper than {MAX_DEPTH} (recursive declaration?)"
            )));
        }
        let result = self.instantiate_inner(decl, args, captured);
        self.depth -= 1;
        result.map_err(|e| e.in_context(&decl.name))
    }

    fn instantiate_inner(
        &mut self,
        decl: &StreamDecl,
        args: &[Value],
        captured: Option<&HashMap<String, Cell>>,
    ) -> Result<Stream, ElabError> {
        // Seed the environment with captured variables (anonymous streams
        // close over their container's constants), then bind parameters.
        let mut env: HashMap<String, Cell> = captured.cloned().unwrap_or_default();
        if args.len() != decl.params.len() {
            return Err(ElabError::new(format!(
                "`{}` expects {} arguments, got {}",
                decl.name,
                decl.params.len(),
                args.len()
            )));
        }
        for (p, a) in decl.params.iter().zip(args) {
            if !p.ty.dims.is_empty() {
                return Err(ElabError::new(format!(
                    "array-valued stream parameter `{}` is not supported; pass scalars and \
                     rebuild the table in `init`",
                    p.name
                )));
            }
            let v = a.coerce_to(p.ty.base)?;
            env.insert(p.name.clone(), Cell::Scalar(p.ty.base, v));
        }

        match &decl.kind {
            StreamKind::Filter(f) => self.instantiate_filter(decl, f, env, args),
            StreamKind::Pipeline(body) => {
                let children = self.run_container_body(body, &mut env)?;
                if children.is_empty() {
                    return Err(ElabError::new("pipeline has no children"));
                }
                Ok(Stream::Pipeline(children))
            }
            StreamKind::SplitJoin(sj) => {
                let children = self.run_container_body(&sj.body, &mut env)?;
                if children.is_empty() {
                    return Err(ElabError::new("splitjoin has no children"));
                }
                let split = self.eval_splitter(&sj.split, &mut env, children.len())?;
                let streamlin_lang::ast::JoinerAst::RoundRobin(w) = &sj.join;
                let join = Joiner {
                    weights: self.eval_weights(w, &mut env, children.len())?,
                };
                Ok(Stream::SplitJoin {
                    split,
                    children,
                    join,
                })
            }
            StreamKind::FeedbackLoop(fb) => {
                let body = self.elaborate_ref(&fb.body, &mut env)?;
                let loop_stream = self.elaborate_ref(&fb.loop_stream, &mut env)?;
                let streamlin_lang::ast::JoinerAst::RoundRobin(jw) = &fb.join;
                let join = Joiner {
                    weights: self.eval_weights(jw, &mut env, 2)?,
                };
                let split = self.eval_splitter(&fb.split, &mut env, 2)?;
                if matches!(split, Splitter::Duplicate) {
                    // duplicate is fine for feedback splitters
                } else if let Splitter::RoundRobin(w) = &split {
                    if w.len() != 2 {
                        return Err(ElabError::new("feedbackloop splitter must have 2 weights"));
                    }
                }
                if join.weights.len() != 2 {
                    return Err(ElabError::new("feedbackloop joiner must have 2 weights"));
                }
                let mut enqueue = Vec::with_capacity(fb.enqueue.len());
                for e in &fb.enqueue {
                    enqueue.push(const_eval_expr(&mut env, e)?.as_f64()?);
                }
                Ok(Stream::FeedbackLoop {
                    join,
                    body: Box::new(body),
                    loop_stream: Box::new(loop_stream),
                    split,
                    enqueue,
                })
            }
        }
    }

    fn instantiate_filter(
        &mut self,
        decl: &StreamDecl,
        f: &streamlin_lang::ast::FilterDecl,
        mut env: HashMap<String, Cell>,
        args: &[Value],
    ) -> Result<Stream, ElabError> {
        let param_names: Vec<String> = env.keys().cloned().collect();

        // Field declarations (dims may reference parameters), then `init`.
        let mut field_names = Vec::with_capacity(f.fields.len());
        for field in &f.fields {
            if env.contains_key(&field.name) {
                return Err(ElabError::new(format!(
                    "field `{}` shadows a parameter or captured variable",
                    field.name
                )));
            }
            let mut dims = Vec::with_capacity(field.ty.dims.len());
            for d in &field.ty.dims {
                dims.push(const_eval_expr(&mut env, d)?.as_index()?);
            }
            let mut cell = Cell::zero_of(field.ty.base, dims);
            if let Some(init) = &field.init {
                let v = const_eval_expr(&mut env, init)?;
                match &mut cell {
                    Cell::Scalar(ty, slot) => *slot = v.coerce_to(*ty)?,
                    Cell::Array(_) => {
                        return Err(ElabError::new(format!(
                            "array field `{}` cannot have a scalar initializer",
                            field.name
                        )))
                    }
                }
            }
            field_names.push(field.name.clone());
            env.insert(field.name.clone(), cell);
        }
        if let Some(init) = &f.init {
            const_exec_block(&mut env, init)
                .map_err(|e| ElabError::new(format!("while running `init`: {}", e.message)))?;
        }

        let work = self.resolve_work(&f.work, &mut env)?;
        let init_work = f
            .init_work
            .as_ref()
            .map(|w| self.resolve_work(w, &mut env))
            .transpose()?;

        // Slot-resolve the work phases against the now-complete state:
        // the runtime executes this form, and name errors surface here at
        // elaboration instead of on the Nth firing — all of them in one
        // pass, each with its source position.
        let lowered =
            crate::lower::lower_filter(&env, &work, init_work.as_ref()).map_err(|errs| {
                let msgs: Vec<String> = errs
                    .iter()
                    .map(|e| format!("at {}: {}", e.span, e.message))
                    .collect();
                ElabError::new(format!("in a work function: {}", msgs.join("; ")))
            })?;

        // Run the abstract interpreter (see `crate::analyze`): state
        // effect, rate/bounds certification, lints. Provable rate or
        // bounds violations fail elaboration here, with spans, instead of
        // surfacing as runtime errors on the Nth firing.
        let mut facts = crate::analyze::analyze_filter(
            &env,
            &lowered,
            &work,
            init_work.as_ref(),
            f.work.span,
            f.init_work.as_ref().map(|w| w.span).unwrap_or_default(),
        );
        if !facts.errors.is_empty() {
            let msgs: Vec<String> = facts
                .errors
                .iter()
                .map(|e| format!("at {}: {}", e.span, e.message))
                .collect();
            return Err(ElabError::new(format!(
                "in a work function: {}",
                msgs.join("; ")
            )));
        }
        facts.lints.extend(unused_decl_lints(decl, f));

        let prints = block_prints(&f.work.body)
            || f.init_work.as_ref().is_some_and(|w| block_prints(&w.body));

        let id = self.next_id;
        self.next_id += 1;
        let name = if args.is_empty() {
            decl.name.clone()
        } else {
            let rendered: Vec<String> = args.iter().map(|v| v.to_string()).collect();
            format!("{}({})", decl.name, rendered.join(", "))
        };
        Ok(Stream::Filter(Rc::new(FilterInst {
            id,
            name,
            decl_name: decl.name.clone(),
            input: decl.input,
            output: decl.output,
            state: env,
            param_names,
            field_names,
            work,
            init_work,
            prints,
            lowered,
            facts,
        })))
    }

    fn resolve_work(
        &mut self,
        w: &WorkDecl,
        env: &mut HashMap<String, Cell>,
    ) -> Result<WorkFn, ElabError> {
        let eval_rate =
            |env: &mut HashMap<String, Cell>, e: &Option<Expr>| -> Result<usize, ElabError> {
                match e {
                    None => Ok(0),
                    Some(e) => Ok(const_eval_expr(env, e)?.as_index()?),
                }
            };
        let push = eval_rate(env, &w.push)?;
        let pop = eval_rate(env, &w.pop)?;
        let peek = match &w.peek {
            None => pop,
            Some(e) => const_eval_expr(env, e)?.as_index()?,
        };
        Ok(WorkFn {
            peek: peek.max(pop),
            pop,
            push,
            body: w.body.clone(),
        })
    }

    /// Runs a container body, collecting `add`ed children. Control flow is
    /// interpreted here (so `add` inside loops works); simple statements are
    /// delegated to the constant evaluator in flat mode.
    fn run_container_body(
        &mut self,
        body: &Block,
        env: &mut HashMap<String, Cell>,
    ) -> Result<Vec<Stream>, ElabError> {
        let mut children = Vec::new();
        self.run_stmts(&body.stmts, env, &mut children)?;
        Ok(children)
    }

    fn run_stmts(
        &mut self,
        stmts: &[Stmt],
        env: &mut HashMap<String, Cell>,
        children: &mut Vec<Stream>,
    ) -> Result<(), ElabError> {
        for stmt in stmts {
            self.run_stmt(stmt, env, children)?;
        }
        Ok(())
    }

    fn run_stmt(
        &mut self,
        stmt: &Stmt,
        env: &mut HashMap<String, Cell>,
        children: &mut Vec<Stream>,
    ) -> Result<(), ElabError> {
        match stmt {
            Stmt::Add(r) => {
                let child = self.elaborate_ref(r, env)?;
                children.push(child);
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                if const_eval_expr(env, cond)?.as_bool()? {
                    self.run_stmts(&then_blk.stmts, env, children)
                } else if let Some(e) = else_blk {
                    self.run_stmts(&e.stmts, env, children)
                } else {
                    Ok(())
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.run_stmt(i, env, children)?;
                }
                let mut fuel: u64 = 1_000_000;
                loop {
                    let go = match cond {
                        Some(c) => const_eval_expr(env, c)?.as_bool()?,
                        None => true,
                    };
                    if !go {
                        break;
                    }
                    self.run_stmts(&body.stmts, env, children)?;
                    if let Some(s) = step {
                        self.run_stmt(s, env, children)?;
                    }
                    fuel -= 1;
                    if fuel == 0 {
                        return Err(ElabError::new("container loop did not terminate"));
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let mut fuel: u64 = 1_000_000;
                while const_eval_expr(env, cond)?.as_bool()? {
                    self.run_stmts(&body.stmts, env, children)?;
                    fuel -= 1;
                    if fuel == 0 {
                        return Err(ElabError::new("container loop did not terminate"));
                    }
                }
                Ok(())
            }
            Stmt::Return => Ok(()),
            simple => const_exec_stmt_flat(env, simple).map_err(ElabError::from),
        }
    }

    fn elaborate_ref(
        &mut self,
        r: &StreamRef,
        env: &mut HashMap<String, Cell>,
    ) -> Result<Stream, ElabError> {
        match r {
            StreamRef::Named { name, args } => {
                let decl = self.program.find(name).ok_or_else(|| {
                    ElabError::new(format!("no stream declaration named `{name}`"))
                })?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(const_eval_expr(env, a)?);
                }
                self.instantiate(decl, &vals, None)
            }
            StreamRef::Anonymous(decl) => {
                let captured = env.clone();
                self.instantiate(decl, &[], Some(&captured))
            }
        }
    }

    fn eval_splitter(
        &mut self,
        s: &streamlin_lang::ast::SplitterAst,
        env: &mut HashMap<String, Cell>,
        n_children: usize,
    ) -> Result<Splitter, ElabError> {
        Ok(match s {
            streamlin_lang::ast::SplitterAst::Duplicate => Splitter::Duplicate,
            streamlin_lang::ast::SplitterAst::RoundRobin(w) => {
                Splitter::RoundRobin(self.eval_weights(w, env, n_children)?)
            }
        })
    }

    fn eval_weights(
        &mut self,
        w: &[Expr],
        env: &mut HashMap<String, Cell>,
        n_children: usize,
    ) -> Result<Vec<usize>, ElabError> {
        if w.is_empty() {
            return Ok(vec![1; n_children]);
        }
        let mut weights = Vec::with_capacity(w.len());
        for e in w {
            let v = const_eval_expr(env, e)?.as_index()?;
            weights.push(v);
        }
        // StreamIt's `roundrobin(k)` broadcasts a single weight to every
        // child.
        if weights.len() == 1 && n_children > 1 {
            return Ok(vec![weights[0]; n_children]);
        }
        if weights.len() != n_children {
            return Err(ElabError::new(format!(
                "round-robin has {} weights but {} children",
                weights.len(),
                n_children
            )));
        }
        if weights.iter().all(|&x| x == 0) {
            return Err(ElabError::new("round-robin weights are all zero"));
        }
        Ok(weights)
    }
}

/// True if the block contains a `print`/`println` call anywhere.
fn block_prints(block: &Block) -> bool {
    block.stmts.iter().any(stmt_prints)
}

fn stmt_prints(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Decl { init, .. } => init.as_ref().is_some_and(expr_prints),
        Stmt::Assign { value, .. } => expr_prints(value),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            expr_prints(cond)
                || block_prints(then_blk)
                || else_blk.as_ref().is_some_and(block_prints)
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            init.as_deref().is_some_and(stmt_prints)
                || cond.as_ref().is_some_and(expr_prints)
                || step.as_deref().is_some_and(stmt_prints)
                || block_prints(body)
        }
        Stmt::While { cond, body } => expr_prints(cond) || block_prints(body),
        Stmt::Expr(e) => expr_prints(e),
        Stmt::Return | Stmt::Add(_) => false,
    }
}

fn expr_prints(e: &Expr) -> bool {
    match e {
        Expr::Call(name, args) => {
            name == "print" || name == "println" || args.iter().any(expr_prints)
        }
        Expr::Unary(_, a) | Expr::Peek(a) | Expr::Push(a) => expr_prints(a),
        Expr::Binary(_, a, b) => expr_prints(a) || expr_prints(b),
        Expr::Index(_, idx) => idx.iter().any(expr_prints),
        _ => false,
    }
}

/// Unused-declaration lints for a filter: parameters and fields whose
/// names appear nowhere in the declaration — not in field dimensions or
/// initializers, the `init` block, the declared rates, or either work
/// body. Runs on the AST (before name resolution erases names), so a
/// local shadowing the name still counts as a use — a false negative,
/// never a false positive.
fn unused_decl_lints(
    decl: &StreamDecl,
    f: &streamlin_lang::ast::FilterDecl,
) -> Vec<crate::analyze::Lint> {
    let mut used: HashSet<String> = HashSet::new();
    for field in &f.fields {
        for d in &field.ty.dims {
            used_in_expr(d, &mut used);
        }
        if let Some(init) = &field.init {
            used_in_expr(init, &mut used);
        }
    }
    if let Some(init) = &f.init {
        used_in_block(init, &mut used);
    }
    for w in [Some(&f.work), f.init_work.as_ref()].into_iter().flatten() {
        for rate in [&w.push, &w.pop, &w.peek].into_iter().flatten() {
            used_in_expr(rate, &mut used);
        }
        used_in_block(&w.body, &mut used);
    }
    let mut lints = Vec::new();
    for p in &decl.params {
        if !used.contains(&p.name) {
            lints.push(crate::analyze::Lint {
                code: "unused-param",
                span: p.span,
                message: format!("parameter `{}` is never used", p.name),
            });
        }
    }
    for field in &f.fields {
        if !used.contains(&field.name) {
            lints.push(crate::analyze::Lint {
                code: "unused-field",
                span: field.span,
                message: format!("field `{}` is never used", field.name),
            });
        }
    }
    lints
}

fn used_in_block(block: &Block, used: &mut HashSet<String>) {
    for s in &block.stmts {
        used_in_stmt(s, used);
    }
}

fn used_in_stmt(stmt: &Stmt, used: &mut HashSet<String>) {
    match stmt {
        Stmt::Decl { ty, init, .. } => {
            for d in &ty.dims {
                used_in_expr(d, used);
            }
            if let Some(e) = init {
                used_in_expr(e, used);
            }
        }
        Stmt::Assign { target, value, .. } => {
            used_in_lvalue(target, used);
            used_in_expr(value, used);
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            used_in_expr(cond, used);
            used_in_block(then_blk, used);
            if let Some(e) = else_blk {
                used_in_block(e, used);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(s) = init {
                used_in_stmt(s, used);
            }
            if let Some(c) = cond {
                used_in_expr(c, used);
            }
            if let Some(s) = step {
                used_in_stmt(s, used);
            }
            used_in_block(body, used);
        }
        Stmt::While { cond, body } => {
            used_in_expr(cond, used);
            used_in_block(body, used);
        }
        Stmt::Expr(e) => used_in_expr(e, used),
        Stmt::Return => {}
        Stmt::Add(r) => {
            // Arguments of `add` keep captured names alive (containers
            // only; filter bodies reject `add` at lowering).
            if let StreamRef::Named { args, .. } = r {
                for a in args {
                    used_in_expr(a, used);
                }
            }
        }
    }
}

fn used_in_lvalue(lv: &LValue, used: &mut HashSet<String>) {
    match lv {
        LValue::Var(name) => {
            used.insert(name.clone());
        }
        LValue::Index(name, idxs) => {
            used.insert(name.clone());
            for i in idxs {
                used_in_expr(i, used);
            }
        }
    }
}

fn used_in_expr(e: &Expr, used: &mut HashSet<String>) {
    match e {
        Expr::Var(name) => {
            used.insert(name.clone());
        }
        Expr::Index(name, idxs) => {
            used.insert(name.clone());
            for i in idxs {
                used_in_expr(i, used);
            }
        }
        Expr::Unary(_, a) | Expr::Peek(a) | Expr::Push(a) => used_in_expr(a, used),
        Expr::Binary(_, a, b) => {
            used_in_expr(a, used);
            used_in_expr(b, used);
        }
        Expr::Call(_, args) => {
            for a in args {
                used_in_expr(a, used);
            }
        }
        Expr::PostIncDec { target, .. } => used_in_lvalue(target, used),
        Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Pi | Expr::Pop => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlin_lang::parse;

    fn elab(src: &str) -> Stream {
        elaborate(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn simple_pipeline() {
        let g = elab(
            "void->void pipeline Main { add Src(); add Sink(); }
             void->float filter Src { work push 1 { push(1.0); } }
             float->void filter Sink { work pop 1 { println(pop()); } }",
        );
        let Stream::Pipeline(children) = &g else {
            panic!()
        };
        assert_eq!(children.len(), 2);
        let Stream::Filter(src) = &children[0] else {
            panic!()
        };
        assert!(src.is_source());
        assert!(!src.prints);
        let Stream::Filter(sink) = &children[1] else {
            panic!()
        };
        assert!(sink.is_sink());
        assert!(sink.prints);
    }

    #[test]
    fn parameters_bind_and_rates_resolve() {
        let g = elab(
            "void->void pipeline Main { add F(8); add K(); }
             void->float filter F(int N) { work push N { for (int i=0;i<N;i++) push(i); } }
             float->void filter K { work pop 1 { pop(); } }",
        );
        let Stream::Pipeline(c) = &g else { panic!() };
        let Stream::Filter(f) = &c[0] else { panic!() };
        assert_eq!(f.work.push, 8);
        assert_eq!(f.name, "F(8)");
    }

    #[test]
    fn init_computes_weight_tables() {
        let g = elab(
            "void->void pipeline Main { add L(4); add K(); }
             void->float filter L(int N) {
                 float[N] h;
                 init { for (int i=0;i<N;i++) h[i] = i * i; }
                 work push 1 { push(h[3]); }
             }
             float->void filter K { work pop 1 { pop(); } }",
        );
        let Stream::Pipeline(c) = &g else { panic!() };
        let Stream::Filter(f) = &c[0] else { panic!() };
        let Cell::Array(h) = &f.state["h"] else {
            panic!()
        };
        assert_eq!(h.get(&[3]).unwrap(), Value::Float(9.0));
        assert_eq!(f.field_names, vec!["h"]);
        assert!(f.param_names.contains(&"N".to_string()));
    }

    #[test]
    fn splitjoin_with_loop_generated_children() {
        let g = elab(
            "void->void pipeline Main { add Bank(3); add K(); }
             void->float splitjoin Bank(int M) {
                 split duplicate;
                 for (int i = 0; i < M; i++) add Leaf(i);
                 join roundrobin;
             }
             void->float filter Leaf(int i) { work push 1 { push(i); } }
             float->void filter K { work pop 1 { pop(); } }",
        );
        let Stream::Pipeline(c) = &g else { panic!() };
        let Stream::SplitJoin { children, join, .. } = &c[0] else {
            panic!()
        };
        assert_eq!(children.len(), 3);
        assert_eq!(join.weights, vec![1, 1, 1]);
        let Stream::Filter(leaf2) = &children[2] else {
            panic!()
        };
        assert_eq!(leaf2.name, "Leaf(2)");
    }

    #[test]
    fn anonymous_streams_capture_loop_variables() {
        let g = elab(
            "void->void pipeline Main { add Bank(2); add K(); }
             void->float splitjoin Bank(int M) {
                 split duplicate;
                 for (int i = 0; i < M; i++) {
                     add pipeline { add Leaf(i * 10); }
                 }
                 join roundrobin;
             }
             void->float filter Leaf(int v) { work push 1 { push(v); } }
             float->void filter K { work pop 1 { pop(); } }",
        );
        let Stream::Pipeline(c) = &g else { panic!() };
        let Stream::SplitJoin { children, .. } = &c[0] else {
            panic!()
        };
        let Stream::Pipeline(inner) = &children[1] else {
            panic!()
        };
        let Stream::Filter(leaf) = &inner[0] else {
            panic!()
        };
        assert_eq!(leaf.name, "Leaf(10)");
    }

    #[test]
    fn feedbackloop_elaborates() {
        let g = elab(
            "void->void pipeline Main { add Src(); add FB(); add K(); }
             void->float filter Src { work push 1 { push(1.0); } }
             float->void filter K { work pop 1 { pop(); } }
             float->float feedbackloop FB {
                 join roundrobin(1, 1);
                 body Adder();
                 loop Delay();
                 split roundrobin(1, 1);
                 enqueue 0;
             }
             float->float filter Adder { work push 1 pop 2 { push(pop() + pop()); } }
             float->float filter Delay {
                 float s;
                 work push 1 pop 1 { push(s); s = pop(); }
             }",
        );
        let Stream::Pipeline(c) = &g else { panic!() };
        let Stream::FeedbackLoop { enqueue, .. } = &c[1] else {
            panic!()
        };
        assert_eq!(enqueue, &vec![0.0]);
    }

    #[test]
    fn peek_defaults_to_pop_and_is_clamped() {
        let g = elab(
            "void->void pipeline Main { add S(); add F(); add K(); }
             void->float filter S { work push 1 { push(0.0); } }
             float->float filter F { work push 1 pop 2 peek 1 { push(peek(0)); pop(); pop(); } }
             float->void filter K { work pop 1 { pop(); } }",
        );
        let Stream::Pipeline(c) = &g else { panic!() };
        let Stream::Filter(f) = &c[1] else { panic!() };
        assert_eq!(f.work.peek, 2); // clamped up to pop
    }

    #[test]
    fn missing_stream_is_an_error() {
        let p = parse("void->void pipeline Main { add Nope(); }").unwrap();
        let err = elaborate(&p).unwrap_err();
        assert!(err.message.contains("Nope"), "{err}");
        assert_eq!(err.context, vec!["Main"]);
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let p = parse(
            "void->void pipeline Main { add F(); }
             void->float filter F(int N) { work push 1 { push(N); } }",
        )
        .unwrap();
        let err = elaborate(&p).unwrap_err();
        assert!(err.message.contains("expects 1 arguments"), "{err}");
    }

    #[test]
    fn weight_mismatch_is_an_error() {
        let p = parse(
            "void->void pipeline Main { add SJ(); add K(); }
             void->float splitjoin SJ { split duplicate; add A(); add B(); join roundrobin(1, 1, 1); }
             void->float filter A { work push 1 { push(1.0); } }
             void->float filter B { work push 1 { push(2.0); } }
             float->void filter K { work pop 1 { pop(); } }",
        )
        .unwrap();
        let err = elaborate(&p).unwrap_err();
        assert!(err.message.contains("weights"), "{err}");
    }

    #[test]
    fn non_constant_rate_is_an_error() {
        let p = parse(
            "void->void pipeline Main { add F(); add K(); }
             void->float filter F { work push pop() { push(1.0); } }
             float->void filter K { work pop 1 { pop(); } }",
        )
        .unwrap();
        assert!(elaborate(&p).is_err());
    }

    #[test]
    fn elaborate_named_entry_point() {
        use streamlin_lang::ast::DataType;
        let p =
            parse("float->float filter Gain(float g) { work push 1 pop 1 { push(g * pop()); } }")
                .unwrap();
        let s = elaborate_named(&p, "Gain", &[Value::Float(2.5)]).unwrap();
        let Stream::Filter(f) = &s else { panic!() };
        assert_eq!(
            f.state["g"],
            Cell::Scalar(DataType::Float, Value::Float(2.5))
        );
    }
}
