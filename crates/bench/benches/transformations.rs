//! Criterion benchmarks of the compile-time analyses and transformations:
//! extraction (§3.2), pipeline combination (§3.3.2), splitjoin combination
//! (§3.3.3), and the selection DP (§4.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use streamlin_core::combine::analyze_graph;
use streamlin_core::cost::CostModel;
use streamlin_core::node::LinearNode;
use streamlin_core::pipeline::combine_pipeline;
use streamlin_core::select::{select, SelectOptions};
use streamlin_core::splitjoin::combine_splitjoin;
use streamlin_graph::ir::Splitter;

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract");
    for (name, bench) in [
        ("FIR-256", streamlin_benchmarks::fir(256)),
        ("FMRadio", streamlin_benchmarks::fm_radio()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(analyze_graph(black_box(bench.graph()))))
        });
    }
    group.finish();
}

fn bench_pipeline_combination(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine_pipeline");
    for taps in [16usize, 64, 256] {
        let w: Vec<f64> = (0..taps).map(|i| i as f64).collect();
        let f1 = LinearNode::fir(&w);
        let f2 = LinearNode::fir(&w);
        group.bench_with_input(BenchmarkId::from_parameter(taps), &taps, |b, _| {
            b.iter(|| black_box(combine_pipeline(black_box(&f1), black_box(&f2)).unwrap()))
        });
    }
    group.finish();
}

fn bench_splitjoin_combination(c: &mut Criterion) {
    let children: Vec<LinearNode> = (0..8)
        .map(|k| LinearNode::fir(&(0..64).map(|i| (i + k) as f64).collect::<Vec<_>>()))
        .collect();
    let weights = vec![1usize; 8];
    c.bench_function("combine_splitjoin/8x64", |b| {
        b.iter(|| {
            black_box(
                combine_splitjoin(&Splitter::Duplicate, black_box(&children), &weights).unwrap(),
            )
        })
    });
}

fn bench_selection(c: &mut Criterion) {
    let bench = streamlin_benchmarks::fm_radio();
    let analysis = analyze_graph(bench.graph());
    let model = CostModel::default();
    let opts = SelectOptions::default();
    c.bench_function("select/FMRadio", |b| {
        b.iter(|| black_box(select(bench.graph(), &analysis, &model, &opts).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_extraction,
    bench_pipeline_combination,
    bench_splitjoin_combination,
    bench_selection
);
criterion_main!(benches);
