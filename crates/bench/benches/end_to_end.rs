//! Criterion end-to-end benchmarks: engine throughput per benchmark under
//! the baseline and automatically-selected configurations (the wall-clock
//! side of Figures 5-1/5-3, in bench form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use streamlin_bench::{configure, Config};
use streamlin_runtime::measure::profile;
use streamlin_runtime::MatMulStrategy;

fn bench_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for bench in [
        streamlin_benchmarks::fir(256),
        streamlin_benchmarks::rate_convert(),
        streamlin_benchmarks::filter_bank(),
        streamlin_benchmarks::oversampler(),
    ] {
        let outputs = (bench.default_outputs() / 4).max(64);
        for config in [Config::Baseline, Config::AutoSel] {
            let opt = configure(&bench, config);
            group.bench_with_input(
                BenchmarkId::new(bench.name(), config.label()),
                &outputs,
                |b, &n| {
                    b.iter(|| {
                        black_box(profile(black_box(&opt), n, MatMulStrategy::Unrolled).unwrap())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
