//! Criterion end-to-end benchmarks: engine throughput per benchmark under
//! the baseline and automatically-selected configurations (the wall-clock
//! side of Figures 5-1/5-3, in bench form), measured under both the
//! compiled static scheduler and the data-driven fallback so the
//! `static/..` and `dynamic/..` rows are directly comparable — and under
//! both execution modes, so the cost of instruction accounting
//! (`measured/..` vs `fast/..`) is pinned in numbers. `Fast` rows run the
//! vectorized `Simd` matrix kernel, `Measured` rows the paper's
//! `Unrolled` one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use streamlin_bench::{configure, Config};
use streamlin_runtime::measure::{profile_mode, profile_threads, ExecMode, Scheduler};

fn bench_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for bench in [
        streamlin_benchmarks::fir(256),
        streamlin_benchmarks::rate_convert(),
        streamlin_benchmarks::filter_bank(),
        streamlin_benchmarks::oversampler(),
    ] {
        let outputs = (bench.default_outputs() / 4).max(64);
        for config in [Config::Baseline, Config::AutoSel] {
            let opt = configure(&bench, config);
            for sched in [Scheduler::Static, Scheduler::Dynamic] {
                for mode in [ExecMode::Measured, ExecMode::Fast] {
                    group.bench_with_input(
                        BenchmarkId::new(
                            format!("{}/{}/{}", mode.label(), sched.label(), bench.name()),
                            config.label(),
                        ),
                        &outputs,
                        |b, &n| {
                            b.iter(|| {
                                black_box(
                                    profile_mode(
                                        black_box(&opt),
                                        n,
                                        mode.default_strategy(),
                                        sched,
                                        mode,
                                    )
                                    .unwrap(),
                                )
                            })
                        },
                    );
                }
            }
        }
    }
    group.finish();
}

/// The scheduler's best case: one large linear node (FIR after maximal
/// combination) and the frequency-domain FFT kernels, static vs dynamic
/// and measured vs fast — the four-way matrix the acceptance speedup is
/// read from.
fn bench_kernel_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_kernels");
    group.sample_size(10);
    let fir = streamlin_benchmarks::fir(256);
    let fir_big = streamlin_benchmarks::fir(1024);
    for (label, bench, config) in [
        ("fir-linear", &fir, Config::Linear),
        ("fir-freq", &fir, Config::Freq),
        ("fir1024-linear", &fir_big, Config::Linear),
        ("fir1024-freq", &fir_big, Config::Freq),
    ] {
        let opt = configure(bench, config);
        for sched in [Scheduler::Static, Scheduler::Dynamic] {
            for mode in [ExecMode::Measured, ExecMode::Fast] {
                group.bench_with_input(
                    BenchmarkId::new(label, format!("{}/{}", mode.label(), sched.label())),
                    &512usize,
                    |b, &n| {
                        b.iter(|| {
                            black_box(
                                profile_mode(
                                    black_box(&opt),
                                    n,
                                    mode.default_strategy(),
                                    sched,
                                    mode,
                                )
                                .unwrap(),
                            )
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

/// The threads dimension: the pipeline-parallel executor against the
/// single-threaded static engine, Fast mode (the production path), on the
/// benchmarks with enough stages to cut. On a single-core host the t>1
/// rows measure protocol overhead, not parallelism.
fn bench_pipeline_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_threads");
    group.sample_size(10);
    for bench in [
        streamlin_benchmarks::fir(256),
        streamlin_benchmarks::filter_bank(),
        streamlin_benchmarks::oversampler(),
        streamlin_benchmarks::target_detect(),
    ] {
        let outputs = (bench.default_outputs() / 4).max(64);
        let opt = configure(&bench, Config::Baseline);
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(bench.name().to_string(), format!("t{threads}")),
                &outputs,
                |b, &n| {
                    b.iter(|| {
                        let mode = ExecMode::Fast;
                        black_box(if threads > 1 {
                            profile_threads(
                                black_box(&opt),
                                n,
                                mode.default_strategy(),
                                Scheduler::Auto,
                                mode,
                                threads,
                            )
                            .unwrap()
                        } else {
                            profile_mode(
                                black_box(&opt),
                                n,
                                mode.default_strategy(),
                                Scheduler::Auto,
                                mode,
                            )
                            .unwrap()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

/// The fission dimension: the dominant node split into `w` round-robin
/// duplicates under the 4-stage pipeline, against the unfissed pipeline
/// (`w = 1`). FIR's frequency stage (autosel) and its direct linear
/// kernel (baseline) are the two duplicable-bottleneck shapes; as with
/// the threads group, single-core hosts measure protocol overhead.
fn bench_fission(c: &mut Criterion) {
    use streamlin_runtime::fission::Fission;
    use streamlin_runtime::measure::profile_fission;
    let mut group = c.benchmark_group("fission");
    group.sample_size(10);
    for (bench, config) in [
        (streamlin_benchmarks::fir(256), Config::AutoSel),
        (streamlin_benchmarks::fir(256), Config::Baseline),
        (streamlin_benchmarks::vocoder(), Config::AutoSel),
    ] {
        let outputs = (bench.default_outputs() / 4).max(64);
        let opt = configure(&bench, config);
        for width in [1usize, 2, 4] {
            let fission = if width > 1 {
                Fission::Width(width)
            } else {
                Fission::Off
            };
            group.bench_with_input(
                BenchmarkId::new(
                    format!("{}-{}", bench.name(), config.label()),
                    format!("w{width}"),
                ),
                &outputs,
                |b, &n| {
                    b.iter(|| {
                        let mode = ExecMode::Fast;
                        black_box(
                            profile_fission(
                                black_box(&opt),
                                n,
                                mode.default_strategy(),
                                Scheduler::Auto,
                                mode,
                                4,
                                fission,
                            )
                            .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_suite,
    bench_kernel_paths,
    bench_pipeline_threads,
    bench_fission
);
criterion_main!(benches);
