//! Criterion microbenchmarks of the computational kernels: the three
//! matrix-multiply strategies (§5.4) and the two FFT tiers (§5.8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use streamlin_core::node::LinearNode;
use streamlin_fft::{FftKind, RealFft};
use streamlin_runtime::linear_exec::{LinearExec, MatMulStrategy};
use streamlin_support::OpCounter;

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec");
    for taps in [16usize, 64, 256] {
        let weights: Vec<f64> = (0..taps).map(|i| (i as f64 * 0.37).sin()).collect();
        let node = LinearNode::fir(&weights);
        let window: Vec<f64> = (0..taps).map(|i| i as f64).collect();
        for strategy in [
            MatMulStrategy::Unrolled,
            MatMulStrategy::Diagonal,
            MatMulStrategy::Blocked,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), taps),
                &taps,
                |b, _| {
                    let mut exec = LinearExec::new(node.clone(), strategy);
                    let mut ops = OpCounter::new();
                    b.iter(|| black_box(exec.fire(black_box(&window), &mut ops)));
                },
            );
        }
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("real_fft");
    for n in [64usize, 512, 4096] {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        for kind in [FftKind::Simple, FftKind::Tuned] {
            group.bench_with_input(BenchmarkId::new(format!("{kind:?}"), n), &n, |b, _| {
                let fft = RealFft::new(kind, n).unwrap();
                let mut ops = OpCounter::new();
                b.iter(|| black_box(fft.forward(black_box(&x), &mut ops)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matvec, bench_fft);

// Appended ablations: the §5.6 redundancy executor vs. plain matvec, and
// the §5.8 frequency-strategy grid at a fixed size.
mod ablations {
    use super::*;
    use streamlin_core::frequency::{FreqExec, FreqSpec, FreqStrategy};
    use streamlin_core::redundancy::{RedundExec, RedundSpec};

    pub fn bench_redundancy(c: &mut Criterion) {
        let mut group = c.benchmark_group("redundancy_vs_direct");
        for taps in [16usize, 64] {
            // Symmetric weights: maximal reuse.
            let weights: Vec<f64> = (0..taps)
                .map(|i| (1 + i.min(taps - 1 - i)) as f64)
                .collect();
            let node = LinearNode::fir(&weights);
            let input: Vec<f64> = (0..taps + 256).map(|i| i as f64).collect();
            group.bench_with_input(BenchmarkId::new("direct", taps), &taps, |b, _| {
                let mut exec = LinearExec::new(node.clone(), MatMulStrategy::Unrolled);
                let mut ops = OpCounter::new();
                b.iter(|| black_box(exec.run_over(black_box(&input), &mut ops)));
            });
            group.bench_with_input(BenchmarkId::new("redund", taps), &taps, |b, _| {
                let spec = RedundSpec::new(&node);
                let mut ops = OpCounter::new();
                b.iter(|| {
                    let mut exec = RedundExec::new(spec.clone());
                    black_box(exec.run_over(black_box(&input), &mut ops))
                });
            });
        }
        group.finish();
    }

    pub fn bench_freq_strategies(c: &mut Criterion) {
        let mut group = c.benchmark_group("freq_strategy");
        let node = LinearNode::fir(&(0..128).map(|i| (i as f64 * 0.1).sin()).collect::<Vec<_>>());
        let input: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).cos()).collect();
        for (label, strategy, kind) in [
            ("naive+simple", FreqStrategy::Naive, FftKind::Simple),
            ("opt+simple", FreqStrategy::Optimized, FftKind::Simple),
            ("opt+tuned", FreqStrategy::Optimized, FftKind::Tuned),
        ] {
            group.bench_function(label, |b| {
                let spec = FreqSpec::new(&node, strategy, kind, None).unwrap();
                let mut ops = OpCounter::new();
                b.iter(|| {
                    let mut exec = FreqExec::new(spec.clone());
                    black_box(exec.run_over(black_box(&input), &mut ops))
                });
            });
        }
        group.finish();
    }
}

criterion_group!(
    ablation_benches,
    ablations::bench_redundancy,
    ablations::bench_freq_strategies
);
criterion_main!(benches, ablation_benches);
