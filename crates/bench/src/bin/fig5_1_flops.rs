//! Figure 5-1: elimination of floating point operations by maximal linear
//! replacement, maximal frequency replacement, and automatic optimization
//! selection.

use streamlin_bench::{arg_scale, f1, overall_results, pct_removed, Table};

fn main() {
    println!("Figure 5-1: % of FLOPS removed (negative = increased)\n");
    let mut t = Table::new(&["benchmark", "linear", "freq", "autosel"]);
    let rows = overall_results(arg_scale());
    let mut sums = [0.0f64; 3];
    for r in &rows {
        let base = r.baseline.ops.flops() as f64 / r.baseline.outputs.len() as f64;
        let vals = [
            pct_removed(
                base,
                r.linear.ops.flops() as f64 / r.linear.outputs.len() as f64,
            ),
            pct_removed(
                base,
                r.freq.ops.flops() as f64 / r.freq.outputs.len() as f64,
            ),
            pct_removed(
                base,
                r.autosel.ops.flops() as f64 / r.autosel.outputs.len() as f64,
            ),
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        t.row(vec![r.name.clone(), f1(vals[0]), f1(vals[1]), f1(vals[2])]);
    }
    let n = rows.len() as f64;
    t.row(vec![
        "AVERAGE".into(),
        f1(sums[0] / n),
        f1(sums[1] / n),
        f1(sums[2] / n),
    ]);
    t.print();
    println!("\npaper: autosel removes 86% of FLOPS on average (abstract, §5.2)");
}
