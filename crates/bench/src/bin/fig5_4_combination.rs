//! Figures 5-4 and 5-5: multiplication removal and speedup for linear and
//! frequency replacement with and without combination ("(nc)").

use streamlin_bench::{arg_scale, f1, pct_removed, run, speedup_pct, Config, Table};

fn main() {
    println!("Figure 5-4/5-5: effect of combination (\"(nc)\" = no combination)\n");
    let mut t = Table::new(&[
        "benchmark",
        "mult% lin(nc)",
        "mult% lin",
        "mult% freq(nc)",
        "mult% freq",
        "speedup% lin",
        "speedup% freq",
        "dSpd lin",
        "dSpd freq",
    ]);
    let scale = arg_scale();
    for b in streamlin_benchmarks::all_default() {
        let n = ((b.default_outputs() as f64 * scale) as usize).max(32);
        eprintln!("measuring {} ({n} outputs)...", b.name());
        let base = run(&b, Config::Baseline, n);
        let lin_nc = run(&b, Config::LinearNc, n);
        let lin = run(&b, Config::Linear, n);
        let freq_nc = run(&b, Config::FreqNc, n);
        let freq = run(&b, Config::Freq, n);
        let bm = base.mults_per_output();
        let bt = base.nanos_per_output();
        let s_lin_nc = speedup_pct(bt, lin_nc.nanos_per_output());
        let s_lin = speedup_pct(bt, lin.nanos_per_output());
        let s_freq_nc = speedup_pct(bt, freq_nc.nanos_per_output());
        let s_freq = speedup_pct(bt, freq.nanos_per_output());
        t.row(vec![
            b.name().to_string(),
            f1(pct_removed(bm, lin_nc.mults_per_output())),
            f1(pct_removed(bm, lin.mults_per_output())),
            f1(pct_removed(bm, freq_nc.mults_per_output())),
            f1(pct_removed(bm, freq.mults_per_output())),
            f1(s_lin),
            f1(s_freq),
            f1(s_lin - s_lin_nc),
            f1(s_freq - s_freq_nc),
        ]);
    }
    t.print();
    println!("\n(dSpd columns are Figure 5-5: speedup added by enabling combination)");
}
