//! Figure 5-3: execution speedup (%) for maximal linear replacement,
//! maximal frequency replacement, and automatic optimization selection.

use streamlin_bench::{arg_scale, f1, overall_results, speedup_pct, Table};

fn main() {
    println!("Figure 5-3: execution speedup %, (t_base/t_opt - 1) * 100\n");
    let mut t = Table::new(&["benchmark", "linear", "freq", "autosel"]);
    let rows = overall_results(arg_scale());
    let mut sums = [0.0f64; 3];
    for r in &rows {
        let base = r.baseline.nanos_per_output();
        let vals = [
            speedup_pct(base, r.linear.nanos_per_output()),
            speedup_pct(base, r.freq.nanos_per_output()),
            speedup_pct(base, r.autosel.nanos_per_output()),
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        t.row(vec![r.name.clone(), f1(vals[0]), f1(vals[1]), f1(vals[2])]);
    }
    let n = rows.len() as f64;
    t.row(vec![
        "AVERAGE".into(),
        f1(sums[0] / n),
        f1(sums[1] / n),
        f1(sums[2] / n),
    ]);
    t.print();
    println!("\npaper: average 450%, best case 800% (abstract)");
}
