//! Figure 5-6: speedups using the ATLAS-substitute (dense blocked matrix
//! multiply with copy-in) to implement maximal linear replacement,
//! compared against the default zero-skipping code generation.

use streamlin_bench::{arg_scale, f1, run_with_strategy, speedup_pct, Config, Table};
use streamlin_runtime::MatMulStrategy;

fn main() {
    println!("Figure 5-6: linear replacement speedup %, default matmul vs ATLAS-substitute\n");
    let mut t = Table::new(&["benchmark", "direct", "atlas", "atlas-direct"]);
    let scale = arg_scale();
    for b in streamlin_benchmarks::all_default() {
        let n = ((b.default_outputs() as f64 * scale) as usize).max(32);
        eprintln!("measuring {} ({n} outputs)...", b.name());
        let base = run_with_strategy(&b, Config::Baseline, n, MatMulStrategy::Unrolled);
        let direct = run_with_strategy(&b, Config::Linear, n, MatMulStrategy::Unrolled);
        let atlas = run_with_strategy(&b, Config::Linear, n, MatMulStrategy::Blocked);
        let bt = base.nanos_per_output();
        let sd = speedup_pct(bt, direct.nanos_per_output());
        let sa = speedup_pct(bt, atlas.nanos_per_output());
        t.row(vec![b.name().to_string(), f1(sd), f1(sa), f1(sa - sd)]);
    }
    t.print();
    println!("\npaper: ATLAS varies from -36% to +58% vs the direct code (§5.2)");
}
