//! Figure 5-9: scatter of original vs post-optimization execution time for
//! the FIR scaling experiment, with the selection cost model's predicted
//! frequency cost alongside.

use streamlin_bench::{f2, run, Config, Table};
use streamlin_core::cost::CostModel;
use streamlin_core::frequency::FreqStrategy;
use streamlin_core::node::LinearNode;

fn main() {
    println!("Figure 5-9: original vs optimized time per output (FIR scaling)\n");
    let mut t = Table::new(&[
        "taps",
        "t_orig us/out",
        "t_freq us/out",
        "model direct",
        "model freq",
    ]);
    let n = 4096;
    let model = CostModel::default();
    for taps in [4, 8, 16, 24, 32, 48, 64, 96, 128] {
        let b = streamlin_benchmarks::fir(taps);
        let base = run(&b, Config::Baseline, n);
        let freq = run(&b, Config::Freq, n);
        let node = LinearNode::fir(&vec![1.0; taps]);
        t.row(vec![
            taps.to_string(),
            f2(base.nanos_per_output() / 1000.0),
            f2(freq.nanos_per_output() / 1000.0),
            f2(model.direct_total(&node, 1.0)),
            f2(model.freq_total(&node, 1.0, FreqStrategy::Optimized)),
        ]);
    }
    t.print();
    println!("\n(model columns are the §4.3.3 cost functions per consumed item,");
    println!(" the solid line of the paper's Figure 5-9)");
}
