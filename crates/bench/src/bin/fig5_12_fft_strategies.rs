//! Figure 5-12: multiplication *reduction factor* (direct mults / freq
//! mults per output) as a function of FIR size and FFT size N, for the
//! four strategies: a) theoretical, b) naive transformation + simple FFT,
//! c) optimized transformation + simple FFT, d) optimized + tuned FFT
//! (the FFTW stand-in).

use streamlin_bench::{f2, Table};
use streamlin_core::frequency::{FreqExec, FreqSpec, FreqStrategy};
use streamlin_core::node::LinearNode;
use streamlin_fft::FftKind;
use streamlin_support::OpCounter;

fn measured_factor(taps: usize, n: usize, strategy: FreqStrategy, kind: FftKind) -> Option<f64> {
    let node = LinearNode::fir(&vec![1.0; taps]);
    let spec = FreqSpec::new(&node, strategy, kind, Some(n)).ok()?;
    let mut exec = FreqExec::new(spec);
    let mut ops = OpCounter::new();
    let input: Vec<f64> = (0..(8 * n + taps)).map(|i| (i % 13) as f64).collect();
    let outs = exec.run_over(&input, &mut ops);
    if outs.is_empty() {
        return None;
    }
    let freq_per_out = ops.mults() as f64 / outs.len() as f64;
    Some(taps as f64 / freq_per_out)
}

/// Textbook estimate: direct needs `e` mults/output; frequency needs
/// ~(2 FFTs of N at (N/2)lgN complex mults + N-point product) per
/// m = N-2e+1 outputs.
fn theory_factor(taps: usize, n: usize) -> Option<f64> {
    if n < 2 * taps {
        return None;
    }
    let m = (n - 2 * taps + 1) as f64;
    let nf = n as f64;
    let freq = (2.0 * 2.0 * nf * nf.log2() + 4.0 * nf) / m;
    Some(taps as f64 / freq)
}

fn main() {
    println!("Figure 5-12: multiplication reduction factor by strategy\n");
    let sizes = [16, 32, 64, 128, 256];
    let ns = [64, 128, 256, 512, 1024, 2048];
    for (title, f) in [
        (
            "a) theoretical",
            Box::new(|t: usize, n: usize| theory_factor(t, n))
                as Box<dyn Fn(usize, usize) -> Option<f64>>,
        ),
        (
            "b) naive + simple FFT",
            Box::new(|t, n| measured_factor(t, n, FreqStrategy::Naive, FftKind::Simple)),
        ),
        (
            "c) optimized + simple FFT",
            Box::new(|t, n| measured_factor(t, n, FreqStrategy::Optimized, FftKind::Simple)),
        ),
        (
            "d) optimized + tuned FFT (FFTW stand-in)",
            Box::new(|t, n| measured_factor(t, n, FreqStrategy::Optimized, FftKind::Tuned)),
        ),
    ] {
        println!("{title}");
        let mut t = Table::new(&["fir\\N", "64", "128", "256", "512", "1024", "2048"]);
        for taps in sizes {
            let mut row = vec![taps.to_string()];
            for n in ns {
                row.push(match f(taps, n) {
                    Some(v) => f2(v),
                    None => "-".to_string(),
                });
            }
            t.row(row);
        }
        t.print();
        println!();
    }
    println!("paper: optimized beats naive by ~1.5x; FFTW adds another large factor (§5.8)");
}
