//! Figure 5-8: multiplication elimination (top) and speedup (bottom) with
//! frequency replacement, as a function of the FIR problem size.

use streamlin_bench::{f1, pct_removed, run, speedup_pct, Config, Table};

fn main() {
    println!("Figure 5-8: FIR scaling under frequency replacement\n");
    let mut t = Table::new(&[
        "taps",
        "mults/out base",
        "mults/out freq",
        "mult% removed",
        "speedup%",
    ]);
    let n = 4096;
    for taps in [1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128] {
        let b = streamlin_benchmarks::fir(taps);
        let base = run(&b, Config::Baseline, n);
        let freq = run(&b, Config::Freq, n);
        t.row(vec![
            taps.to_string(),
            f1(base.mults_per_output()),
            f1(freq.mults_per_output()),
            f1(pct_removed(
                base.mults_per_output(),
                freq.mults_per_output(),
            )),
            f1(speedup_pct(
                base.nanos_per_output(),
                freq.nanos_per_output(),
            )),
        ]);
    }
    t.print();
    println!(
        "\npaper: reduction approaches the lg(N)/N theoretical curve; speedup grows ~linearly"
    );
}
