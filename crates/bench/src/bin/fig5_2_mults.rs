//! Figure 5-2: elimination of floating point multiplications (the
//! fmul/fdiv families) by linear, frequency, and automatic replacement.

use streamlin_bench::{arg_scale, f1, overall_results, pct_removed, Table};

fn main() {
    println!("Figure 5-2: % of multiplications removed (negative = increased)\n");
    let mut t = Table::new(&["benchmark", "linear", "freq", "autosel"]);
    let rows = overall_results(arg_scale());
    let mut sums = [0.0f64; 3];
    for r in &rows {
        let base = r.baseline.mults_per_output();
        let vals = [
            pct_removed(base, r.linear.mults_per_output()),
            pct_removed(base, r.freq.mults_per_output()),
            pct_removed(base, r.autosel.mults_per_output()),
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        t.row(vec![r.name.clone(), f1(vals[0]), f1(vals[1]), f1(vals[2])]);
    }
    let n = rows.len() as f64;
    t.row(vec![
        "AVERAGE".into(),
        f1(sums[0] / n),
        f1(sums[1] / n),
        f1(sums[2] / n),
    ]);
    t.print();
}
