//! Figure 5-10: multiplications remaining (top) and speedup (bottom) after
//! redundancy replacement as a function of FIR size — including the
//! even/odd zig-zag from the symmetric weights.

use streamlin_bench::{f1, run, speedup_pct, Config, Table};

fn main() {
    println!("Figure 5-10: redundancy elimination on the FIR benchmark\n");
    let mut t = Table::new(&["taps", "mults% remaining", "speedup%"]);
    let n = 2048;
    for taps in [3, 4, 7, 8, 15, 16, 31, 32, 63, 64, 95, 96, 127, 128] {
        let b = streamlin_benchmarks::fir(taps);
        let base = run(&b, Config::Baseline, n);
        let red = run(&b, Config::Redund, n);
        t.row(vec![
            taps.to_string(),
            f1(100.0 * red.mults_per_output() / base.mults_per_output()),
            f1(speedup_pct(base.nanos_per_output(), red.nanos_per_output())),
        ]);
    }
    t.print();
    println!("\npaper: ~50%+ of multiplications removed (even sizes reuse everything,");
    println!("odd sizes keep the center tap), but caching overhead makes it *slower* (§5.6)");
}
