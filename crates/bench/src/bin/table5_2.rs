//! Table 5.2: characteristics of the benchmarks before and after running
//! the automatic selection optimizations.

use streamlin_bench::{configure, Config, Table};
use streamlin_core::combine::analyze_graph;
use streamlin_graph::stats::graph_stats;

fn main() {
    println!("Table 5.2: benchmark characteristics before/after autosel\n");
    let mut t = Table::new(&[
        "benchmark",
        "filters",
        "(linear)",
        "pipelines",
        "splitjoins",
        "avg vec size",
        "| after: filters",
        "pipelines",
        "splitjoins",
    ]);
    for b in streamlin_benchmarks::all_default() {
        eprintln!("analyzing {}...", b.name());
        let stats = graph_stats(b.graph());
        let analysis = analyze_graph(b.graph());
        // "Average vector size": mean matrix extent (peek x push entries)
        // over the linear filters, as DESIGN.md documents.
        let avg_vec = if analysis.nodes.is_empty() {
            0.0
        } else {
            analysis
                .nodes
                .values()
                .map(|n| (n.peek() * n.push().max(1)) as f64)
                .sum::<f64>()
                / analysis.nodes.len() as f64
        };
        let after = configure(&b, Config::AutoSel).stats();
        t.row(vec![
            b.name().to_string(),
            stats.filters.to_string(),
            format!("({})", analysis.linear_count()),
            stats.pipelines.to_string(),
            stats.splitjoins.to_string(),
            format!("{avg_vec:.0}"),
            after.filters.to_string(),
            after.pipelines.to_string(),
            after.splitjoins.to_string(),
        ]);
    }
    t.print();
}
