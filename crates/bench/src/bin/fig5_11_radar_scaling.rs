//! Figure 5-11: multiplication reduction with maximal linear replacement
//! as a function of the Radar problem size (channels x beams).

use streamlin_bench::{f1, pct_removed, run, Config, Table};

fn main() {
    println!("Figure 5-11: Radar mult reduction % under maximal linear replacement\n");
    let mut t = Table::new(&["channels", "beams=1", "beams=2", "beams=4", "beams=8"]);
    let n = 128;
    for channels in [4, 8, 12] {
        let mut row = vec![channels.to_string()];
        for beams in [1, 2, 4, 8] {
            eprintln!("measuring radar({channels}, {beams})...");
            let b = streamlin_benchmarks::radar(channels, beams);
            let base = run(&b, Config::Baseline, n);
            let lin = run(&b, Config::Linear, n);
            row.push(f1(pct_removed(
                base.mults_per_output(),
                lin.mults_per_output(),
            )));
        }
        t.row(row);
    }
    t.print();
    println!("\npaper: linear replacement degrades as the problem grows, and growing");
    println!("the number of beams hurts much more than growing the channels (§5.7)");
}
