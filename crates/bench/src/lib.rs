//! Reproduction harness for the paper's evaluation (Chapter 5).
//!
//! One binary per table/figure lives in `src/bin/` (see DESIGN.md's
//! per-experiment index); this library holds the shared machinery: the
//! four measured configurations of §5.2, percentage/speedup arithmetic,
//! and a fixed-width table printer so every binary emits the same rows and
//! series the paper reports.

use streamlin_benchmarks::Benchmark;
use streamlin_core::combine::{analyze_graph, replace, ReplaceOptions, ReplaceTarget};
use streamlin_core::cost::CostModel;
use streamlin_core::frequency::FreqStrategy;
use streamlin_core::opt::OptStream;
use streamlin_core::select::{select, SelectOptions};
use streamlin_fft::FftKind;
use streamlin_runtime::measure::{profile, Profile};
use streamlin_runtime::MatMulStrategy;

/// The measured configurations of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Fully interpreted program: no linear replacement at all, every
    /// work function runs in the slot-resolved interpreter. The
    /// interpreter-bound row of the perf trajectory.
    Interp,
    /// Unoptimized program (per-filter direct execution — the paper's
    /// compiled-C baseline; see DESIGN.md's substitution notes).
    Baseline,
    /// Maximal linear replacement.
    Linear,
    /// Maximal frequency replacement.
    Freq,
    /// Automatic optimization selection.
    AutoSel,
    /// Per-filter linear replacement, no combination (Fig. 5-4 "(nc)").
    LinearNc,
    /// Per-filter frequency replacement, no combination (Fig. 5-4 "(nc)").
    FreqNc,
    /// Maximal linear replacement with redundancy elimination (§5.6).
    Redund,
}

impl Config {
    /// Short label used in the printed tables.
    pub fn label(self) -> &'static str {
        match self {
            Config::Interp => "interp",
            Config::Baseline => "baseline",
            Config::Linear => "linear",
            Config::Freq => "freq",
            Config::AutoSel => "autosel",
            Config::LinearNc => "linear(nc)",
            Config::FreqNc => "freq(nc)",
            Config::Redund => "redund",
        }
    }
}

/// Builds the optimized stream for a configuration.
///
/// # Panics
///
/// Panics if selection fails (benchmark graphs always schedule).
pub fn configure(bench: &Benchmark, config: Config) -> OptStream {
    let analysis = analyze_graph(bench.graph());
    let freq = |combine: bool| ReplaceOptions {
        combine,
        target: ReplaceTarget::Freq {
            strategy: FreqStrategy::Optimized,
            kind: FftKind::Tuned,
            unit_pop_only: false,
        },
    };
    match config {
        Config::Interp => OptStream::from_graph(bench.graph()),
        Config::Baseline => replace(bench.graph(), &analysis, &ReplaceOptions::per_filter()),
        Config::Linear => replace(bench.graph(), &analysis, &ReplaceOptions::maximal_linear()),
        Config::Freq => replace(bench.graph(), &analysis, &freq(true)),
        Config::FreqNc => replace(bench.graph(), &analysis, &freq(false)),
        Config::LinearNc => replace(bench.graph(), &analysis, &ReplaceOptions::per_filter()),
        Config::Redund => replace(
            bench.graph(),
            &analysis,
            &ReplaceOptions {
                combine: true,
                target: ReplaceTarget::Redund,
            },
        ),
        Config::AutoSel => {
            select(
                bench.graph(),
                &analysis,
                &CostModel::default(),
                &SelectOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
            .opt
        }
    }
}

/// Profiles a benchmark under a configuration.
///
/// # Panics
///
/// Panics on execution errors — the harness measures known-good programs.
pub fn run(bench: &Benchmark, config: Config, outputs: usize) -> Profile {
    run_with_strategy(bench, config, outputs, MatMulStrategy::Unrolled)
}

/// Profiles with an explicit matrix-multiply strategy (the ATLAS study).
///
/// # Panics
///
/// Panics on execution errors.
pub fn run_with_strategy(
    bench: &Benchmark,
    config: Config,
    outputs: usize,
    strategy: MatMulStrategy,
) -> Profile {
    let opt = configure(bench, config);
    profile(&opt, outputs, strategy)
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", bench.name(), config.label()))
}

/// Percentage removed: `(1 − after/before)·100` (negative = increase),
/// the quantity of Figures 5-1/5-2.
pub fn pct_removed(before: f64, after: f64) -> f64 {
    (1.0 - after / before) * 100.0
}

/// Speedup percentage: `(t_before/t_after − 1)·100`, the quantity of
/// Figure 5-3 (an 800% speedup is 9× faster).
pub fn speedup_pct(before_ns: f64, after_ns: f64) -> f64 {
    (before_ns / after_ns - 1.0) * 100.0
}

/// Fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with one decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        assert_eq!(pct_removed(100.0, 14.0), 86.0);
        assert!(pct_removed(100.0, 130.0) < 0.0);
        assert_eq!(speedup_pct(10.0, 2.0), 400.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn configs_produce_distinct_structures() {
        let b = streamlin_benchmarks::fir(64);
        let base = configure(&b, Config::Baseline).stats();
        let lin = configure(&b, Config::Linear).stats();
        let freq = configure(&b, Config::Freq).stats();
        assert_eq!(base.linear, 1);
        assert_eq!(lin.linear, 1);
        assert_eq!(freq.freq, 1);
    }
}

/// One benchmark measured under the four §5.2 configurations.
#[derive(Debug)]
pub struct OverallRow {
    /// Benchmark name.
    pub name: String,
    /// Unoptimized measurement.
    pub baseline: Profile,
    /// Maximal linear replacement.
    pub linear: Profile,
    /// Maximal frequency replacement.
    pub freq: Profile,
    /// Automatic selection.
    pub autosel: Profile,
}

/// Measures the whole suite under baseline/linear/freq/autosel, as used by
/// Figures 5-1, 5-2 and 5-3. `scale` multiplies each benchmark's default
/// output count (1.0 for the full runs recorded in EXPERIMENTS.md).
pub fn overall_results(scale: f64) -> Vec<OverallRow> {
    streamlin_benchmarks::all_default()
        .into_iter()
        .map(|b| {
            let n = ((b.default_outputs() as f64 * scale) as usize).max(32);
            eprintln!("measuring {} ({} outputs)...", b.name(), n);
            OverallRow {
                name: b.name().to_string(),
                baseline: run(&b, Config::Baseline, n),
                linear: run(&b, Config::Linear, n),
                freq: run(&b, Config::Freq, n),
                autosel: run(&b, Config::AutoSel, n),
            }
        })
        .collect()
}

/// Reads an output-scale factor from the first CLI argument (default 1.0),
/// so quick sanity runs can use e.g. `0.1`.
pub fn arg_scale() -> f64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}
