//! `streamlin-service` — the persistent streaming daemon behind
//! `streamlind`.
//!
//! One-shot `streamlinc` is the wrong shape for heavy traffic: every
//! invocation re-parses, re-elaborates, re-analyzes, re-plans and
//! re-partitions before firing a single item, and tears the worker pool
//! back down afterwards. This crate keeps everything resident:
//!
//! * a **plan cache** ([`cache`]) keyed by program content-hash ×
//!   configuration × runtime knobs, holding the fully compiled artifact
//!   (`FilterFacts` intact) so compile cost is paid once per distinct
//!   program;
//! * **named streams** ([`session`]): per-stream engine state persists
//!   across requests — a stream is a long-lived stateful process whose
//!   output is consumed in ordered batches;
//! * a **line-delimited JSON protocol** ([`proto`]) over stdio or TCP,
//!   built on `streamlin_support::json` (no serialization dependency);
//! * **admission control** ([`admission`]): streams multiplex onto the
//!   process-wide worker pool under a worker budget — saturation yields
//!   a structured refusal (or a bounded wait), never a hang, and a
//!   degradable failure degrades *that stream only* onto the
//!   single-threaded static plan.
//!
//! Determinism contract: the same program driven through the service, in
//! any interleaving with other streams and any read batching, produces
//! **bit-identical** output to one-shot `streamlinc` — pinned by
//! `tests/service_equivalence.rs` across all nine paper benchmarks.
//!
//! [`Service::handle`] is the transport-free core (one request line in,
//! one response line out); [`server`] wraps it in the stdio/TCP loops
//! the `streamlind` binary runs. Tests and benchmarks drive
//! [`Service::handle`] in process — same dispatcher, no pipes.

pub mod admission;
pub mod cache;
pub mod proto;
pub mod server;
pub mod session;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use streamlin_runtime::{pool, resolve_quantum_checked};
use streamlin_support::json::Json;
use streamlin_support::InjectFaults;

use admission::Ledger;
use cache::{fnv1a64, PlanCache, PlanKey};
use proto::{err_response, ok_response, OpenReq, Request};
use session::{build_exec, StreamExec};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceOpts {
    /// Admission budget: worker threads all live streams may claim in
    /// total (a pipeline stream claims its partition's stage count, a
    /// single-threaded stream claims 1).
    pub workers: usize,
    /// Maximum concurrently open streams.
    pub max_streams: usize,
    /// Instrument every stream with its own `Recorder` (per-stream
    /// lanes); close responses then carry telemetry, `--metrics` prints
    /// the summary, `--trace-out <dir>` writes one Chrome trace per
    /// stream.
    pub instrument: bool,
    /// Print each closed stream's telemetry summary to stderr.
    pub metrics: bool,
    /// Directory for per-stream Chrome traces (`<dir>/<id>.trace.json`).
    pub trace_dir: Option<String>,
    /// Default cycle quantum for streams that don't pick one (`0`:
    /// `STREAMLIN_CYCLE_QUANTUM`, then the built-in default).
    pub quantum: u64,
    /// Default stall watchdog for pipeline streams whose `open` doesn't
    /// set `watchdog_ms`. `None` leaves unsupervised streams unarmed
    /// (matching one-shot `streamlinc`); daemons that must never wedge a
    /// stream on a ring stall should set it (`--watchdog <ms>`).
    pub watchdog_ms: Option<u64>,
}

impl Default for ServiceOpts {
    fn default() -> Self {
        ServiceOpts {
            workers: std::thread::available_parallelism().map_or(8, |n| n.get()),
            max_streams: 64,
            instrument: false,
            metrics: false,
            trace_dir: None,
            quantum: 0,
            watchdog_ms: None,
        }
    }
}

struct StreamEntry {
    /// The resident engine; `None` once the stream has been torn down
    /// (whoever takes the engine out owns releasing the ledger claim and
    /// closing it, so teardown happens exactly once).
    exec: Option<Box<dyn StreamExec>>,
    /// Current ledger claim (drops to 1 when the stream degrades).
    workers: usize,
}

/// A stream slot: its own mutex, so executing one stream never blocks
/// the global table. Lock order is strict — the table lock is always
/// released before an entry lock is taken.
type StreamSlot = Arc<Mutex<StreamEntry>>;

/// The daemon core: plan cache, stream table, admission ledger, and the
/// request dispatcher. Transport-free — [`server`] owns the I/O loops.
pub struct Service {
    opts: ServiceOpts,
    cache: PlanCache,
    ledger: Ledger,
    /// The stream table. Guards only membership: entries carry their own
    /// locks, so a slow `read` on one stream never stalls lookups,
    /// opens, or reads of its neighbors.
    streams: Mutex<HashMap<String, StreamSlot>>,
    shutdown: AtomicBool,
}

/// Stream ids name filesystem artifacts (`<trace_dir>/<id>.trace.json`),
/// so they are confined to a single path component: 1–128 characters
/// from `[A-Za-z0-9._-]`, excluding the special names `.` and `..`. A
/// client-controlled id must never traverse out of the trace directory.
fn valid_stream_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 128
        && id != "."
        && id != ".."
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

impl Service {
    pub fn new(opts: ServiceOpts) -> Self {
        let ledger = Ledger::new(opts.workers);
        Service {
            opts,
            cache: PlanCache::new(),
            ledger,
            streams: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Whether a `shutdown` request has been dispatched (the server
    /// loops poll this to exit).
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Dispatches one request line to one response line. Never panics on
    /// malformed input; failures are structured `{"ok":false,...}`
    /// responses.
    pub fn handle(&self, line: &str) -> String {
        match proto::parse_request(line) {
            Err(detail) => err_response("bad_request", &detail, vec![]),
            Ok(Request::Ping) => ok_response("pong", vec![]),
            Ok(Request::Stats) => self.handle_stats(),
            Ok(Request::Shutdown) => {
                self.shutdown.store(true, Ordering::SeqCst);
                self.close_all();
                ok_response("shutdown", vec![])
            }
            Ok(Request::Open(req)) => self.handle_open(&req),
            Ok(Request::Read { id, n }) => self.handle_read(&id, n),
            Ok(Request::Close { id }) => self.handle_close(&id),
        }
    }

    fn handle_open(&self, req: &OpenReq) -> String {
        if !valid_stream_id(&req.id) {
            return err_response(
                "bad_request",
                "stream id must be 1-128 characters from [A-Za-z0-9._-] (not `.` or `..`)",
                vec![],
            );
        }
        // Fast-path refusal before paying compile cost. Advisory only:
        // the authoritative duplicate/limit check re-runs under the lock
        // acquisition that inserts, so concurrent opens cannot race past
        // it.
        {
            let streams = self.streams.lock().unwrap();
            if let Some(resp) = Self::refuse_open(&streams, &req.id, self.opts.max_streams) {
                return resp;
            }
        }
        let fault = match &req.fault {
            None => None,
            Some(spec) => match InjectFaults::parse(spec) {
                Ok(f) => Some(f),
                Err(e) => {
                    return err_response("bad_request", &format!("bad fault spec: {e}"), vec![])
                }
            },
        };
        // Checked resolution: an invalid STREAMLIN_CYCLE_QUANTUM in the
        // daemon's environment is a structured refusal, not a silent
        // fallback the client can't see.
        let quantum = match resolve_quantum_checked(if req.quantum != 0 {
            req.quantum
        } else {
            self.opts.quantum
        }) {
            Ok(q) => q,
            Err(why) => return err_response("bad_request", &why, vec![]),
        };
        let matmul = req.matmul.unwrap_or_else(|| req.mode.default_strategy());
        let key = PlanKey {
            src_hash: fnv1a64(req.program.as_bytes()),
            config: req.config.clone(),
            sched: req.sched,
            matmul,
            threads: req.threads,
            fission: format!("{:?}", req.fission),
            quantum,
        };
        let (artifact, cached) = match self.cache.get_or_compile(&key, &req.program, req.fission) {
            Ok(pair) => pair,
            Err(detail) => return err_response("compile_error", &detail, vec![]),
        };
        // Admission: claim the stream's worker complement before any
        // pool thread is taken; saturation is a structured refusal (or a
        // bounded wait), never a hang.
        let need = artifact.workers_needed();
        let wait = req.wait_ms.map(Duration::from_millis);
        if let Err(e) = self.ledger.claim(need, wait) {
            let (code, pairs) = match &e {
                admission::AdmitError::Saturated {
                    need,
                    in_use,
                    budget,
                } => (
                    "saturated",
                    vec![
                        ("need".to_string(), Json::Num(*need as f64)),
                        ("in_use".to_string(), Json::Num(*in_use as f64)),
                        ("budget".to_string(), Json::Num(*budget as f64)),
                    ],
                ),
                admission::AdmitError::TooLarge { need, budget } => (
                    "saturated",
                    vec![
                        ("need".to_string(), Json::Num(*need as f64)),
                        ("budget".to_string(), Json::Num(*budget as f64)),
                    ],
                ),
            };
            return err_response(code, &e.to_string(), pairs);
        }
        let watchdog = req
            .watchdog_ms
            .or(self.opts.watchdog_ms)
            .map(Duration::from_millis);
        let exec = match build_exec(&artifact, req.mode, self.opts.instrument, fault, watchdog) {
            Ok(exec) => exec,
            Err(e) => {
                self.ledger.release(need);
                return err_response("run_error", &e.to_string(), vec![]);
            }
        };
        let degraded = exec.degraded().map(str::to_string);
        let mut workers = need;
        if degraded.is_some() && need > 1 {
            // Setup-time degradation: the stream runs single-threaded,
            // so its surplus claim goes straight back to the budget.
            self.ledger.release(need - 1);
            workers = 1;
        }
        {
            // Authoritative admission to the table: re-check duplicate
            // and limit under the same lock acquisition that inserts. A
            // concurrent open of the same id may have won while we were
            // compiling; the loser backs out its ledger claim.
            let mut streams = self.streams.lock().unwrap();
            if let Some(resp) = Self::refuse_open(&streams, &req.id, self.opts.max_streams) {
                drop(streams);
                self.ledger.release(workers);
                let _ = exec.close();
                return resp;
            }
            streams.insert(
                req.id.clone(),
                Arc::new(Mutex::new(StreamEntry {
                    exec: Some(exec),
                    workers,
                })),
            );
        }
        let mut pairs = vec![
            ("id".to_string(), Json::Str(req.id.clone())),
            ("cached".to_string(), Json::Bool(cached)),
            ("compile_ms".to_string(), Json::Num(artifact.compile_ms)),
            ("workers".to_string(), Json::Num(workers as f64)),
            ("width".to_string(), Json::Num(artifact.width as f64)),
            (
                "sched".to_string(),
                Json::Str(
                    if artifact.plan.is_some() {
                        "static"
                    } else {
                        "dynamic"
                    }
                    .into(),
                ),
            ),
        ];
        if let Some(d) = degraded {
            pairs.push(("degraded".to_string(), Json::Str(d)));
        }
        ok_response("open", pairs)
    }

    /// The duplicate/limit refusal, shared by `handle_open`'s advisory
    /// pre-check and the authoritative check under the insert lock.
    fn refuse_open(
        streams: &HashMap<String, StreamSlot>,
        id: &str,
        max_streams: usize,
    ) -> Option<String> {
        if streams.contains_key(id) {
            return Some(err_response(
                "duplicate_stream",
                &format!("stream `{id}` is already open"),
                vec![],
            ));
        }
        if streams.len() >= max_streams {
            return Some(err_response(
                "too_many_streams",
                &format!("{} stream(s) open, limit {}", streams.len(), max_streams),
                vec![],
            ));
        }
        None
    }

    fn handle_read(&self, id: &str, n: usize) -> String {
        // Table lock only for the lookup; the (possibly long) execution
        // runs under the stream's own lock, so neighbors, `stats`, opens
        // and closes proceed while this stream computes.
        let Some(slot) = self.streams.lock().unwrap().get(id).map(Arc::clone) else {
            return err_response("unknown_stream", &format!("no stream `{id}`"), vec![]);
        };
        let mut entry = slot.lock().unwrap();
        let Some(exec) = entry.exec.as_mut() else {
            // Torn down by a concurrent failed read or close.
            return err_response("unknown_stream", &format!("no stream `{id}`"), vec![]);
        };
        match exec.read(n) {
            Ok(out) => {
                if out.just_degraded.is_some() && entry.workers > 1 {
                    // This stream fell back to the single-threaded plan;
                    // its surplus workers return to the budget. Neighbor
                    // streams are untouched.
                    self.ledger.release(entry.workers - 1);
                    entry.workers = 1;
                }
                let exec = entry.exec.as_ref().expect("present above");
                let delivered = exec.delivered();
                let degraded = exec.degraded().map(str::to_string);
                let mut pairs = vec![
                    ("id".to_string(), Json::Str(id.into())),
                    (
                        "values".to_string(),
                        // Sentinel-encoded: JSON would turn NaN/Inf
                        // samples into `null` (see `proto::encode_sample`).
                        Json::arr(out.values.into_iter().map(proto::encode_sample)),
                    ),
                    ("delivered".to_string(), Json::Num(delivered as f64)),
                ];
                if let Some(d) = degraded {
                    pairs.push(("degraded".to_string(), Json::Str(d)));
                }
                ok_response("read", pairs)
            }
            Err(e) => {
                // Non-degradable failure: the program itself is broken
                // (it would fail identically on any executor). The
                // stream is torn down and its claim released.
                let exec = entry.exec.take().expect("present above");
                let workers = entry.workers;
                drop(entry);
                {
                    // Drop the table slot too — but only if it is still
                    // ours (a concurrent close may already have removed
                    // it, and the id may even have been reopened).
                    let mut streams = self.streams.lock().unwrap();
                    if streams.get(id).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                        streams.remove(id);
                    }
                }
                self.ledger.release(workers);
                let _ = exec.close();
                err_response(
                    "run_error",
                    &e.to_string(),
                    vec![("id".to_string(), Json::Str(id.into()))],
                )
            }
        }
    }

    fn handle_close(&self, id: &str) -> String {
        let Some(slot) = self.streams.lock().unwrap().remove(id) else {
            return err_response("unknown_stream", &format!("no stream `{id}`"), vec![]);
        };
        // Waits for an in-flight read on this stream to finish; the
        // table lock is already released, so neighbors are unaffected.
        let mut entry = slot.lock().unwrap();
        let Some(exec) = entry.exec.take() else {
            // A concurrently failing read already tore the stream down
            // (and released its claim).
            return err_response("unknown_stream", &format!("no stream `{id}`"), vec![]);
        };
        let workers = entry.workers;
        drop(entry);
        self.ledger.release(workers);
        let report = exec.close();
        let mut pairs = vec![
            ("id".to_string(), Json::Str(id.into())),
            ("delivered".to_string(), Json::Num(report.delivered as f64)),
            ("flops".to_string(), Json::Num(report.flops as f64)),
            ("mults".to_string(), Json::Num(report.mults as f64)),
            ("firings".to_string(), Json::Num(report.firings as f64)),
        ];
        if let Some(d) = &report.degraded {
            pairs.push(("degraded".to_string(), Json::Str(d.clone())));
        }
        if let Some((summary, trace)) = &report.probe {
            if self.opts.metrics {
                eprintln!("--- stream {id} ---\n{summary}");
            }
            if let Some(dir) = &self.opts.trace_dir {
                let path = format!("{dir}/{id}.trace.json");
                match std::fs::write(&path, trace) {
                    Ok(()) => pairs.push(("trace".to_string(), Json::Str(path))),
                    Err(e) => eprintln!("streamlind: cannot write {path}: {e}"),
                }
            }
        }
        ok_response("close", pairs)
    }

    fn handle_stats(&self) -> String {
        let c = self.cache.stats();
        let open = self.streams.lock().unwrap().len();
        ok_response(
            "stats",
            vec![
                (
                    "cache".to_string(),
                    Json::obj(vec![
                        ("hits", Json::Num(c.hits as f64)),
                        ("misses", Json::Num(c.misses as f64)),
                        ("entries", Json::Num(c.entries as f64)),
                    ]),
                ),
                ("streams".to_string(), Json::Num(open as f64)),
                (
                    "workers".to_string(),
                    Json::obj(vec![
                        ("in_use", Json::Num(self.ledger.in_use() as f64)),
                        ("budget", Json::Num(self.ledger.budget() as f64)),
                    ]),
                ),
                (
                    "pool".to_string(),
                    Json::obj(vec![
                        ("spawned", Json::Num(pool::global_spawned() as f64)),
                        ("idle", Json::Num(pool::global_idle() as f64)),
                        ("retired", Json::Num(pool::global_retired() as f64)),
                    ]),
                ),
            ],
        )
    }

    /// Closes every stream (shutdown path), releasing claims and parking
    /// pipeline workers back on the pool. A slot whose lock is held by a
    /// still-running read is skipped rather than waited on — shutdown
    /// must not hang behind a stalled stream, and the process is exiting
    /// anyway.
    fn close_all(&self) {
        let slots: Vec<StreamSlot> = {
            let mut streams = self.streams.lock().unwrap();
            streams.drain().map(|(_, s)| s).collect()
        };
        for slot in slots {
            let Ok(mut entry) = slot.try_lock() else {
                continue;
            };
            let Some(exec) = entry.exec.take() else {
                continue;
            };
            let workers = entry.workers;
            drop(entry);
            self.ledger.release(workers);
            let _ = exec.close();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.close_all();
    }
}
