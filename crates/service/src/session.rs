//! Per-stream sessions: resident engine state across protocol requests.
//!
//! Each named stream the daemon opens holds a [`StreamExec`] — an engine
//! instantiated from a cached artifact ([`crate::cache`]) that persists
//! between `read` requests, exactly the view of a stream program as a
//! long-lived stateful process. The engine families mirror the one-shot
//! profiler:
//!
//! * **pipeline** ([`PipelineSession`]): the artifact carries a
//!   partition; stage workers park on the process-wide pool between
//!   reads and every read extends the same paced run;
//! * **static plan** ([`PlanEngine`]): single-threaded, cursor kept
//!   across calls;
//! * **data-driven** ([`Engine`]): the fallback for unplannable graphs.
//!
//! All four conventions thread through per stream: the tally (`mode`),
//! the probe (per-stream [`Recorder`] lanes when the daemon is
//! instrumented), the fault plan (injectable per stream), and
//! facts-not-AST (sessions execute the cached `FlatGraph`, whose nodes
//! carry their `FilterFacts`). Output determinism is the cached
//! executors' contract: a stream's value sequence is a deterministic
//! prefix of the program's output, independent of read batching and of
//! whatever neighbor streams do.
//!
//! **Per-stream degradation** (PR 7 contract, scoped to one stream): a
//! degradable failure ([`RunError::is_degradable`] — a stall or a lost
//! worker) tears down *that stream's* pipeline, rebuilds the canonical
//! single-threaded plan engine from the artifact's pre-fission pair,
//! fast-forwards it past the values already delivered, and keeps
//! serving. Neighbor streams hold their own worker complements and never
//! observe the failure; the pool self-heals retired threads.

use std::time::Duration;

use streamlin_runtime::engine::{Engine, RunError};
use streamlin_runtime::flat::FlatGraph;
use streamlin_runtime::measure::ExecMode;
use streamlin_runtime::parallel::PipelineSession;
use streamlin_runtime::plan::{ExecPlan, PlanEngine};
use streamlin_support::{
    InjectFaults, NoCount, NoFault, NoProbe, OpCounter, Probe, Recorder, Tally,
};

use crate::cache::CachedArtifact;

/// One batch of values out of a stream, plus whether this read is the
/// one that degraded the stream (the server releases the surplus worker
/// claim exactly once, on that transition).
pub struct ReadOut {
    pub values: Vec<f64>,
    pub just_degraded: Option<String>,
}

/// Final accounting handed back when a stream closes.
pub struct CloseReport {
    /// Values delivered over the stream's lifetime.
    pub delivered: usize,
    /// Floating-point operations (all-zero under [`ExecMode::Fast`]).
    pub flops: u64,
    pub mults: u64,
    pub firings: u64,
    /// The degradation reason, if the stream fell back mid-life.
    pub degraded: Option<String>,
    /// `(summary, chrome_trace)` when the stream ran instrumented.
    pub probe: Option<(String, String)>,
}

/// A per-stream probe that can surface its telemetry at close.
/// [`NoProbe`] streams report nothing (and compile the record sites
/// away); [`Recorder`] streams yield the summary table and the Chrome
/// trace, which the daemon routes per stream under `--metrics` /
/// `--trace-out <dir>`.
pub trait ProbeReport: Probe + Send + 'static {
    fn report(&self) -> Option<(String, String)>;
}

impl ProbeReport for NoProbe {
    fn report(&self) -> Option<(String, String)> {
        None
    }
}

impl ProbeReport for Recorder {
    fn report(&self) -> Option<(String, String)> {
        Some((self.summary(), self.chrome_trace()))
    }
}

/// The object-safe face of a resident engine: the daemon stores streams
/// as `Box<dyn StreamExec>` so one map holds every monomorphization
/// (tally × probe × fault × engine family).
pub trait StreamExec: Send {
    /// Produces the next `n` values of the stream, in order.
    ///
    /// # Errors
    ///
    /// Non-degradable engine failures (program errors recur identically
    /// on any executor, so they are surfaced, not degraded).
    fn read(&mut self, n: usize) -> Result<ReadOut, RunError>;
    /// Values delivered so far.
    fn delivered(&self) -> usize;
    /// Whether (and why) the stream has degraded to the single-threaded
    /// plan.
    fn degraded(&self) -> Option<&str>;
    /// Tears the engine down and reports final accounting.
    fn close(self: Box<Self>) -> CloseReport;
}

/// Instantiates a resident engine from a cached artifact.
///
/// `instrument` selects a per-stream [`Recorder`]; `fault` arms that
/// stream's injection sites (pipeline artifacts only — the
/// single-threaded engines have none, matching `streamlinc`);
/// `watchdog` arms the pipeline stall watchdog.
///
/// # Errors
///
/// Pipeline setup failures (pool refusals surface as
/// [`RunError::WorkerLost`]).
pub fn build_exec(
    art: &CachedArtifact,
    mode: ExecMode,
    instrument: bool,
    fault: Option<InjectFaults>,
    watchdog: Option<Duration>,
) -> Result<Box<dyn StreamExec>, RunError> {
    match (mode, instrument) {
        (ExecMode::Measured, false) => {
            build_with::<OpCounter, NoProbe>(art, NoProbe, fault, watchdog)
        }
        (ExecMode::Measured, true) => {
            build_with::<OpCounter, Recorder>(art, Recorder::new(), fault, watchdog)
        }
        (ExecMode::Fast, false) => build_with::<NoCount, NoProbe>(art, NoProbe, fault, watchdog),
        (ExecMode::Fast, true) => {
            build_with::<NoCount, Recorder>(art, Recorder::new(), fault, watchdog)
        }
    }
}

fn build_with<T, P>(
    art: &CachedArtifact,
    mut probe: P,
    fault: Option<InjectFaults>,
    watchdog: Option<Duration>,
) -> Result<Box<dyn StreamExec>, RunError>
where
    T: Tally + Default + Send + 'static,
    P: ProbeReport,
{
    match (&art.part, &art.plan) {
        (Some(part), Some(plan)) => {
            let session = match fault {
                Some(f) => PipelineSession::start::<T, InjectFaults>(
                    art.flat.clone(),
                    plan,
                    part,
                    art.scale,
                    art.quantum,
                    &mut probe,
                    f,
                    watchdog,
                ),
                None => PipelineSession::start::<T, NoFault>(
                    art.flat.clone(),
                    plan,
                    part,
                    art.scale,
                    art.quantum,
                    &mut probe,
                    NoFault,
                    watchdog,
                ),
            };
            match session {
                Ok(s) => Ok(Box::new(PipeExec::<T, P> {
                    session: Some(s),
                    probe,
                    canonical: art.canonical.clone(),
                    fallback: None,
                    handed: 0,
                    degraded: None,
                })),
                // Setup-time degradable failure (e.g. the pool refused
                // threads): the stream starts life on the canonical
                // single-threaded plan instead of failing the open.
                Err(e) if e.is_degradable() && art.canonical.is_some() => {
                    let (flat, plan) = art.canonical.clone().expect("guarded");
                    Ok(Box::new(PipeExec::<T, P> {
                        session: None,
                        probe,
                        canonical: None,
                        fallback: Some(PlanEngine::<T>::new(flat, plan)),
                        handed: 0,
                        degraded: Some(e.to_string()),
                    }))
                }
                Err(e) => Err(e),
            }
        }
        (None, Some(plan)) => Ok(Box::new(PlanExec::<T, P> {
            engine: PlanEngine::new(art.flat.clone(), plan.clone()),
            probe,
            handed: 0,
        })),
        (_, None) => Ok(Box::new(DynExec::<T, P> {
            engine: Engine::new(art.flat.clone()),
            probe,
            handed: 0,
        })),
    }
}

/// Pipeline-backed stream: resident [`PipelineSession`] until a
/// degradable failure, then the canonical single-threaded replay.
struct PipeExec<T: Tally + Default + Send + 'static, P: ProbeReport> {
    session: Option<PipelineSession<P>>,
    probe: P,
    canonical: Option<(FlatGraph, ExecPlan)>,
    fallback: Option<PlanEngine<T>>,
    /// Values handed to the client so far (the fast-forward target on
    /// degradation).
    handed: usize,
    degraded: Option<String>,
}

impl<T: Tally + Default + Send + 'static, P: ProbeReport> PipeExec<T, P> {
    /// Replaces the dead pipeline with the canonical plan engine,
    /// fast-forwarded past everything already delivered. Bit-identity of
    /// the continuation is the executors' shared determinism contract.
    fn degrade(&mut self, cause: &RunError) -> Result<(), RunError> {
        if let Some(s) = self.session.take() {
            // Absorb the dead session's telemetry; its stored failure is
            // expected here, so the result is dropped deliberately.
            let _ = s.finish(&mut self.probe);
        }
        let (flat, plan) = self
            .canonical
            .take()
            .expect("degrade is only entered with a canonical pair");
        let mut engine = PlanEngine::<T>::new(flat, plan);
        engine.run_probed(self.handed, &mut self.probe)?;
        self.fallback = Some(engine);
        self.degraded = Some(cause.to_string());
        Ok(())
    }

    fn read_fallback(&mut self, n: usize) -> Result<Vec<f64>, RunError> {
        let engine = self.fallback.as_mut().expect("fallback engine present");
        let goal = self.handed + n;
        engine.run_probed(goal, &mut self.probe)?;
        Ok(engine.printed()[self.handed..goal].to_vec())
    }
}

impl<T: Tally + Default + Send + 'static, P: ProbeReport> StreamExec for PipeExec<T, P> {
    fn read(&mut self, n: usize) -> Result<ReadOut, RunError> {
        if self.fallback.is_some() {
            let values = self.read_fallback(n)?;
            self.handed += n;
            return Ok(ReadOut {
                values,
                just_degraded: None,
            });
        }
        let session = self.session.as_mut().expect("live session");
        match session.read(n) {
            Ok(values) => {
                let values = values.to_vec();
                self.handed += n;
                Ok(ReadOut {
                    values,
                    just_degraded: None,
                })
            }
            Err(e) if e.is_degradable() && self.canonical.is_some() => {
                self.degrade(&e)?;
                let values = self.read_fallback(n)?;
                self.handed += n;
                Ok(ReadOut {
                    values,
                    just_degraded: Some(e.to_string()),
                })
            }
            Err(e) => Err(e),
        }
    }

    fn delivered(&self) -> usize {
        self.handed
    }

    fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    fn close(mut self: Box<Self>) -> CloseReport {
        let (flops, mults, firings) = if let Some(engine) = &self.fallback {
            let ops = engine.ops().counts();
            (ops.flops(), ops.mults(), engine.firings())
        } else if let Some(s) = self.session.take() {
            match s.finish(&mut self.probe) {
                Ok(out) => (out.ops.flops(), out.ops.mults(), out.firings),
                Err(_) => (0, 0, 0),
            }
        } else {
            (0, 0, 0)
        };
        CloseReport {
            delivered: self.handed,
            flops,
            mults,
            firings,
            degraded: self.degraded.clone(),
            probe: self.probe.report(),
        }
    }
}

/// Single-threaded static-plan stream.
struct PlanExec<T: Tally + Default, P: ProbeReport> {
    engine: PlanEngine<T>,
    probe: P,
    handed: usize,
}

impl<T: Tally + Default + Send + 'static, P: ProbeReport> StreamExec for PlanExec<T, P> {
    fn read(&mut self, n: usize) -> Result<ReadOut, RunError> {
        let goal = self.handed + n;
        self.engine.run_probed(goal, &mut self.probe)?;
        let values = self.engine.printed()[self.handed..goal].to_vec();
        self.handed = goal;
        Ok(ReadOut {
            values,
            just_degraded: None,
        })
    }

    fn delivered(&self) -> usize {
        self.handed
    }

    fn degraded(&self) -> Option<&str> {
        None
    }

    fn close(self: Box<Self>) -> CloseReport {
        let ops = self.engine.ops().counts();
        CloseReport {
            delivered: self.handed,
            flops: ops.flops(),
            mults: ops.mults(),
            firings: self.engine.firings(),
            degraded: None,
            probe: self.probe.report(),
        }
    }
}

/// Data-driven stream (graphs with no static plan, e.g. feedback loops).
struct DynExec<T: Tally + Default, P: ProbeReport> {
    engine: Engine<T>,
    probe: P,
    handed: usize,
}

impl<T: Tally + Default + Send + 'static, P: ProbeReport> StreamExec for DynExec<T, P> {
    fn read(&mut self, n: usize) -> Result<ReadOut, RunError> {
        let goal = self.handed + n;
        self.engine.run_probed(goal, &mut self.probe)?;
        let values = self.engine.printed()[self.handed..goal].to_vec();
        self.handed = goal;
        Ok(ReadOut {
            values,
            just_degraded: None,
        })
    }

    fn delivered(&self) -> usize {
        self.handed
    }

    fn degraded(&self) -> Option<&str> {
        None
    }

    fn close(self: Box<Self>) -> CloseReport {
        let ops = self.engine.ops().counts();
        CloseReport {
            delivered: self.handed,
            flops: ops.flops(),
            mults: ops.mults(),
            firings: self.engine.firings(),
            degraded: None,
            probe: self.probe.report(),
        }
    }
}
