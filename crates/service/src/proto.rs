//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, over stdio or a
//! TCP connection — built entirely on [`streamlin_support::json`] (the
//! workspace carries no serialization dependency). Values travel as JSON
//! numbers printed with Rust's shortest-round-trip `{}` formatting, so a
//! finite `f64` parsed back from the wire is **bit-identical** to the
//! engine's output — the service equivalence suite leans on this. JSON
//! has no spelling for non-finite numbers (the writer would degrade
//! them to `null`), so samples that overflow or divide to NaN travel as
//! the string sentinels `"inf"`/`"-inf"`/`"nan"` instead
//! ([`encode_sample`]/[`decode_sample`]), keeping every program
//! observable through the service.
//!
//! Requests (`op` selects the verb; unknown fields are ignored):
//!
//! ```json
//! {"op":"open","id":"s1","program":"...","config":"autosel",
//!  "sched":"auto","mode":"measured","matmul":"unrolled","threads":2,
//!  "fission":"auto","quantum":4,"fault":"7:die@s0","watchdog_ms":2000,
//!  "wait_ms":100}
//! {"op":"read","id":"s1","n":64}
//! {"op":"close","id":"s1"}
//! {"op":"stats"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`; failures are structured —
//! `{"ok":false,"error":"saturated","need":2,"in_use":4,"budget":4,...}`
//! is the admission-control refusal, never a hang.

use streamlin_runtime::fission::Fission;
use streamlin_runtime::measure::{ExecMode, Scheduler};
use streamlin_runtime::MatMulStrategy;
use streamlin_support::json::{self, Json};

/// A parsed `open` request.
#[derive(Debug, Clone)]
pub struct OpenReq {
    pub id: String,
    pub program: String,
    pub config: String,
    pub sched: Scheduler,
    pub mode: ExecMode,
    pub matmul: Option<MatMulStrategy>,
    pub threads: Option<usize>,
    pub fission: Fission,
    /// `0` defers to the daemon default (then env, then built-in).
    pub quantum: u64,
    /// Per-stream fault-injection spec (the `--fault-inject` grammar).
    pub fault: Option<String>,
    pub watchdog_ms: Option<u64>,
    /// How long `open` may wait for admission before a structured
    /// refusal; absent = refuse immediately.
    pub wait_ms: Option<u64>,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    Open(Box<OpenReq>),
    Read { id: String, n: usize },
    Close { id: String },
    Stats,
    Ping,
    Shutdown,
}

fn str_field(v: &Json, key: &str) -> Option<String> {
    v.get(key).and_then(Json::as_str).map(str::to_string)
}

fn num_field(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_num)
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable description of what is malformed (the server wraps
/// it into a `bad_request` response).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let op = str_field(&v, "op").ok_or("missing \"op\"")?;
    match op.as_str() {
        "open" => {
            let id = str_field(&v, "id").ok_or("open: missing \"id\"")?;
            let program = str_field(&v, "program").ok_or("open: missing \"program\"")?;
            let sched = match str_field(&v, "sched").as_deref() {
                None | Some("auto") => Scheduler::Auto,
                Some("static") => Scheduler::Static,
                Some("dynamic") => Scheduler::Dynamic,
                Some(other) => return Err(format!("open: unknown sched `{other}`")),
            };
            let mode = match str_field(&v, "mode").as_deref() {
                None | Some("measured") => ExecMode::Measured,
                Some("fast") => ExecMode::Fast,
                Some(other) => return Err(format!("open: unknown mode `{other}`")),
            };
            let matmul = match str_field(&v, "matmul").as_deref() {
                None => None,
                Some("unrolled") => Some(MatMulStrategy::Unrolled),
                Some("diagonal") => Some(MatMulStrategy::Diagonal),
                Some("blocked") => Some(MatMulStrategy::Blocked),
                Some("simd") => Some(MatMulStrategy::Simd),
                Some(other) => return Err(format!("open: unknown matmul `{other}`")),
            };
            let fission = match v.get("fission") {
                None => Fission::Off,
                Some(Json::Str(s)) if s == "auto" => Fission::Auto,
                Some(Json::Str(s)) if s == "off" => Fission::Off,
                Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 => Fission::Width(*n as usize),
                Some(other) => return Err(format!("open: bad fission `{other:?}`")),
            };
            let threads = match num_field(&v, "threads") {
                None => None,
                Some(n) if n >= 1.0 && n.fract() == 0.0 => Some(n as usize),
                Some(n) => return Err(format!("open: bad threads `{n}`")),
            };
            let quantum = match num_field(&v, "quantum") {
                None => 0,
                Some(q) if q >= 1.0 && q.fract() == 0.0 => q as u64,
                Some(q) => return Err(format!("open: bad quantum `{q}`")),
            };
            Ok(Request::Open(Box::new(OpenReq {
                id,
                program,
                config: str_field(&v, "config").unwrap_or_else(|| "autosel".into()),
                sched,
                mode,
                matmul,
                threads,
                fission,
                quantum,
                fault: str_field(&v, "fault"),
                watchdog_ms: num_field(&v, "watchdog_ms").map(|n| n as u64),
                wait_ms: num_field(&v, "wait_ms").map(|n| n as u64),
            })))
        }
        "read" => {
            let id = str_field(&v, "id").ok_or("read: missing \"id\"")?;
            let n = match num_field(&v, "n") {
                Some(n) if n >= 0.0 && n.fract() == 0.0 => n as usize,
                _ => return Err("read: missing or bad \"n\"".into()),
            };
            Ok(Request::Read { id, n })
        }
        "close" => Ok(Request::Close {
            id: str_field(&v, "id").ok_or("close: missing \"id\"")?,
        }),
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Encodes one output sample for the wire: finite values as JSON
/// numbers (shortest-round-trip, bit-identical on parse-back),
/// non-finite values as the string sentinels `"inf"`/`"-inf"`/`"nan"`
/// — the JSON writer would otherwise flatten them to `null`, silently
/// corrupting any program whose arithmetic overflows.
pub fn encode_sample(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else if v.is_nan() {
        Json::Str("nan".into())
    } else if v > 0.0 {
        Json::Str("inf".into())
    } else {
        Json::Str("-inf".into())
    }
}

/// Decodes one wire sample produced by [`encode_sample`]. `None` for
/// anything that is neither a number nor a recognized sentinel.
pub fn decode_sample(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n),
        Json::Str(s) => match s.as_str() {
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            "nan" => Some(f64::NAN),
            _ => None,
        },
        _ => None,
    }
}

/// A successful response: `{"ok":true,"op":<op>, ...pairs}`.
pub fn ok_response(op: &str, pairs: Vec<(String, Json)>) -> String {
    let mut all = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::Str(op.into())),
    ];
    all.extend(pairs);
    Json::obj(all).dump()
}

/// A failure response: `{"ok":false,"error":<code>,"detail":..., ...}`.
pub fn err_response(code: &str, detail: &str, pairs: Vec<(String, Json)>) -> String {
    let mut all = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(code.into())),
        ("detail".to_string(), Json::Str(detail.into())),
    ];
    all.extend(pairs);
    Json::obj(all).dump()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_defaults_mirror_streamlinc() {
        let r = parse_request(r#"{"op":"open","id":"a","program":"p"}"#).unwrap();
        let Request::Open(o) = r else {
            panic!("not open")
        };
        assert_eq!(o.config, "autosel");
        assert_eq!(o.sched, Scheduler::Auto);
        assert_eq!(o.mode, ExecMode::Measured);
        assert_eq!(o.matmul, None);
        assert_eq!(o.threads, None);
        assert_eq!(o.fission, Fission::Off);
        assert_eq!(o.quantum, 0);
    }

    #[test]
    fn knobs_parse() {
        let r = parse_request(
            r#"{"op":"open","id":"a","program":"p","mode":"fast","threads":4,
                "fission":2,"quantum":8,"fault":"7:die@s0","watchdog_ms":500,"wait_ms":10}"#,
        )
        .unwrap();
        let Request::Open(o) = r else {
            panic!("not open")
        };
        assert_eq!(o.mode, ExecMode::Fast);
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.fission, Fission::Width(2));
        assert_eq!(o.quantum, 8);
        assert_eq!(o.fault.as_deref(), Some("7:die@s0"));
        assert_eq!(o.watchdog_ms, Some(500));
        assert_eq!(o.wait_ms, Some(10));
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        assert!(parse_request("").is_err());
        assert!(parse_request("{}").is_err());
        assert!(parse_request(r#"{"op":"read","id":"a"}"#).is_err());
        assert!(parse_request(r#"{"op":"warp"}"#).is_err());
        assert!(parse_request(r#"{"op":"open","id":"a","program":"p","sched":"hyper"}"#).is_err());
    }

    #[test]
    fn responses_are_single_lines_that_parse_back() {
        let ok = ok_response("read", vec![("n".into(), Json::Num(3.0))]);
        assert!(!ok.contains('\n'));
        let v = json::parse(&ok).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        let err = err_response("saturated", "pool full", vec![]);
        let v = json::parse(&err).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("saturated"));
    }
}
