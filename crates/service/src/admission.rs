//! Admission control: a worker-thread ledger with backpressure.
//!
//! The daemon multiplexes every stream onto the process-wide worker pool
//! ([`streamlin_runtime::pool`]). The pool itself grows on demand, so
//! oversubscription — not exhaustion — is the failure mode: admitting a
//! fourth 4-stage pipeline onto an 8-way machine just makes all of them
//! slower and the watchdogs twitchier. The ledger enforces a budget
//! *before* threads are taken: opening a stream claims its partition's
//! actual stage count (1 for single-threaded streams), and a claim that
//! would exceed the budget either waits (bounded, `wait_ms`) for a
//! neighbor to close or is refused **with a structured error** — the
//! protocol turns [`AdmitError::Saturated`] into `{"ok":false,
//! "error":"saturated", ...}`, never a hang, and the client decides
//! whether to retry, queue, or shed load.
//!
//! Releases happen on stream close and on per-stream degradation (a
//! degraded stream keeps serving single-threaded, so its surplus claim
//! returns to the budget immediately).

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Refusal detail for a claim that could not be admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The budget cannot fit the claim right now (and did not free up
    /// within the caller's wait bound).
    Saturated {
        need: usize,
        in_use: usize,
        budget: usize,
    },
    /// The claim can never fit: it exceeds the whole budget.
    TooLarge { need: usize, budget: usize },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Saturated {
                need,
                in_use,
                budget,
            } => write!(
                f,
                "pool saturated: need {need} worker(s), {in_use}/{budget} in use"
            ),
            AdmitError::TooLarge { need, budget } => {
                write!(
                    f,
                    "stream needs {need} worker(s) but the budget is {budget}"
                )
            }
        }
    }
}

/// The ledger: worker budget, current claims, and a condvar so bounded
/// waits wake up as soon as a neighbor releases.
pub struct Ledger {
    budget: usize,
    state: Mutex<usize>,
    freed: Condvar,
}

impl Ledger {
    pub fn new(budget: usize) -> Self {
        Ledger {
            budget: budget.max(1),
            state: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Total worker budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Workers currently claimed.
    pub fn in_use(&self) -> usize {
        *self.state.lock().unwrap()
    }

    /// Claims `need` workers, waiting up to `wait` for capacity when the
    /// ledger is momentarily full. `wait = None` refuses immediately.
    ///
    /// # Errors
    ///
    /// [`AdmitError::TooLarge`] when the claim can never fit;
    /// [`AdmitError::Saturated`] when it does not fit now (structured
    /// backpressure — the caller reports it, it never blocks
    /// indefinitely).
    pub fn claim(&self, need: usize, wait: Option<Duration>) -> Result<(), AdmitError> {
        let need = need.max(1);
        if need > self.budget {
            return Err(AdmitError::TooLarge {
                need,
                budget: self.budget,
            });
        }
        let mut in_use = self.state.lock().unwrap();
        if *in_use + need > self.budget {
            if let Some(wait) = wait {
                let (guard, timeout) = self
                    .freed
                    .wait_timeout_while(in_use, wait, |u| *u + need > self.budget)
                    .unwrap();
                in_use = guard;
                if timeout.timed_out() && *in_use + need > self.budget {
                    return Err(AdmitError::Saturated {
                        need,
                        in_use: *in_use,
                        budget: self.budget,
                    });
                }
            } else {
                return Err(AdmitError::Saturated {
                    need,
                    in_use: *in_use,
                    budget: self.budget,
                });
            }
        }
        *in_use += need;
        Ok(())
    }

    /// Returns `count` workers to the budget and wakes bounded waiters.
    pub fn release(&self, count: usize) {
        let mut in_use = self.state.lock().unwrap();
        *in_use = in_use.saturating_sub(count);
        drop(in_use);
        self.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn refusal_is_structured_and_immediate() {
        let l = Ledger::new(4);
        l.claim(3, None).unwrap();
        assert_eq!(
            l.claim(2, None),
            Err(AdmitError::Saturated {
                need: 2,
                in_use: 3,
                budget: 4
            })
        );
        l.claim(1, None).unwrap();
        assert_eq!(l.in_use(), 4);
    }

    #[test]
    fn oversized_claims_are_rejected_outright() {
        let l = Ledger::new(2);
        assert_eq!(
            l.claim(3, Some(Duration::from_secs(60))),
            Err(AdmitError::TooLarge { need: 3, budget: 2 })
        );
    }

    #[test]
    fn release_admits_a_bounded_waiter() {
        let l = Arc::new(Ledger::new(2));
        l.claim(2, None).unwrap();
        let l2 = Arc::clone(&l);
        let waiter = thread::spawn(move || l2.claim(1, Some(Duration::from_secs(10))));
        thread::sleep(Duration::from_millis(50));
        l.release(2);
        waiter.join().unwrap().unwrap();
        assert_eq!(l.in_use(), 1);
    }

    #[test]
    fn bounded_wait_times_out_to_a_refusal() {
        let l = Ledger::new(1);
        l.claim(1, None).unwrap();
        let err = l.claim(1, Some(Duration::from_millis(30))).unwrap_err();
        assert!(matches!(err, AdmitError::Saturated { .. }));
    }
}
