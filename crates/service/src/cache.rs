//! The plan cache: compile once per distinct (program, configuration).
//!
//! One-shot `streamlinc` pays the whole front end — parse, elaborate,
//! linear analysis, replacement selection, lowering, schedule
//! compilation, fission, partitioning — on every invocation. The daemon
//! pays it once: [`PlanCache::get_or_compile`] keys on the program's
//! content hash (FNV-1a 64 over the source text) crossed with every knob
//! that changes the compiled artifact (config, scheduler, matmul
//! strategy, thread budget, fission request, cycle quantum), and stores
//! the fully elaborated artifact — the lowered [`FlatGraph`] (with each
//! filter's `FilterFacts` intact, per the facts-not-AST convention), the
//! compiled [`ExecPlan`], the fission rewrite, and the [`Partition`] —
//! behind an [`Arc`]. Opening a stream for a cached key clones graph and
//! plan out of the artifact (cheap relative to compilation) and fires up
//! an engine; the front end never runs again.
//!
//! Hits and misses are counted; the `stats` protocol op exposes them, and
//! `tests/service_equivalence.rs` pins that a re-opened program is a hit
//! (the equivalence suite's proof that elaborate/lower/analyze/plan were
//! skipped).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use streamlin_core::combine::{analyze_graph, replace, ReplaceOptions, ReplaceTarget};
use streamlin_core::cost::CostModel;
use streamlin_core::select::{select, SelectOptions};
use streamlin_runtime::fission::Fission;
use streamlin_runtime::flat::{flatten, FlatGraph};
use streamlin_runtime::measure::Scheduler;
use streamlin_runtime::plan::{self, ExecPlan};
use streamlin_runtime::{MatMulStrategy, Partition};
use streamlin_support::NoFault;

/// FNV-1a 64-bit content hash — the program identity in cache keys. Not
/// cryptographic; collision risk is irrelevant at plan-cache scale and
/// the full key still includes every compilation knob.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything that selects a distinct compiled artifact.
///
/// The execution mode is deliberately **not** part of the key: it only
/// selects the engine's `Tally` at build time, and its one compile-time
/// effect — the default matmul strategy — is already captured by the
/// resolved `matmul` field. Fast and Measured streams of the same
/// program share one artifact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// FNV-1a 64 of the source text.
    pub src_hash: u64,
    /// Replacement configuration (`baseline`/`linear`/`freq`/`redund`/
    /// `autosel`).
    pub config: String,
    pub sched: Scheduler,
    pub matmul: MatMulStrategy,
    /// Pipeline stage budget; `None` = the classic single-threaded
    /// engines.
    pub threads: Option<usize>,
    /// Fission request, canonicalized to a label (`Fission` itself does
    /// not implement `Hash`).
    pub fission: String,
    /// Resolved cycle quantum (the pacing protocol's run-length unit —
    /// fission's cycle expansion must divide it, so it shapes the
    /// artifact).
    pub quantum: u64,
}

/// A fully compiled program, ready to instantiate engines from.
#[derive(Debug)]
pub struct CachedArtifact {
    /// The graph to execute: post-fission when the pass engaged.
    pub flat: FlatGraph,
    /// The compiled static schedule; `None` = data-driven execution
    /// (feedback loops under `auto`, or `--sched dynamic`).
    pub plan: Option<ExecPlan>,
    /// The pipeline partition, present when a thread budget was given
    /// and a plan exists.
    pub part: Option<Partition>,
    /// The canonical *pre-fission* graph and plan: the single-threaded
    /// replay source for per-stream graceful degradation (PR 7
    /// contract), retained whenever a pipeline artifact exists.
    pub canonical: Option<(FlatGraph, ExecPlan)>,
    /// Original steady cycles one post-fission cycle spans.
    pub scale: u64,
    /// Fission width that was actually applied (1 = unfissed).
    pub width: usize,
    /// Resolved cycle quantum baked into this artifact.
    pub quantum: u64,
    /// Wall-clock cost of the full front end (parse through partition),
    /// in milliseconds — the price a cache hit avoids.
    pub compile_ms: f64,
}

impl CachedArtifact {
    /// Worker threads a pipeline stream of this artifact occupies (the
    /// partition's actual stage count, which may be below the requested
    /// budget); 1 for single-threaded execution.
    pub fn workers_needed(&self) -> usize {
        self.part.as_ref().map_or(1, |p| p.num_stages)
    }
}

/// Cache statistics, exposed by the `stats` protocol op.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

/// The cache proper: a keyed map of [`Arc`]'d artifacts plus counters.
#[derive(Default)]
pub struct PlanCache {
    inner: Mutex<CacheInner>,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<PlanKey, Arc<CachedArtifact>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let g = self.inner.lock().unwrap();
        CacheStats {
            hits: g.hits,
            misses: g.misses,
            entries: g.map.len(),
        }
    }

    /// Looks up the artifact for `key`, compiling `src` through the full
    /// front end on a miss. Returns the artifact and whether this was a
    /// hit. Compilation runs outside the cache lock would be nicer for
    /// concurrent opens of *different* programs, but correctness first:
    /// the lock also deduplicates concurrent compiles of the *same*
    /// program, which is the case the daemon actually sees.
    ///
    /// # Errors
    ///
    /// Any front-end failure (parse, elaborate, plan, …) as a displayable
    /// message; errors are not cached.
    pub fn get_or_compile(
        &self,
        key: &PlanKey,
        src: &str,
        fission: Fission,
    ) -> Result<(Arc<CachedArtifact>, bool), String> {
        let mut g = self.inner.lock().unwrap();
        if let Some(a) = g.map.get(key).map(Arc::clone) {
            g.hits += 1;
            return Ok((a, true));
        }
        let artifact = Arc::new(compile_artifact(
            src,
            &key.config,
            key.sched,
            key.matmul,
            key.threads,
            fission,
            key.quantum,
        )?);
        g.misses += 1;
        g.map.insert(key.clone(), Arc::clone(&artifact));
        Ok((artifact, false))
    }
}

/// The full front end, mirroring `streamlinc`'s one-shot path so cached
/// execution is bit-identical to the CLI: parse → elaborate → analyze →
/// replace/select → flatten → plan → fission → partition.
fn compile_artifact(
    src: &str,
    config: &str,
    sched: Scheduler,
    matmul: MatMulStrategy,
    threads: Option<usize>,
    fission: Fission,
    quantum: u64,
) -> Result<CachedArtifact, String> {
    let t0 = Instant::now();
    let program = streamlin_lang::parse(src).map_err(|e| e.to_string())?;
    let graph = streamlin_graph::elaborate(&program).map_err(|e| e.to_string())?;
    let analysis = analyze_graph(&graph);
    let opt = match config {
        "baseline" => replace(&graph, &analysis, &ReplaceOptions::per_filter()),
        "linear" => replace(&graph, &analysis, &ReplaceOptions::maximal_linear()),
        "freq" => replace(&graph, &analysis, &ReplaceOptions::maximal_freq()),
        "redund" => replace(
            &graph,
            &analysis,
            &ReplaceOptions {
                combine: true,
                target: ReplaceTarget::Redund,
            },
        ),
        "autosel" => {
            select(
                &graph,
                &analysis,
                &CostModel::default(),
                &SelectOptions::default(),
            )
            .map_err(|e| e.to_string())?
            .opt
        }
        other => return Err(format!("unknown config `{other}`")),
    };
    let flat = flatten(&opt, matmul).map_err(|e| e.to_string())?;
    let compiled = match sched {
        Scheduler::Dynamic => None,
        Scheduler::Static => Some(plan::compile(&flat).map_err(|e| e.to_string())?),
        Scheduler::Auto if opt.has_feedback() => None,
        Scheduler::Auto => plan::compile(&flat).ok(),
    };
    // Canonical single-threaded pair, kept for per-stream degradation
    // whenever this artifact will run on the pipeline executor.
    let canonical = match (&compiled, threads) {
        (Some(p), Some(_)) => Some((flat.clone(), p.clone())),
        _ => None,
    };
    // Fission (pipeline artifacts only — the single-threaded engines run
    // the canonical graph): refusals fall back to the unfissed pair,
    // exactly like the one-shot profiler.
    let model = CostModel::default();
    let (flat, compiled, scale, width) = match (compiled, threads) {
        (Some(p), Some(t)) if fission != Fission::Off => {
            match streamlin_runtime::fiss_bottleneck(
                &flat, &p, fission, t, &model, &NoFault, quantum,
            ) {
                Ok((fissed, info)) => match plan::compile(&fissed) {
                    Ok(p2) => (fissed, Some(p2), info.scale, info.width),
                    Err(_) => (flat, Some(p), 1, 1),
                },
                Err(_) => (flat, Some(p), 1, 1),
            }
        }
        (c, _) => (flat, c, 1, 1),
    };
    let part = match (&compiled, threads) {
        (Some(p), Some(t)) => Some(streamlin_runtime::partition(&flat, p, t, &model)),
        _ => None,
    };
    Ok(CachedArtifact {
        flat,
        plan: compiled,
        part,
        canonical,
        scale,
        width,
        quantum,
        compile_ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "void->void pipeline Main { add S(); add K(); }
         void->float filter S { float x; work push 1 { push(x++); } }
         float->void filter K { work pop 1 { println(2 * pop()); } }";

    fn key(threads: Option<usize>) -> PlanKey {
        PlanKey {
            src_hash: fnv1a64(PROGRAM.as_bytes()),
            config: "autosel".into(),
            sched: Scheduler::Auto,
            matmul: MatMulStrategy::Simd,
            threads,
            fission: "off".into(),
            quantum: 4,
        }
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_artifact() {
        let cache = PlanCache::new();
        let (a, hit) = cache
            .get_or_compile(&key(None), PROGRAM, Fission::Off)
            .unwrap();
        assert!(!hit);
        let (b, hit) = cache
            .get_or_compile(&key(None), PROGRAM, Fission::Off)
            .unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_knobs_are_distinct_entries() {
        let cache = PlanCache::new();
        cache
            .get_or_compile(&key(None), PROGRAM, Fission::Off)
            .unwrap();
        let (a, hit) = cache
            .get_or_compile(&key(Some(2)), PROGRAM, Fission::Off)
            .unwrap();
        assert!(!hit);
        assert!(a.part.is_some(), "pipeline key carries a partition");
        assert!(
            a.canonical.is_some(),
            "pipeline key retains the canonical pair"
        );
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = PlanCache::new();
        let mut k = key(None);
        k.src_hash = 1;
        assert!(cache
            .get_or_compile(&k, "not a program", Fission::Off)
            .is_err());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
