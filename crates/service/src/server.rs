//! Transport loops: stdio (the default) and TCP.
//!
//! Both speak the same line-delimited protocol through
//! [`Service::handle`]; neither owns any state of its own. The stdio
//! loop is what tests and supervised deployments drive (one daemon per
//! pipe pair, shuts down on EOF or `{"op":"shutdown"}`); the TCP loop
//! accepts any number of connections, each served on its own thread
//! against the shared [`Service`] — streams are named, so clients on
//! different connections can even share a stream, and the dispatcher's
//! locking keeps every request/response pair atomic.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::Service;

/// Serves requests from `input` to `output` until EOF or shutdown.
///
/// # Errors
///
/// I/O failures on the transport (protocol-level failures are structured
/// responses, not errors).
pub fn serve_lines(
    svc: &Service,
    input: impl std::io::Read,
    mut output: impl Write,
) -> std::io::Result<()> {
    let reader = BufReader::new(input);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = svc.handle(&line);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if svc.is_shutdown() {
            break;
        }
    }
    Ok(())
}

/// The stdio daemon: requests on stdin, responses on stdout (one line
/// each, flushed per response so pipe-driven clients never block on
/// buffering).
///
/// # Errors
///
/// As [`serve_lines`].
pub fn serve_stdio(svc: &Service) -> std::io::Result<()> {
    serve_lines(svc, std::io::stdin().lock(), std::io::stdout().lock())
}

/// The TCP daemon: binds `addr`, prints the bound address to stderr
/// (`listening on <addr>` — tests parse this to find an OS-assigned
/// port), and serves each connection on its own thread until a client
/// sends `{"op":"shutdown"}`.
///
/// # Errors
///
/// Bind failures; per-connection I/O errors only end that connection.
pub fn serve_tcp(svc: Arc<Service>, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("streamlind: listening on {}", listener.local_addr()?);
    // Poll accept so the listener notices shutdown requested on another
    // connection within a bounded delay.
    listener.set_nonblocking(true)?;
    let mut handles = Vec::new();
    while !svc.is_shutdown() {
        match listener.accept() {
            Ok((conn, _)) => {
                let svc = Arc::clone(&svc);
                handles.push(std::thread::spawn(move || serve_conn(&svc, conn)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

fn serve_conn(svc: &Service, conn: TcpStream) {
    let reader = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    let _ = serve_lines(svc, reader, conn);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceOpts;

    #[test]
    fn stdio_loop_answers_each_line_and_stops_on_shutdown() {
        let svc = Service::new(ServiceOpts::default());
        let input = b"{\"op\":\"ping\"}\n\n{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n" as &[u8];
        let mut out = Vec::new();
        serve_lines(&svc, input, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Blank line skipped; loop exits after shutdown, so the trailing
        // ping is never answered.
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"pong\""));
        assert!(lines[1].contains("\"shutdown\""));
        assert!(svc.is_shutdown());
    }
}
