//! Transport loops: stdio (the default) and TCP.
//!
//! Both speak the same line-delimited protocol through
//! [`Service::handle`]; neither owns any state of its own. The stdio
//! loop is what tests and supervised deployments drive (one daemon per
//! pipe pair, shuts down on EOF or `{"op":"shutdown"}`); the TCP loop
//! accepts any number of connections, each served on its own thread
//! against the shared [`Service`] — streams are named, so clients on
//! different connections can even share a stream, and the dispatcher's
//! locking keeps every request/response pair atomic.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::Service;

/// Serves requests from `input` to `output` until EOF or shutdown.
///
/// # Errors
///
/// I/O failures on the transport (protocol-level failures are structured
/// responses, not errors).
pub fn serve_lines(
    svc: &Service,
    input: impl std::io::Read,
    mut output: impl Write,
) -> std::io::Result<()> {
    let reader = BufReader::new(input);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = svc.handle(&line);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if svc.is_shutdown() {
            break;
        }
    }
    Ok(())
}

/// The stdio daemon: requests on stdin, responses on stdout (one line
/// each, flushed per response so pipe-driven clients never block on
/// buffering).
///
/// # Errors
///
/// As [`serve_lines`].
pub fn serve_stdio(svc: &Service) -> std::io::Result<()> {
    serve_lines(svc, std::io::stdin().lock(), std::io::stdout().lock())
}

/// The TCP daemon: binds `addr`, prints the bound address to stderr
/// (`listening on <addr>` — tests parse this to find an OS-assigned
/// port), and serves each connection on its own thread until a client
/// sends `{"op":"shutdown"}`.
///
/// # Errors
///
/// Bind failures; per-connection I/O errors only end that connection.
pub fn serve_tcp(svc: Arc<Service>, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("streamlind: listening on {}", listener.local_addr()?);
    serve_listener(svc, listener)
}

/// The accept loop behind [`serve_tcp`], taking an already-bound
/// listener (tests bind their own to learn the port).
///
/// # Errors
///
/// Accept failures other than the polling timeout.
pub fn serve_listener(svc: Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    // Poll accept so the listener notices shutdown requested on another
    // connection within a bounded delay.
    listener.set_nonblocking(true)?;
    let mut handles = Vec::new();
    while !svc.is_shutdown() {
        match listener.accept() {
            Ok((conn, _)) => {
                let svc = Arc::clone(&svc);
                handles.push(std::thread::spawn(move || serve_conn(&svc, conn)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

/// How often an idle connection re-checks the shutdown flag.
const CONN_POLL: Duration = Duration::from_millis(100);

/// One TCP connection. Unlike [`serve_lines`], the socket gets a finite
/// read timeout so a connection idling between requests still observes a
/// shutdown dispatched on *another* connection within [`CONN_POLL`] —
/// otherwise `shutdown` would not terminate the daemon until every
/// client disconnected on its own.
fn serve_conn(svc: &Service, mut conn: TcpStream) {
    if conn.set_read_timeout(Some(CONN_POLL)).is_err() {
        return;
    }
    let mut reader = match conn.try_clone() {
        Ok(c) => BufReader::new(c),
        Err(_) => return,
    };
    // Request bytes accumulate here across timeouts: `read_until` (under
    // `read_line`) guarantees bytes read before an error are in the
    // buffer, so a line split by a timeout is finished on a later pass.
    let mut buf = String::new();
    while !svc.is_shutdown() {
        match reader.read_line(&mut buf) {
            // EOF; serve whatever an unterminated final line carried.
            Ok(0) => {
                let _ = respond(svc, &buf, &mut conn);
                break;
            }
            Ok(_) if buf.ends_with('\n') => {
                if respond(svc, &buf, &mut conn).is_err() {
                    break;
                }
                buf.clear();
            }
            // Ok without a newline is EOF mid-line.
            Ok(_) => {
                let _ = respond(svc, &buf, &mut conn);
                break;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle (or mid-line) timeout: loop around and re-check
                // the shutdown flag; partial data stays in `buf`.
            }
            Err(_) => break,
        }
    }
}

/// Serves one buffered request line (blank lines are skipped).
fn respond(svc: &Service, line: &str, out: &mut TcpStream) -> std::io::Result<()> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(());
    }
    let response = svc.handle(line);
    out.write_all(response.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceOpts;

    #[test]
    fn stdio_loop_answers_each_line_and_stops_on_shutdown() {
        let svc = Service::new(ServiceOpts::default());
        let input = b"{\"op\":\"ping\"}\n\n{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n" as &[u8];
        let mut out = Vec::new();
        serve_lines(&svc, input, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Blank line skipped; loop exits after shutdown, so the trailing
        // ping is never answered.
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"pong\""));
        assert!(lines[1].contains("\"shutdown\""));
        assert!(svc.is_shutdown());
    }

    /// A shutdown on one connection terminates the whole daemon even
    /// while another connection sits idle between requests — the idle
    /// connection's read timeout wakes it to observe the flag.
    #[test]
    fn tcp_shutdown_terminates_despite_idle_connection() {
        let svc = Arc::new(Service::new(ServiceOpts::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || serve_listener(svc, listener))
        };

        // Idle connection: pings once, then just sits there.
        let mut idle = TcpStream::connect(addr).unwrap();
        idle.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut idle_reader = BufReader::new(idle.try_clone().unwrap());
        let mut line = String::new();
        idle_reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\""), "{line}");

        // Second connection shuts the daemon down.
        let mut ctl = TcpStream::connect(addr).unwrap();
        ctl.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        line.clear();
        BufReader::new(ctl.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.contains("\"shutdown\""), "{line}");

        // The accept loop and every connection thread must wind down
        // without the idle client ever disconnecting. Join on a watchdog
        // thread so a regression fails fast instead of hanging the suite.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(server.join().expect("server thread").is_ok());
        });
        let joined = rx.recv_timeout(Duration::from_secs(10));
        assert_eq!(joined, Ok(true), "daemon did not exit after shutdown");
    }
}
