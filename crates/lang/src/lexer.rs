//! Hand-written lexer for the StreamIt dialect.

use crate::token::{Span, Spanned, Token};

/// A lexical error with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Explanation of the problem.
    pub message: String,
    /// Where it occurred.
    pub span: Span,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes the whole input, appending a final [`Token::Eof`].
///
/// Line (`//`) and block (`/* */`) comments are skipped.
///
/// # Errors
///
/// Returns a [`LexError`] for malformed numeric literals, unterminated
/// block comments, or characters outside the language.
///
/// # Examples
///
/// ```
/// use streamlin_lang::lexer::tokenize;
/// use streamlin_lang::token::Token;
/// let toks = tokenize("x += 2;").unwrap();
/// assert_eq!(toks[1].token, Token::PlusAssign);
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            span: self.span(),
        }
    }

    fn run(mut self) -> Result<Vec<Spanned>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                out.push(Spanned {
                    token: Token::Eof,
                    span,
                });
                return Ok(out);
            };
            let token = if c.is_ascii_digit()
                || (c == '.' && self.peek2().is_some_and(|d| d.is_ascii_digit()))
            {
                self.number()?
            } else if c.is_ascii_alphabetic() || c == '_' {
                self.ident()
            } else {
                self.symbol()?
            };
            out.push(Spanned { token, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some('*') if self.peek2() == Some('/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    span: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<Token, LexError> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else if c == '.' && !is_float && self.peek2().is_none_or(|d| d != '.') {
                is_float = true;
                self.bump();
            } else if (c == 'e' || c == 'E')
                && self
                    .peek2()
                    .is_some_and(|d| d.is_ascii_digit() || d == '+' || d == '-')
            {
                is_float = true;
                self.bump(); // e
                self.bump(); // sign or first digit
                while self.peek().is_some_and(|d| d.is_ascii_digit()) {
                    self.bump();
                }
                break;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(Token::Float)
                .map_err(|_| self.error(format!("malformed float literal `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Token::Int)
                .map_err(|_| self.error(format!("malformed integer literal `{text}`")))
        }
    }

    fn ident(&mut self) -> Token {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        Token::keyword(&text).unwrap_or(Token::Ident(text))
    }

    fn symbol(&mut self) -> Result<Token, LexError> {
        let c = self.bump().expect("symbol called at end of input");
        let two = |l: &mut Self, next: char, yes: Token, no: Token| {
            if l.peek() == Some(next) {
                l.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            '(' => Token::LParen,
            ')' => Token::RParen,
            '{' => Token::LBrace,
            '}' => Token::RBrace,
            '[' => Token::LBracket,
            ']' => Token::RBracket,
            ',' => Token::Comma,
            ';' => Token::Semi,
            '%' => Token::Percent,
            '^' => Token::Caret,
            '+' => match self.peek() {
                Some('+') => {
                    self.bump();
                    Token::PlusPlus
                }
                Some('=') => {
                    self.bump();
                    Token::PlusAssign
                }
                _ => Token::Plus,
            },
            '-' => match self.peek() {
                Some('-') => {
                    self.bump();
                    Token::MinusMinus
                }
                Some('=') => {
                    self.bump();
                    Token::MinusAssign
                }
                Some('>') => {
                    self.bump();
                    Token::Arrow
                }
                _ => Token::Minus,
            },
            '*' => two(self, '=', Token::StarAssign, Token::Star),
            '/' => two(self, '=', Token::SlashAssign, Token::Slash),
            '=' => two(self, '=', Token::EqEq, Token::Assign),
            '!' => two(self, '=', Token::NotEq, Token::Not),
            '<' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Token::Le
                }
                Some('<') => {
                    self.bump();
                    Token::Shl
                }
                _ => Token::Lt,
            },
            '>' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Token::Ge
                }
                Some('>') => {
                    self.bump();
                    Token::Shr
                }
                _ => Token::Gt,
            },
            '&' => two(self, '&', Token::AndAnd, Token::Amp),
            '|' => two(self, '|', Token::OrOr, Token::Pipe),
            other => return Err(self.error(format!("unexpected character `{other}`"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("float filter Foo"),
            vec![
                Token::KwFloat,
                Token::KwFilter,
                Token::Ident("Foo".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn prework_aliases_init_work() {
        assert_eq!(toks("prework")[0], Token::KwInitWork);
        assert_eq!(toks("initWork")[0], Token::KwInitWork);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42")[0], Token::Int(42));
        assert_eq!(toks("2.5")[0], Token::Float(2.5));
        assert_eq!(toks("1e3")[0], Token::Float(1000.0));
        assert_eq!(toks("2.5e-2")[0], Token::Float(0.025));
        assert_eq!(toks(".5")[0], Token::Float(0.5));
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a->b"),
            vec![
                Token::Ident("a".into()),
                Token::Arrow,
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
        assert_eq!(toks("++ -- += -= *= /= == != <= >= << >> && ||").len(), 15);
        assert_eq!(toks("i++")[1], Token::PlusPlus);
        assert_eq!(toks("a - -b")[1], Token::Minus);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\n /* block \n many lines */ b"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(tokenize("/* never ends").is_err());
    }

    #[test]
    fn spans_track_lines() {
        let t = tokenize("a\n  b").unwrap();
        assert_eq!(t[0].span.line, 1);
        assert_eq!(t[1].span.line, 2);
        assert_eq!(t[1].span.col, 3);
    }

    #[test]
    fn bad_character_is_an_error() {
        let err = tokenize("a $ b").unwrap_err();
        assert!(err.message.contains('$'));
    }
}
