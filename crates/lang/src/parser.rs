//! Recursive-descent parser for the StreamIt dialect.

use crate::ast::*;
use crate::lexer::{tokenize, LexError};
use crate::token::{Span, Spanned, Token};

/// A parse (or lex) error with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Explanation of the problem.
    pub message: String,
    /// Where it occurred.
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses a complete program.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first lexical or syntactic
/// problem encountered.
///
/// # Examples
///
/// ```
/// let p = streamlin_lang::parse(
///     "void->void pipeline Main { add Src(); add Sink(); }
///      void->float filter Src { work push 1 { push(1.0); } }
///      float->void filter Sink { work pop 1 { println(pop()); } }",
/// )
/// .unwrap();
/// assert_eq!(p.top_level().unwrap().name, "Main");
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = tokenize(src)?;
    let mut parser = Parser { toks, pos: 0 };
    parser.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn cur(&self) -> &Token {
        &self.toks[self.pos].token
    }

    fn cur_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn lookahead(&self, n: usize) -> &Token {
        let i = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[i].token
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].token.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.cur() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> PResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {}", self.cur().describe())))
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: self.cur_span(),
        }
    }

    fn ident(&mut self, what: &str) -> PResult<String> {
        match self.cur().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    // ---- program structure ----------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        let mut decls = Vec::new();
        while *self.cur() != Token::Eof {
            decls.push(self.stream_decl()?);
        }
        Ok(Program { decls })
    }

    fn data_type(&mut self) -> PResult<DataType> {
        let ty = match self.cur() {
            Token::KwVoid => DataType::Void,
            Token::KwFloat => DataType::Float,
            Token::KwInt => DataType::Int,
            Token::KwBoolean => DataType::Bool,
            other => return Err(self.error(format!("expected a type, found {}", other.describe()))),
        };
        self.bump();
        Ok(ty)
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.cur(),
            Token::KwFloat | Token::KwInt | Token::KwBoolean | Token::KwVoid
        )
    }

    fn ty(&mut self) -> PResult<Type> {
        let base = self.data_type()?;
        let mut dims = Vec::new();
        while self.eat(&Token::LBracket) {
            dims.push(self.expr()?);
            self.expect(&Token::RBracket, "`]`")?;
        }
        Ok(Type { base, dims })
    }

    fn stream_decl(&mut self) -> PResult<StreamDecl> {
        let input = self.data_type()?;
        self.expect(&Token::Arrow, "`->`")?;
        let output = self.data_type()?;
        self.stream_decl_tail(input, output)
    }

    /// Parses `filter|pipeline|splitjoin|feedbackloop [Name] [(params)] body`.
    fn stream_decl_tail(&mut self, input: DataType, output: DataType) -> PResult<StreamDecl> {
        let kind_tok = self.bump();
        let anon_name = |kw: &str| format!("<anonymous {kw}>");
        let (name, params) = if let Token::Ident(_) = self.cur() {
            let name = self.ident("stream name")?;
            let params = if *self.cur() == Token::LParen {
                self.param_list()?
            } else {
                Vec::new()
            };
            (name, params)
        } else {
            let kw = match kind_tok {
                Token::KwFilter => "filter",
                Token::KwPipeline => "pipeline",
                Token::KwSplitJoin => "splitjoin",
                Token::KwFeedbackLoop => "feedbackloop",
                _ => "stream",
            };
            (anon_name(kw), Vec::new())
        };
        let kind = match kind_tok {
            Token::KwFilter => StreamKind::Filter(self.filter_body()?),
            Token::KwPipeline => StreamKind::Pipeline(self.block()?),
            Token::KwSplitJoin => StreamKind::SplitJoin(self.splitjoin_body()?),
            Token::KwFeedbackLoop => StreamKind::FeedbackLoop(self.feedback_body()?),
            other => {
                return Err(self.error(format!(
                    "expected `filter`, `pipeline`, `splitjoin` or `feedbackloop`, found {}",
                    other.describe()
                )))
            }
        };
        Ok(StreamDecl {
            name,
            input,
            output,
            params,
            kind,
        })
    }

    fn param_list(&mut self) -> PResult<Vec<Param>> {
        self.expect(&Token::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                let span = self.cur_span();
                let ty = self.ty()?;
                let name = self.ident("parameter name")?;
                params.push(Param { ty, name, span });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen, "`)`")?;
        }
        Ok(params)
    }

    // ---- filter bodies ---------------------------------------------------

    fn filter_body(&mut self) -> PResult<FilterDecl> {
        self.expect(&Token::LBrace, "`{` starting filter body")?;
        let mut fields = Vec::new();
        let mut init = None;
        let mut work = None;
        let mut init_work = None;
        while !self.eat(&Token::RBrace) {
            match self.cur() {
                Token::KwInit => {
                    self.bump();
                    if init.replace(self.block()?).is_some() {
                        return Err(self.error("duplicate `init` block"));
                    }
                }
                Token::KwWork => {
                    let span = self.cur_span();
                    self.bump();
                    if work.replace(self.work_decl(span)?).is_some() {
                        return Err(self.error("duplicate `work` function"));
                    }
                }
                Token::KwInitWork => {
                    let span = self.cur_span();
                    self.bump();
                    if init_work.replace(self.work_decl(span)?).is_some() {
                        return Err(self.error("duplicate `initWork` function"));
                    }
                }
                _ if self.is_type_start() => {
                    let span = self.cur_span();
                    let ty = self.ty()?;
                    let name = self.ident("field name")?;
                    let fi = if self.eat(&Token::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect(&Token::Semi, "`;` after field declaration")?;
                    fields.push(FieldDecl {
                        ty,
                        name,
                        init: fi,
                        span,
                    });
                }
                other => {
                    return Err(self.error(format!(
                        "expected a field, `init`, `work` or `initWork` in filter body, found {}",
                        other.describe()
                    )))
                }
            }
        }
        let work = work.ok_or_else(|| self.error("filter has no `work` function"))?;
        Ok(FilterDecl {
            fields,
            init,
            work,
            init_work,
        })
    }

    fn work_decl(&mut self, span: Span) -> PResult<WorkDecl> {
        let mut push = None;
        let mut pop = None;
        let mut peek = None;
        loop {
            match self.cur() {
                Token::KwPush => {
                    self.bump();
                    push = Some(self.expr()?);
                }
                Token::KwPop => {
                    self.bump();
                    pop = Some(self.expr()?);
                }
                Token::KwPeek => {
                    self.bump();
                    peek = Some(self.expr()?);
                }
                Token::LBrace => break,
                other => {
                    return Err(self.error(format!(
                        "expected rate declaration or `{{` after `work`, found {}",
                        other.describe()
                    )))
                }
            }
        }
        let body = self.block()?;
        Ok(WorkDecl {
            push,
            pop,
            peek,
            body,
            span,
        })
    }

    // ---- containers ------------------------------------------------------

    fn splitter(&mut self) -> PResult<SplitterAst> {
        match self.cur() {
            Token::KwDuplicate => {
                self.bump();
                // permit `duplicate()` as well as bare `duplicate`
                if self.eat(&Token::LParen) {
                    self.expect(&Token::RParen, "`)`")?;
                }
                Ok(SplitterAst::Duplicate)
            }
            Token::KwRoundRobin => {
                self.bump();
                Ok(SplitterAst::RoundRobin(self.weight_list()?))
            }
            other => Err(self.error(format!(
                "expected `duplicate` or `roundrobin`, found {}",
                other.describe()
            ))),
        }
    }

    fn joiner(&mut self) -> PResult<JoinerAst> {
        match self.cur() {
            Token::KwRoundRobin => {
                self.bump();
                Ok(JoinerAst::RoundRobin(self.weight_list()?))
            }
            other => Err(self.error(format!(
                "expected `roundrobin` joiner, found {}",
                other.describe()
            ))),
        }
    }

    fn weight_list(&mut self) -> PResult<Vec<Expr>> {
        let mut weights = Vec::new();
        if self.eat(&Token::LParen) && !self.eat(&Token::RParen) {
            loop {
                weights.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen, "`)`")?;
        }
        Ok(weights)
    }

    fn splitjoin_body(&mut self) -> PResult<SplitJoinDecl> {
        self.expect(&Token::LBrace, "`{` starting splitjoin body")?;
        let mut split = None;
        let mut join = None;
        let mut stmts = Vec::new();
        let mut spans = Vec::new();
        while !self.eat(&Token::RBrace) {
            match self.cur() {
                Token::KwSplit => {
                    self.bump();
                    if split.replace(self.splitter()?).is_some() {
                        return Err(self.error("duplicate `split` declaration"));
                    }
                    self.expect(&Token::Semi, "`;` after `split`")?;
                }
                Token::KwJoin => {
                    self.bump();
                    if join.replace(self.joiner()?).is_some() {
                        return Err(self.error("duplicate `join` declaration"));
                    }
                    self.expect(&Token::Semi, "`;` after `join`")?;
                }
                _ => {
                    spans.push(self.cur_span());
                    stmts.push(self.stmt()?);
                }
            }
        }
        let split = split.ok_or_else(|| self.error("splitjoin has no `split` declaration"))?;
        let join = join.ok_or_else(|| self.error("splitjoin has no `join` declaration"))?;
        Ok(SplitJoinDecl {
            split,
            body: Block { stmts, spans },
            join,
        })
    }

    fn feedback_body(&mut self) -> PResult<FeedbackLoopDecl> {
        self.expect(&Token::LBrace, "`{` starting feedbackloop body")?;
        let mut join = None;
        let mut split = None;
        let mut body = None;
        let mut loop_stream = None;
        let mut enqueue = Vec::new();
        while !self.eat(&Token::RBrace) {
            match self.cur() {
                Token::KwJoin => {
                    self.bump();
                    join = Some(self.joiner()?);
                    self.expect(&Token::Semi, "`;` after `join`")?;
                }
                Token::KwSplit => {
                    self.bump();
                    split = Some(self.splitter()?);
                    self.expect(&Token::Semi, "`;` after `split`")?;
                }
                Token::KwBody => {
                    self.bump();
                    body = Some(self.stream_ref()?);
                    self.eat(&Token::Semi);
                }
                Token::KwLoop => {
                    self.bump();
                    loop_stream = Some(self.stream_ref()?);
                    self.eat(&Token::Semi);
                }
                Token::KwEnqueue => {
                    self.bump();
                    enqueue.push(self.expr()?);
                    self.expect(&Token::Semi, "`;` after `enqueue`")?;
                }
                other => {
                    return Err(self.error(format!(
                        "expected `join`, `body`, `loop`, `split` or `enqueue`, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(FeedbackLoopDecl {
            join: join.ok_or_else(|| self.error("feedbackloop has no `join`"))?,
            body: body.ok_or_else(|| self.error("feedbackloop has no `body`"))?,
            loop_stream: loop_stream.ok_or_else(|| self.error("feedbackloop has no `loop`"))?,
            split: split.ok_or_else(|| self.error("feedbackloop has no `split`"))?,
            enqueue,
        })
    }

    /// A child stream reference: named instantiation or anonymous stream.
    fn stream_ref(&mut self) -> PResult<StreamRef> {
        match self.cur().clone() {
            Token::Ident(_) => {
                let name = self.ident("stream name")?;
                let mut args = Vec::new();
                if self.eat(&Token::LParen) && !self.eat(&Token::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen, "`)`")?;
                }
                Ok(StreamRef::Named { name, args })
            }
            // anonymous stream, optionally with explicit `T->T` types
            Token::KwPipeline | Token::KwSplitJoin | Token::KwFilter | Token::KwFeedbackLoop => {
                let decl = self.stream_decl_tail(DataType::Float, DataType::Float)?;
                Ok(StreamRef::Anonymous(Box::new(decl)))
            }
            Token::KwVoid | Token::KwFloat | Token::KwInt | Token::KwBoolean
                if *self.lookahead(1) == Token::Arrow =>
            {
                let input = self.data_type()?;
                self.expect(&Token::Arrow, "`->`")?;
                let output = self.data_type()?;
                let decl = self.stream_decl_tail(input, output)?;
                Ok(StreamRef::Anonymous(Box::new(decl)))
            }
            other => Err(self.error(format!(
                "expected a stream reference, found {}",
                other.describe()
            ))),
        }
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> PResult<Block> {
        self.expect(&Token::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        let mut spans = Vec::new();
        while !self.eat(&Token::RBrace) {
            spans.push(self.cur_span());
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts, spans })
    }

    /// A block, or a single statement treated as a one-element block
    /// (unbraced `for`/`if` bodies).
    fn block_or_stmt(&mut self) -> PResult<Block> {
        if *self.cur() == Token::LBrace {
            self.block()
        } else {
            let span = self.cur_span();
            Ok(Block {
                stmts: vec![self.stmt()?],
                spans: vec![span],
            })
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        match self.cur() {
            Token::KwAdd => {
                self.bump();
                let s = self.stream_ref()?;
                self.eat(&Token::Semi);
                Ok(Stmt::Add(s))
            }
            Token::KwIf => {
                self.bump();
                self.expect(&Token::LParen, "`(` after `if`")?;
                let cond = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                let then_blk = self.block_or_stmt()?;
                let else_blk = if self.eat(&Token::KwElse) {
                    Some(self.block_or_stmt()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                })
            }
            Token::KwWhile => {
                self.bump();
                self.expect(&Token::LParen, "`(` after `while`")?;
                let cond = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::While { cond, body })
            }
            Token::KwFor => {
                self.bump();
                self.expect(&Token::LParen, "`(` after `for`")?;
                let init = if *self.cur() == Token::Semi {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&Token::Semi, "`;` after for-initializer")?;
                let cond = if *self.cur() == Token::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Token::Semi, "`;` after for-condition")?;
                let step = if *self.cur() == Token::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&Token::RParen, "`)`")?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Token::KwReturn => {
                self.bump();
                self.expect(&Token::Semi, "`;` after `return`")?;
                Ok(Stmt::Return)
            }
            _ if self.is_type_start() => {
                let s = self.decl_stmt()?;
                self.expect(&Token::Semi, "`;` after declaration")?;
                Ok(s)
            }
            _ => {
                let s = self.expr_or_assign()?;
                self.expect(&Token::Semi, "`;` after statement")?;
                Ok(s)
            }
        }
    }

    /// A statement legal in `for(...)` headers: declaration, assignment or
    /// expression — without the trailing semicolon.
    fn simple_stmt(&mut self) -> PResult<Stmt> {
        if self.is_type_start() {
            self.decl_stmt()
        } else {
            self.expr_or_assign()
        }
    }

    fn decl_stmt(&mut self) -> PResult<Stmt> {
        let ty = self.ty()?;
        let name = self.ident("variable name")?;
        let init = if self.eat(&Token::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Decl { ty, name, init })
    }

    fn expr_or_assign(&mut self) -> PResult<Stmt> {
        let e = self.expr()?;
        let op = match self.cur() {
            Token::Assign => None,
            Token::PlusAssign => Some(BinOp::Add),
            Token::MinusAssign => Some(BinOp::Sub),
            Token::StarAssign => Some(BinOp::Mul),
            Token::SlashAssign => Some(BinOp::Div),
            _ => return Ok(Stmt::Expr(e)),
        };
        self.bump();
        let target = match e {
            Expr::Var(name) => LValue::Var(name),
            Expr::Index(name, idx) => LValue::Index(name, idx),
            other => {
                return Err(self.error(format!(
                "left-hand side of assignment must be a variable or array element, found {other:?}"
            )))
            }
        };
        let value = self.expr()?;
        Ok(Stmt::Assign { target, op, value })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.binary_expr(0)
    }

    /// Precedence-climbing over the C-like operator table.
    fn binary_expr(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.cur() {
                Token::OrOr => (BinOp::Or, 1),
                Token::AndAnd => (BinOp::And, 2),
                Token::Pipe => (BinOp::BitOr, 3),
                Token::Caret => (BinOp::BitXor, 4),
                Token::Amp => (BinOp::BitAnd, 5),
                Token::EqEq => (BinOp::Eq, 6),
                Token::NotEq => (BinOp::Ne, 6),
                Token::Lt => (BinOp::Lt, 7),
                Token::Gt => (BinOp::Gt, 7),
                Token::Le => (BinOp::Le, 7),
                Token::Ge => (BinOp::Ge, 7),
                Token::Shl => (BinOp::Shl, 8),
                Token::Shr => (BinOp::Shr, 8),
                Token::Plus => (BinOp::Add, 9),
                Token::Minus => (BinOp::Sub, 9),
                Token::Star => (BinOp::Mul, 10),
                Token::Slash => (BinOp::Div, 10),
                Token::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        match self.cur() {
            Token::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            Token::Not => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary_expr()?;
        while matches!(self.cur(), Token::PlusPlus | Token::MinusMinus) {
            let inc = *self.cur() == Token::PlusPlus;
            let target = match e {
                Expr::Var(name) => LValue::Var(name),
                Expr::Index(name, idx) => LValue::Index(name, idx),
                other => {
                    return Err(self.error(format!(
                        "`++`/`--` require a variable or array element, found {other:?}"
                    )))
                }
            };
            self.bump();
            e = Expr::PostIncDec { target, inc };
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        match self.cur().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Token::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            Token::KwTrue => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Token::KwFalse => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Token::KwPi => {
                self.bump();
                Ok(Expr::Pi)
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Token::KwPop => {
                self.bump();
                self.expect(&Token::LParen, "`(` after `pop`")?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(Expr::Pop)
            }
            Token::KwPeek => {
                self.bump();
                self.expect(&Token::LParen, "`(` after `peek`")?;
                let e = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(Expr::Peek(Box::new(e)))
            }
            Token::KwPush => {
                self.bump();
                self.expect(&Token::LParen, "`(` after `push`")?;
                let e = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(Expr::Push(Box::new(e)))
            }
            Token::Ident(name) => {
                self.bump();
                if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen, "`)`")?;
                    }
                    Ok(Expr::Call(name, args))
                } else if *self.cur() == Token::LBracket {
                    let mut idx = Vec::new();
                    while self.eat(&Token::LBracket) {
                        idx.push(self.expr()?);
                        self.expect(&Token::RBracket, "`]`")?;
                    }
                    Ok(Expr::Index(name, idx))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.error(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIR: &str = r#"
        /* the motivating example, Figure 1-3 of the paper */
        float->float filter FIRFilter(float[N] weights, int N) {
            work push 1 pop 1 peek N {
                float sum = 0;
                for (int i = 0; i < N; i++) {
                    sum += weights[i] * peek(i);
                }
                push(sum);
                pop();
            }
        }
    "#;

    #[test]
    fn parses_the_fir_filter() {
        let p = parse(FIR).unwrap();
        assert_eq!(p.decls.len(), 1);
        let d = &p.decls[0];
        assert_eq!(d.name, "FIRFilter");
        assert_eq!(d.params.len(), 2);
        let StreamKind::Filter(f) = &d.kind else {
            panic!("expected filter")
        };
        assert_eq!(f.work.push, Some(Expr::Int(1)));
        assert_eq!(f.work.peek, Some(Expr::Var("N".into())));
        assert_eq!(f.work.body.stmts.len(), 4);
    }

    #[test]
    fn parses_pipeline_with_adds() {
        let p = parse(
            "void->void pipeline Main {
                add Source();
                add FIRFilter(w, 8);
                add Printer();
            }",
        )
        .unwrap();
        let StreamKind::Pipeline(b) = &p.decls[0].kind else {
            panic!()
        };
        assert_eq!(b.stmts.len(), 3);
        assert!(
            matches!(&b.stmts[1], Stmt::Add(StreamRef::Named { name, args })
            if name == "FIRFilter" && args.len() == 2)
        );
    }

    #[test]
    fn parses_splitjoin_with_loop_generated_children() {
        let p = parse(
            "float->float splitjoin Bank(int M) {
                split duplicate;
                for (int i = 0; i < M; i++) {
                    add Branch(M, i);
                }
                join roundrobin;
            }",
        )
        .unwrap();
        let StreamKind::SplitJoin(sj) = &p.decls[0].kind else {
            panic!()
        };
        assert_eq!(sj.split, SplitterAst::Duplicate);
        assert_eq!(sj.join, JoinerAst::RoundRobin(vec![]));
        assert_eq!(sj.body.stmts.len(), 1);
    }

    #[test]
    fn parses_weighted_roundrobin() {
        let p = parse(
            "float->float splitjoin S {
                split roundrobin(2, 1);
                add A(); add B();
                join roundrobin(1, 1);
            }",
        )
        .unwrap();
        let StreamKind::SplitJoin(sj) = &p.decls[0].kind else {
            panic!()
        };
        assert_eq!(
            sj.split,
            SplitterAst::RoundRobin(vec![Expr::Int(2), Expr::Int(1)])
        );
    }

    #[test]
    fn parses_feedbackloop() {
        let p = parse(
            "float->float feedbackloop NoiseShaper {
                join roundrobin(1, 1);
                body pipeline { add Adder(); add Quantizer(); }
                loop Delay();
                split roundrobin(1, 1);
                enqueue 0;
            }",
        )
        .unwrap();
        let StreamKind::FeedbackLoop(fb) = &p.decls[0].kind else {
            panic!()
        };
        assert_eq!(fb.enqueue, vec![Expr::Int(0)]);
        assert!(matches!(fb.body, StreamRef::Anonymous(_)));
        assert!(matches!(fb.loop_stream, StreamRef::Named { .. }));
    }

    #[test]
    fn parses_anonymous_typed_filter() {
        let p = parse(
            "void->void pipeline Main {
                add float->float filter { work push 1 pop 1 { push(pop()); } };
            }",
        )
        .unwrap();
        let StreamKind::Pipeline(b) = &p.decls[0].kind else {
            panic!()
        };
        let Stmt::Add(StreamRef::Anonymous(d)) = &b.stmts[0] else {
            panic!()
        };
        assert_eq!(d.input, DataType::Float);
        assert!(matches!(d.kind, StreamKind::Filter(_)));
    }

    #[test]
    fn operator_precedence() {
        let p = parse(
            "float->float filter F {
                work push 1 pop 1 { push(1 + 2 * 3 - 4 / 2); }
            }",
        )
        .unwrap();
        let StreamKind::Filter(f) = &p.decls[0].kind else {
            panic!()
        };
        let Stmt::Expr(Expr::Push(e)) = &f.work.body.stmts[0] else {
            panic!()
        };
        // (1 + (2*3)) - (4/2)
        let Expr::Binary(BinOp::Sub, l, r) = e.as_ref() else {
            panic!("expected subtraction at top: {e:?}")
        };
        assert!(matches!(l.as_ref(), Expr::Binary(BinOp::Add, ..)));
        assert!(matches!(r.as_ref(), Expr::Binary(BinOp::Div, ..)));
    }

    #[test]
    fn unbraced_for_body() {
        let p = parse(
            "float->float filter F(int N) {
                work push 1 pop 1 peek N {
                    float sum = 0;
                    for (int i=0; i<N; i++)
                        sum += peek(i);
                    push(sum); pop();
                }
            }",
        )
        .unwrap();
        let StreamKind::Filter(f) = &p.decls[0].kind else {
            panic!()
        };
        let Stmt::For { body, .. } = &f.work.body.stmts[1] else {
            panic!()
        };
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn post_increment_in_push() {
        let p = parse(
            "void->float filter Src {
                float x;
                init { x = 0; }
                work push 1 { push(x++); }
            }",
        )
        .unwrap();
        let StreamKind::Filter(f) = &p.decls[0].kind else {
            panic!()
        };
        let Stmt::Expr(Expr::Push(e)) = &f.work.body.stmts[0] else {
            panic!()
        };
        assert!(matches!(e.as_ref(), Expr::PostIncDec { inc: true, .. }));
    }

    #[test]
    fn modulo_and_index_expressions() {
        let p = parse(
            "float->float filter F {
                float[3] state;
                int index;
                work push 1 pop 1 {
                    push(state[(index + 2) % 3]);
                    index = index - 1;
                    if (index < 0) index = 2;
                    pop();
                }
            }",
        )
        .unwrap();
        assert!(matches!(p.decls[0].kind, StreamKind::Filter(_)));
    }

    #[test]
    fn missing_work_is_an_error() {
        let err = parse("float->float filter F { init { } }").unwrap_err();
        assert!(err.message.contains("no `work`"), "{err}");
    }

    #[test]
    fn missing_join_is_an_error() {
        let err = parse("float->float splitjoin S { split duplicate; add A(); }").unwrap_err();
        assert!(err.message.contains("no `join`"), "{err}");
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("float->float filter F {\n  work push 1 { push(; }\n}").unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn assignment_targets_must_be_lvalues() {
        let err = parse("float->float filter F { work push 1 pop 1 { pop() = 3; push(0); } }")
            .unwrap_err();
        assert!(err.message.contains("left-hand side"), "{err}");
    }

    #[test]
    fn two_dimensional_arrays() {
        let p = parse(
            "float->float filter F(int N) {
                float[2][4] w;
                work push 1 pop 1 { push(w[1][3]); pop(); }
            }",
        )
        .unwrap();
        let StreamKind::Filter(f) = &p.decls[0].kind else {
            panic!()
        };
        assert_eq!(f.fields[0].ty.dims.len(), 2);
    }
}
