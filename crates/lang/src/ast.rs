//! Abstract syntax tree for the StreamIt dialect.
//!
//! The tree mirrors the structure of StreamIt programs as described in §2.1
//! of the paper: a program is a set of stream declarations, each of which is
//! a `filter` (with `init`, `work` and optional `initWork` phases) or one of
//! the three hierarchical containers (`pipeline`, `splitjoin`,
//! `feedbackloop`). Work-function bodies are C-like imperative code over the
//! tape primitives `peek(i)`, `pop()` and `push(v)`.
//!
//! Source positions: blocks carry one [`Span`] per statement (parallel to
//! `stmts`), and declarations that diagnostics point at ([`FieldDecl`],
//! [`Param`], [`WorkDecl`]) carry their own span. Spans are *position
//! metadata*, not syntax: the `PartialEq` impls below ignore them, so a
//! pretty-printed and re-parsed program still compares equal.

use crate::token::Span;

/// A parsed program: an ordered list of stream declarations. The *last*
/// `void->void` declaration is conventionally the top-level stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All top-level stream declarations.
    pub decls: Vec<StreamDecl>,
}

impl Program {
    /// Finds a declaration by name.
    pub fn find(&self, name: &str) -> Option<&StreamDecl> {
        self.decls.iter().find(|d| d.name == name)
    }

    /// The top-level stream: the last `void->void` declaration.
    pub fn top_level(&self) -> Option<&StreamDecl> {
        self.decls
            .iter()
            .rev()
            .find(|d| d.input == DataType::Void && d.output == DataType::Void)
    }
}

/// Scalar data types of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// No data (used for source inputs and sink outputs).
    Void,
    /// 64-bit float (StreamIt `float`; we widen to f64 throughout).
    Float,
    /// Signed integer.
    Int,
    /// Boolean.
    Bool,
}

/// A (possibly array) type: `float`, `int`, `float[N]`, `float[N][M]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Type {
    /// Element type.
    pub base: DataType,
    /// Array dimension expressions, outermost first; empty for scalars.
    pub dims: Vec<Expr>,
}

impl Type {
    /// A scalar of the given base type.
    pub fn scalar(base: DataType) -> Self {
        Type {
            base,
            dims: Vec::new(),
        }
    }
}

/// A formal parameter of a parameterized stream.
#[derive(Debug, Clone)]
pub struct Param {
    /// Declared type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
    /// Where the parameter is declared (ignored by equality).
    pub span: Span,
}

impl PartialEq for Param {
    fn eq(&self, other: &Self) -> bool {
        self.ty == other.ty && self.name == other.name
    }
}

/// A top-level (or anonymous) stream declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDecl {
    /// Declared name; synthesized names like `"<anon pipeline>"` are used
    /// for anonymous streams.
    pub name: String,
    /// Input tape type.
    pub input: DataType,
    /// Output tape type.
    pub output: DataType,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// The body.
    pub kind: StreamKind,
}

/// The four stream constructs of StreamIt (Figure 2-1 of the paper).
#[allow(clippy::large_enum_variant)] // filters dominate; declarations are built once
#[derive(Debug, Clone, PartialEq)]
pub enum StreamKind {
    /// A leaf filter with its phases.
    Filter(FilterDecl),
    /// Serial composition; the body statements `add` children in order.
    Pipeline(Block),
    /// Explicitly parallel composition with a splitter and a joiner.
    SplitJoin(SplitJoinDecl),
    /// A cycle: joiner, body stream, loop stream, splitter, initial items.
    FeedbackLoop(FeedbackLoopDecl),
}

/// A filter declaration: fields plus `init`/`work`/`initWork` phases.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterDecl {
    /// Persistent per-instance state.
    pub fields: Vec<FieldDecl>,
    /// Runs once at instance creation; may initialize fields.
    pub init: Option<Block>,
    /// The steady-state work function.
    pub work: WorkDecl,
    /// Optional first-invocation work function (`initWork` / `prework`).
    pub init_work: Option<WorkDecl>,
}

/// A field (persistent state) declaration.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Declared type (may be an array).
    pub ty: Type,
    /// Field name.
    pub name: String,
    /// Optional initializer expression.
    pub init: Option<Expr>,
    /// Where the field is declared (ignored by equality).
    pub span: Span,
}

impl PartialEq for FieldDecl {
    fn eq(&self, other: &Self) -> bool {
        self.ty == other.ty && self.name == other.name && self.init == other.init
    }
}

/// A work function with its declared I/O rates.
#[derive(Debug, Clone)]
pub struct WorkDecl {
    /// Items pushed per firing (defaults to 0).
    pub push: Option<Expr>,
    /// Items popped per firing (defaults to 0).
    pub pop: Option<Expr>,
    /// Maximum index peeked + 1 (defaults to the pop rate).
    pub peek: Option<Expr>,
    /// The body.
    pub body: Block,
    /// Where the work function is declared (ignored by equality).
    pub span: Span,
}

impl PartialEq for WorkDecl {
    fn eq(&self, other: &Self) -> bool {
        self.push == other.push
            && self.pop == other.pop
            && self.peek == other.peek
            && self.body == other.body
    }
}

/// A splitjoin: splitter, `add` statements, joiner.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitJoinDecl {
    /// How items are distributed to children.
    pub split: SplitterAst,
    /// Body statements (`add`s, possibly under `for`/`if`).
    pub body: Block,
    /// How child outputs are interleaved.
    pub join: JoinerAst,
}

/// A feedback loop (paper Figure 2-1c).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackLoopDecl {
    /// Joiner merging external input with the feedback path.
    pub join: JoinerAst,
    /// The forward body stream.
    pub body: StreamRef,
    /// The feedback-path stream.
    pub loop_stream: StreamRef,
    /// Splitter distributing body output between downstream and feedback.
    pub split: SplitterAst,
    /// Items pre-loaded on the feedback path (`enqueue` statements).
    pub enqueue: Vec<Expr>,
}

/// Splitter kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitterAst {
    /// Every child receives a copy of every item.
    Duplicate,
    /// Weighted round-robin distribution; an empty weight list means
    /// weight 1 per child.
    RoundRobin(Vec<Expr>),
}

/// Joiner kinds (StreamIt joiners are always round-robin).
#[derive(Debug, Clone, PartialEq)]
pub enum JoinerAst {
    /// Weighted round-robin interleaving; an empty weight list means
    /// weight 1 per child.
    RoundRobin(Vec<Expr>),
}

/// Reference to a child stream: a named instantiation or an anonymous
/// declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamRef {
    /// `add Foo(a, b);`
    Named {
        /// Declaration name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `add pipeline { ... }` / `add splitjoin { ... }` / `add filter {...}`
    Anonymous(Box<StreamDecl>),
}

/// A sequence of statements.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// One source span per statement, parallel to `stmts` (ignored by
    /// equality). Programmatically built blocks may leave this empty;
    /// [`Block::span_of`] falls back to the default span.
    pub spans: Vec<Span>,
}

impl Block {
    /// A block over the given statements with default (unknown) spans.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        let spans = vec![Span::default(); stmts.len()];
        Block { stmts, spans }
    }

    /// The source span of statement `i`, or the default span when the
    /// block was built without position information.
    pub fn span_of(&self, i: usize) -> Span {
        self.spans.get(i).copied().unwrap_or_default()
    }
}

impl PartialEq for Block {
    fn eq(&self, other: &Self) -> bool {
        self.stmts == other.stmts
    }
}

/// Statements of the imperative sub-language (plus the container-only
/// stream statements).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local variable declaration with optional initializer.
    Decl {
        /// Declared type.
        ty: Type,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Assignment through `=`, `+=`, `-=`, `*=`, `/=`.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Which compound operator (None for plain `=`).
        op: Option<BinOp>,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// C-style `for`.
    For {
        /// Initialization statement.
        init: Option<Box<Stmt>>,
        /// Loop condition (absent means `true`).
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Block,
    },
    /// `while (cond) { .. }`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// An expression evaluated for its side effects (`push(..)`, `pop()`,
    /// `println(..)`, `x++`).
    Expr(Expr),
    /// `return;` (work functions return no values).
    Return,
    /// Container-only: `add <stream>;`
    Add(StreamRef),
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable or field.
    Var(String),
    /// An array element `name[i]` / `name[i][j]`.
    Index(String, Vec<Expr>),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// The constant π.
    Pi,
    /// Variable, parameter or field reference.
    Var(String),
    /// Array element read.
    Index(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `peek(i)` — read the tape at offset `i` without consuming.
    Peek(Box<Expr>),
    /// `pop()` — consume and return the front of the input tape.
    Pop,
    /// `push(v)` — append to the output tape (value-typed `void`).
    Push(Box<Expr>),
    /// Intrinsic or math call: `sin`, `cos`, `tan`, `atan`, `exp`, `log`,
    /// `sqrt`, `abs`, `floor`, `ceil`, `round`, `min`, `max`, `pow`,
    /// `print`, `println`.
    Call(String, Vec<Expr>),
    /// Postfix `x++` / `x--` (evaluates to the pre-increment value).
    PostIncDec {
        /// The mutated location.
        target: LValue,
        /// `true` for `++`, `false` for `--`.
        inc: bool,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinOp {
    /// True for the comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge
        )
    }

    /// True for operators whose result is only linear when both operands
    /// are constants (bit-level and boolean ops, per the extraction
    /// algorithm in Figure 3-2 of the paper).
    pub fn is_nonlinear(self) -> bool {
        matches!(
            self,
            BinOp::And
                | BinOp::Or
                | BinOp::BitAnd
                | BinOp::BitOr
                | BinOp::BitXor
                | BinOp::Shl
                | BinOp::Shr
        ) || self.is_comparison()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_level_is_last_void_void() {
        let mk = |name: &str, io: DataType| StreamDecl {
            name: name.into(),
            input: io,
            output: io,
            params: vec![],
            kind: StreamKind::Pipeline(Block::default()),
        };
        let p = Program {
            decls: vec![
                mk("A", DataType::Void),
                mk("B", DataType::Float),
                mk("Top", DataType::Void),
            ],
        };
        assert_eq!(p.top_level().unwrap().name, "Top");
        assert!(p.find("B").is_some());
        assert!(p.find("missing").is_none());
    }

    #[test]
    fn operator_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Shl.is_nonlinear());
        assert!(BinOp::Eq.is_nonlinear());
        assert!(!BinOp::Mul.is_nonlinear());
    }
}
