//! Lexer, parser and AST for the StreamIt dialect consumed by `streamlin`.
//!
//! The paper's input language is StreamIt (§2.1): programs are hierarchical
//! compositions of `filter`, `pipeline`, `splitjoin` and `feedbackloop`
//! streams; each filter declares `peek`/`pop`/`push` rates and a C-like
//! `work` function communicating through `peek(i)`, `pop()` and `push(v)`.
//! This crate implements the subset of the language exercised by the nine
//! benchmark applications of Appendix A (plus enough generality for new
//! programs): parameterized stream declarations, anonymous nested streams,
//! field/local declarations with array types, `for`/`while`/`if` control
//! flow, the arithmetic/logic operator set, math intrinsics, `init` and
//! `initWork`/`prework` phases, and feedback loops with `enqueue`.
//!
//! The grammar is parsed by a hand-written recursive-descent parser (no
//! parser-generator dependency) into the [`ast`] types, which are consumed
//! by the elaborator in `streamlin-graph`, the linear-extraction analysis in
//! `streamlin-core`, and the work-function interpreter in
//! `streamlin-runtime`.
//!
//! # Examples
//!
//! ```
//! let source = r#"
//!     float->float filter Doubler {
//!         work push 1 pop 1 { push(2 * pop()); }
//!     }
//! "#;
//! let program = streamlin_lang::parse(source).unwrap();
//! assert_eq!(program.decls.len(), 1);
//! assert_eq!(program.decls[0].name, "Doubler");
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::Program;
pub use parser::{parse, ParseError};
