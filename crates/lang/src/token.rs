//! Tokens and source positions for the StreamIt dialect.

/// A position in the source text, for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Literals and names
    Int(i64),
    Float(f64),
    Ident(String),

    // Type keywords
    KwVoid,
    KwFloat,
    KwInt,
    KwBoolean,

    // Stream keywords
    KwFilter,
    KwPipeline,
    KwSplitJoin,
    KwFeedbackLoop,
    KwAdd,
    KwSplit,
    KwJoin,
    KwBody,
    KwLoop,
    KwEnqueue,
    KwDuplicate,
    KwRoundRobin,

    // Filter keywords
    KwWork,
    KwInit,
    KwInitWork,
    KwPeek,
    KwPop,
    KwPush,

    // Statement keywords
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwReturn,
    KwTrue,
    KwFalse,
    KwPi,

    // Punctuation
    Arrow, // ->
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,

    // Operators
    Assign,     // =
    PlusAssign, // +=
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,

    /// End of input.
    Eof,
}

impl Token {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<Token> {
        Some(match s {
            "void" => Token::KwVoid,
            "float" => Token::KwFloat,
            "int" => Token::KwInt,
            "boolean" => Token::KwBoolean,
            "filter" => Token::KwFilter,
            "pipeline" => Token::KwPipeline,
            "splitjoin" => Token::KwSplitJoin,
            "feedbackloop" => Token::KwFeedbackLoop,
            "add" => Token::KwAdd,
            "split" => Token::KwSplit,
            "join" => Token::KwJoin,
            "body" => Token::KwBody,
            "loop" => Token::KwLoop,
            "enqueue" => Token::KwEnqueue,
            "duplicate" => Token::KwDuplicate,
            "roundrobin" => Token::KwRoundRobin,
            "work" => Token::KwWork,
            "init" => Token::KwInit,
            // Both spellings appear in the literature; the thesis uses
            // `initWork`, StreamIt 2.x uses `prework`.
            "initWork" => Token::KwInitWork,
            "prework" => Token::KwInitWork,
            "peek" => Token::KwPeek,
            "pop" => Token::KwPop,
            "push" => Token::KwPush,
            "if" => Token::KwIf,
            "else" => Token::KwElse,
            "for" => Token::KwFor,
            "while" => Token::KwWhile,
            "return" => Token::KwReturn,
            "true" => Token::KwTrue,
            "false" => Token::KwFalse,
            "pi" => Token::KwPi,
            _ => return None,
        })
    }

    /// A short human-readable description, used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            Token::Int(v) => format!("integer literal {v}"),
            Token::Float(v) => format!("float literal {v}"),
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Eof => "end of input".to_string(),
            other => format!("{other:?}"),
        }
    }
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it begins.
    pub span: Span,
}
