//! Pretty-printer for the dialect AST.
//!
//! Renders any [`Program`] back to parseable source text. The round-trip
//! `parse(pretty(ast)) == ast` is checked property-based in the crate's
//! integration tests; the printer is also used for diagnostics and for
//! emitting elaborated benchmark sources.

use crate::ast::*;

/// Renders a whole program.
///
/// # Examples
///
/// ```
/// let src = "float->float filter Gain { work pop 1 push 1 { push(2 * pop()); } }";
/// let p = streamlin_lang::parse(src).unwrap();
/// let printed = streamlin_lang::pretty::program(&p);
/// let reparsed = streamlin_lang::parse(&printed).unwrap();
/// assert_eq!(p, reparsed);
/// ```
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        stream_decl(d, 0, &mut out);
        out.push('\n');
    }
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn data_type(t: DataType) -> &'static str {
    match t {
        DataType::Void => "void",
        DataType::Float => "float",
        DataType::Int => "int",
        DataType::Bool => "boolean",
    }
}

fn ty(t: &Type, out: &mut String) {
    out.push_str(data_type(t.base));
    for d in &t.dims {
        out.push('[');
        expr(d, out);
        out.push(']');
    }
}

fn stream_decl(d: &StreamDecl, level: usize, out: &mut String) {
    indent(level, out);
    out.push_str(data_type(d.input));
    out.push_str("->");
    out.push_str(data_type(d.output));
    out.push(' ');
    let kw = match &d.kind {
        StreamKind::Filter(_) => "filter",
        StreamKind::Pipeline(_) => "pipeline",
        StreamKind::SplitJoin(_) => "splitjoin",
        StreamKind::FeedbackLoop(_) => "feedbackloop",
    };
    out.push_str(kw);
    if !d.name.starts_with('<') {
        out.push(' ');
        out.push_str(&d.name);
    }
    if !d.params.is_empty() {
        out.push('(');
        for (i, p) in d.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            ty(&p.ty, out);
            out.push(' ');
            out.push_str(&p.name);
        }
        out.push(')');
    }
    out.push_str(" {\n");
    match &d.kind {
        StreamKind::Filter(f) => filter_body(f, level + 1, out),
        StreamKind::Pipeline(b) => {
            for s in &b.stmts {
                stmt(s, level + 1, out);
            }
        }
        StreamKind::SplitJoin(sj) => {
            indent(level + 1, out);
            out.push_str("split ");
            splitter(&sj.split, out);
            out.push_str(";\n");
            for s in &sj.body.stmts {
                stmt(s, level + 1, out);
            }
            indent(level + 1, out);
            out.push_str("join ");
            joiner(&sj.join, out);
            out.push_str(";\n");
        }
        StreamKind::FeedbackLoop(fb) => {
            indent(level + 1, out);
            out.push_str("join ");
            joiner(&fb.join, out);
            out.push_str(";\n");
            indent(level + 1, out);
            out.push_str("body ");
            stream_ref(&fb.body, level + 1, out);
            out.push_str(";\n");
            indent(level + 1, out);
            out.push_str("loop ");
            stream_ref(&fb.loop_stream, level + 1, out);
            out.push_str(";\n");
            indent(level + 1, out);
            out.push_str("split ");
            splitter(&fb.split, out);
            out.push_str(";\n");
            for e in &fb.enqueue {
                indent(level + 1, out);
                out.push_str("enqueue ");
                expr(e, out);
                out.push_str(";\n");
            }
        }
    }
    indent(level, out);
    out.push_str("}\n");
}

fn filter_body(f: &FilterDecl, level: usize, out: &mut String) {
    for field in &f.fields {
        indent(level, out);
        ty(&field.ty, out);
        out.push(' ');
        out.push_str(&field.name);
        if let Some(e) = &field.init {
            out.push_str(" = ");
            expr(e, out);
        }
        out.push_str(";\n");
    }
    if let Some(init) = &f.init {
        indent(level, out);
        out.push_str("init {\n");
        for s in &init.stmts {
            stmt(s, level + 1, out);
        }
        indent(level, out);
        out.push_str("}\n");
    }
    if let Some(w) = &f.init_work {
        work_fn("initWork", w, level, out);
    }
    work_fn("work", &f.work, level, out);
}

fn work_fn(kw: &str, w: &WorkDecl, level: usize, out: &mut String) {
    indent(level, out);
    out.push_str(kw);
    for (name, rate) in [("push", &w.push), ("pop", &w.pop), ("peek", &w.peek)] {
        if let Some(e) = rate {
            out.push(' ');
            out.push_str(name);
            out.push(' ');
            // Rate expressions bind tighter than `{`; parenthesize to be
            // safe under re-parsing.
            out.push('(');
            expr(e, out);
            out.push(')');
        }
    }
    out.push_str(" {\n");
    for s in &w.body.stmts {
        stmt(s, level + 1, out);
    }
    indent(level, out);
    out.push_str("}\n");
}

fn splitter(s: &SplitterAst, out: &mut String) {
    match s {
        SplitterAst::Duplicate => out.push_str("duplicate"),
        SplitterAst::RoundRobin(w) => {
            out.push_str("roundrobin");
            weight_list(w, out);
        }
    }
}

fn joiner(j: &JoinerAst, out: &mut String) {
    let JoinerAst::RoundRobin(w) = j;
    out.push_str("roundrobin");
    weight_list(w, out);
}

fn weight_list(w: &[Expr], out: &mut String) {
    if w.is_empty() {
        return;
    }
    out.push('(');
    for (i, e) in w.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        expr(e, out);
    }
    out.push(')');
}

fn stream_ref(r: &StreamRef, level: usize, out: &mut String) {
    match r {
        StreamRef::Named { name, args } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(a, out);
            }
            out.push(')');
        }
        StreamRef::Anonymous(decl) => {
            // Render the anonymous declaration inline (with its IO types).
            let mut inner = String::new();
            stream_decl(decl, level, &mut inner);
            out.push_str(inner.trim_start());
            // Strip the trailing newline so the caller can add `;`.
            while out.ends_with('\n') {
                out.pop();
            }
        }
    }
}

fn stmt(s: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match s {
        Stmt::Decl { ty: t, name, init } => {
            ty(t, out);
            out.push(' ');
            out.push_str(name);
            if let Some(e) = init {
                out.push_str(" = ");
                expr(e, out);
            }
            out.push_str(";\n");
        }
        Stmt::Assign { target, op, value } => {
            lvalue(target, out);
            out.push_str(match op {
                None => " = ",
                Some(BinOp::Add) => " += ",
                Some(BinOp::Sub) => " -= ",
                Some(BinOp::Mul) => " *= ",
                Some(BinOp::Div) => " /= ",
                Some(other) => unreachable!("no compound operator for {other:?}"),
            });
            expr(value, out);
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            out.push_str("if (");
            expr(cond, out);
            out.push_str(") {\n");
            for s in &then_blk.stmts {
                stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push('}');
            if let Some(e) = else_blk {
                out.push_str(" else {\n");
                for s in &e.stmts {
                    stmt(s, level + 1, out);
                }
                indent(level, out);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str("for (");
            if let Some(i) = init {
                let mut inner = String::new();
                stmt(i, 0, &mut inner);
                out.push_str(inner.trim_end().trim_end_matches(';'));
            }
            out.push_str("; ");
            if let Some(c) = cond {
                expr(c, out);
            }
            out.push_str("; ");
            if let Some(st) = step {
                let mut inner = String::new();
                stmt(st, 0, &mut inner);
                out.push_str(inner.trim_end().trim_end_matches(';'));
            }
            out.push_str(") {\n");
            for s in &body.stmts {
                stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::While { cond, body } => {
            out.push_str("while (");
            expr(cond, out);
            out.push_str(") {\n");
            for s in &body.stmts {
                stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Expr(e) => {
            expr(e, out);
            out.push_str(";\n");
        }
        Stmt::Return => out.push_str("return;\n"),
        Stmt::Add(r) => {
            out.push_str("add ");
            stream_ref(r, level, out);
            out.push_str(";\n");
        }
    }
}

fn lvalue(lv: &LValue, out: &mut String) {
    match lv {
        LValue::Var(n) => out.push_str(n),
        LValue::Index(n, idx) => {
            out.push_str(n);
            for i in idx {
                out.push('[');
                expr(i, out);
                out.push(']');
            }
        }
    }
}

/// Renders an expression fully parenthesized (so precedence never matters
/// on re-parse).
pub fn expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(v) => out.push_str(&v.to_string()),
        Expr::Float(v) => {
            let s = format!("{v:?}"); // Debug keeps `.0` on integral floats
            out.push_str(&s);
        }
        Expr::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Expr::Pi => out.push_str("pi"),
        Expr::Var(n) => out.push_str(n),
        Expr::Index(n, idx) => {
            out.push_str(n);
            for i in idx {
                out.push('[');
                expr(i, out);
                out.push(']');
            }
        }
        Expr::Unary(op, a) => {
            out.push('(');
            out.push_str(match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            });
            expr(a, out);
            out.push(')');
        }
        Expr::Binary(op, a, b) => {
            out.push('(');
            expr(a, out);
            out.push(' ');
            out.push_str(bin_op(*op));
            out.push(' ');
            expr(b, out);
            out.push(')');
        }
        Expr::Peek(i) => {
            out.push_str("peek(");
            expr(i, out);
            out.push(')');
        }
        Expr::Pop => out.push_str("pop()"),
        Expr::Push(v) => {
            out.push_str("push(");
            expr(v, out);
            out.push(')');
        }
        Expr::Call(name, args) => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(a, out);
            }
            out.push(')');
        }
        Expr::PostIncDec { target, inc } => {
            lvalue(target, out);
            out.push_str(if *inc { "++" } else { "--" });
        }
    }
}

fn bin_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::Le => "<=",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    fn round_trip(src: &str) {
        let p1 = parse(src).unwrap();
        let printed = super::program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        assert_eq!(p1, p2, "round trip changed the AST:\n{printed}");
    }

    #[test]
    fn filter_round_trip() {
        round_trip(
            "float->float filter F(int N, float g) {
                 float[N] h;
                 int count = 3;
                 init { for (int i = 0; i < N; i++) h[i] = g * i; }
                 work peek N pop 1 push 2 {
                     float s = 0;
                     for (int i = 0; i < N; i++) s += h[i] * peek(i);
                     push(s);
                     push(-s + 1.5);
                     pop();
                 }
             }",
        );
    }

    #[test]
    fn containers_round_trip() {
        round_trip(
            "void->void pipeline Main { add A(); add SJ(2); add K(); }
             void->float filter A { float x; work push 1 { push(x++); } }
             float->float splitjoin SJ(int n) {
                 split roundrobin(2, 1);
                 for (int i = 0; i < n; i++) add G(i);
                 join roundrobin;
             }
             float->float filter G(int k) { work pop 1 push 1 { push(k * pop()); } }
             float->void filter K { work pop 2 { pop(); pop(); } }",
        );
    }

    #[test]
    fn feedback_round_trip() {
        round_trip(
            "float->float feedbackloop FB {
                 join roundrobin(1, 1);
                 body pipeline { add A(); }
                 loop D();
                 split duplicate;
                 enqueue 0;
                 enqueue 1.5;
             }
             float->float filter A { work pop 2 push 1 { push(pop() + pop()); } }
             float->float filter D { float s; work pop 1 push 1 { push(s); s = pop(); } }",
        );
    }

    #[test]
    fn control_flow_round_trip() {
        round_trip(
            "float->float filter F {
                 work pop 1 push 1 {
                     float v = pop();
                     int i = 0;
                     while (i < 3) { i++; }
                     if (v > 0 && !(v > 10)) { push(v % 2); } else { push((v / 2) - 1); }
                     return;
                 }
             }",
        );
    }

    #[test]
    fn benchmark_sources_round_trip() {
        // The printer must handle everything the real programs use.
        round_trip(
            "void->void pipeline Down {
                 add S();
                 add float->float filter { work pop 2 push 1 { push(pop() + pop()); } };
                 add K();
             }
             void->float filter S { float x; work push 1 { push(sin(x++)); } }
             float->void filter K { work pop 1 { println(pop()); } }",
        );
    }
}
