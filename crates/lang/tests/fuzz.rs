//! Robustness: the lexer and parser must never panic, whatever bytes they
//! are fed — errors only.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_text(s in "\\PC*") {
        let _ = streamlin_lang::parse(&s);
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("filter"), Just("pipeline"), Just("splitjoin"), Just("work"),
                Just("push"), Just("pop()"), Just("peek"), Just("{"), Just("}"),
                Just("("), Just(")"), Just(";"), Just("->"), Just("float"),
                Just("void"), Just("add"), Just("1"), Just("x"), Just("+"),
                Just("="), Just("for"), Just("if"), Just("init"), Just("[ ]"),
            ],
            0..64,
        )
    ) {
        let src = toks.join(" ");
        let _ = streamlin_lang::parse(&src);
    }
}
