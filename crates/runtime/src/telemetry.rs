//! Trace-file validation for the telemetry subsystem.
//!
//! The [`streamlin_support::probe`] module records a run; its
//! [`Recorder::chrome_trace`](streamlin_support::Recorder::chrome_trace)
//! export is consumed by `chrome://tracing`/Perfetto, which fail
//! *silently* (blank timeline) on malformed input. This module is the
//! guard: [`validate_trace`] parses an emitted trace with the
//! workspace's own JSON reader and checks the shape the viewers require
//! — used by the `trace_check` binary (CI runs it on a fresh
//! `streamlinc --trace-out` artifact) and the trace-shape tests.

use std::collections::BTreeMap;

use streamlin_support::json::{self, Json};

/// What a validated trace contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceShape {
    /// Total events.
    pub events: usize,
    /// Complete (`ph: "X"`) spans.
    pub spans: usize,
    /// Counter (`ph: "C"`) samples.
    pub counters: usize,
    /// Distinct `tid` lanes that carry spans.
    pub lanes: usize,
    /// Lanes that were given a `thread_name`.
    pub named_lanes: usize,
}

fn num(e: &Json, key: &str) -> Result<f64, String> {
    e.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("event missing numeric `{key}`: {e:?}"))
}

/// Validates Chrome trace-event JSON against what the viewers require:
/// a `traceEvents` array of objects, each with a `ph` string and numeric
/// `pid`/`tid`/`ts`; `X` spans additionally need a `name` and a
/// non-negative `dur`, and within each lane span start times must be
/// monotone non-decreasing (the exporter sorts by start time — a
/// violation means the writer is broken).
///
/// # Errors
///
/// Returns the first violation (or JSON syntax error) as a message.
pub fn validate_trace(text: &str) -> Result<TraceShape, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("root object must have a `traceEvents` array")?;
    let mut shape = TraceShape {
        events: events.len(),
        ..TraceShape::default()
    };
    let mut last_start: BTreeMap<i64, f64> = BTreeMap::new();
    let mut named: Vec<i64> = Vec::new();
    let mut span_lanes: Vec<i64> = Vec::new();
    for e in events {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event missing `ph`: {e:?}"))?;
        num(e, "pid")?;
        let tid = num(e, "tid")? as i64;
        match ph {
            "X" => {
                shape.spans += 1;
                let ts = num(e, "ts")?;
                let dur = num(e, "dur")?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("negative ts/dur: {e:?}"));
                }
                e.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("span missing `name`: {e:?}"))?;
                if let Some(&prev) = last_start.get(&tid) {
                    if ts < prev {
                        return Err(format!(
                            "span timestamps not monotone on tid {tid}: {ts} after {prev}"
                        ));
                    }
                }
                last_start.insert(tid, ts);
                if !span_lanes.contains(&tid) {
                    span_lanes.push(tid);
                }
            }
            "C" => {
                shape.counters += 1;
                num(e, "ts")?;
                e.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("counter missing `name`: {e:?}"))?;
            }
            "M" => {
                if e.get("name").and_then(Json::as_str) == Some("thread_name")
                    && !named.contains(&tid)
                {
                    named.push(tid);
                }
            }
            "i" => {
                num(e, "ts")?;
            }
            other => return Err(format!("unsupported phase `{other}`: {e:?}")),
        }
    }
    shape.lanes = span_lanes.len();
    shape.named_lanes = named.len();
    Ok(shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlin_support::{Probe, Recorder, StallKind};

    #[test]
    fn a_recorded_trace_validates() {
        let mut rec = Recorder::new();
        rec.lane_name(1, "stage 0");
        rec.node_name(0, "src");
        let t0 = rec.now();
        rec.batch(1, 0, 8, t0);
        rec.stall(1, StallKind::RecvEmpty, rec.now());
        rec.ring_depth(2, 5, rec.now());
        rec.note("fission", "off");
        let shape = validate_trace(&rec.chrome_trace()).expect("valid");
        assert_eq!(shape.spans, 2);
        assert_eq!(shape.counters, 1);
        assert!(shape.named_lanes >= 1);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(validate_trace("{\"traceEvents\":[").is_err());
        assert!(validate_trace("{}").is_err());
    }

    #[test]
    fn non_monotone_spans_are_rejected() {
        let bad = r#"{"traceEvents":[
            {"ph":"X","name":"a","pid":1,"tid":1,"ts":10.0,"dur":1.0},
            {"ph":"X","name":"b","pid":1,"tid":1,"ts":5.0,"dur":1.0}
        ]}"#;
        let err = validate_trace(bad).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
    }
}
