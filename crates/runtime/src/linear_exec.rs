//! Direct (time-domain) execution of linear nodes.
//!
//! Three kernels reproduce the code-generation strategies the paper
//! measures:
//!
//! * [`MatMulStrategy::Unrolled`] — the default for small nodes: "an
//!   unrolled arithmetic expression" per output that multiplies only the
//!   non-zero coefficients (§5.2).
//! * [`MatMulStrategy::Diagonal`] — the indexed loop of Figure 5-7 used
//!   for large nodes: per column, the leading and trailing zero runs are
//!   skipped but interior zeros are still multiplied.
//! * [`MatMulStrategy::Blocked`] — the ATLAS stand-in (§5.4): a dense
//!   kernel over a transposed, contiguous copy of the matrix with an
//!   explicit copy-in of the window. Like the real ATLAS experiment, it
//!   trades interface overhead for a better inner loop and performs the
//!   *full* dense multiply (no zero skipping).

use streamlin_matrix::Matrix;
use streamlin_support::OpCounter;

use streamlin_core::node::LinearNode;

/// Which matrix-multiply code the runtime "generates" for a linear node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatMulStrategy {
    /// Zero-skipping unrolled expressions (the paper's default).
    #[default]
    Unrolled,
    /// Figure 5-7's loop: per-column `firstNonZero..=lastNonZero`.
    Diagonal,
    /// Dense transposed kernel with copy-in — the ATLAS substitute.
    Blocked,
}

/// A compiled linear node: the node plus strategy-specific precomputation.
#[derive(Debug, Clone)]
pub struct LinearExec {
    node: LinearNode,
    strategy: MatMulStrategy,
    /// Per output `j` (natural order): the non-zero terms `(pos, coeff)`.
    unrolled: Vec<Vec<(usize, f64)>>,
    /// Per output `j`: the `firstNonZero..=lastNonZero` window positions.
    col_ranges: Vec<Option<(usize, usize)>>,
    /// Row-major `push × peek` copy: row `j` holds output `j`'s
    /// coefficients by window position (the "transposed" dense layout).
    dense: Matrix,
    /// Reusable aligned input buffer for the blocked kernel.
    buffer: Vec<f64>,
}

impl LinearExec {
    /// Prepares a node for execution.
    pub fn new(node: LinearNode, strategy: MatMulStrategy) -> Self {
        let (e, u) = (node.peek(), node.push());
        let mut unrolled = Vec::with_capacity(u);
        let mut col_ranges = Vec::with_capacity(u);
        for j in 0..u {
            let mut terms = Vec::new();
            let mut first = None;
            let mut last = None;
            for pos in 0..e {
                let c = node.coeff(pos, j);
                if c != 0.0 {
                    terms.push((pos, c));
                    first.get_or_insert(pos);
                    last = Some(pos);
                }
            }
            unrolled.push(terms);
            col_ranges.push(first.zip(last));
        }
        let dense = Matrix::from_fn(u, e, |j, pos| node.coeff(pos, j));
        LinearExec {
            buffer: vec![0.0; e],
            node,
            strategy,
            unrolled,
            col_ranges,
            dense,
        }
    }

    /// The node being executed.
    pub fn node(&self) -> &LinearNode {
        &self.node
    }

    /// The selected strategy.
    pub fn strategy(&self) -> MatMulStrategy {
        self.strategy
    }

    /// Fires once on a window (`window[i] = peek(i)`), returning outputs
    /// in push order. Operation counts depend on the strategy, exactly as
    /// the corresponding generated code would execute.
    ///
    /// # Panics
    ///
    /// Panics if the window length differs from the peek rate.
    pub fn fire(&mut self, window: &[f64], ops: &mut OpCounter) -> Vec<f64> {
        assert_eq!(
            window.len(),
            self.node.peek(),
            "window must equal the peek rate"
        );
        let u = self.node.push();
        let mut out = Vec::with_capacity(u);
        match self.strategy {
            MatMulStrategy::Unrolled => {
                for j in 0..u {
                    let mut acc = self.node.offset(j);
                    for &(pos, c) in &self.unrolled[j] {
                        acc = ops.fma(acc, c, window[pos]);
                    }
                    out.push(acc);
                }
            }
            MatMulStrategy::Diagonal => {
                for j in 0..u {
                    let mut acc = self.node.offset(j);
                    if let Some((first, last)) = self.col_ranges[j] {
                        let row = self.dense.row(j);
                        for pos in first..=last {
                            acc = ops.fma(acc, row[pos], window[pos]);
                        }
                    }
                    out.push(acc);
                }
            }
            MatMulStrategy::Blocked => {
                // Copy-in (the ATLAS interface overhead the paper blames
                // for its mixed results), then a dense row-major sweep.
                self.buffer.copy_from_slice(window);
                for j in 0..u {
                    let row = self.dense.row(j);
                    let mut acc = self.node.offset(j);
                    for (x, c) in self.buffer.iter().zip(row) {
                        acc = ops.fma(acc, *c, *x);
                    }
                    out.push(acc);
                }
            }
        }
        out
    }

    /// Fires `k` consecutive times over one contiguous input span: window
    /// `w` of firing `f` is `input[f·pop + w]`, and the outputs of all `k`
    /// firings are appended to `out` in firing-major push order — exactly
    /// the bytes `k` calls to [`LinearExec::fire`] would produce, and the
    /// same `ops` tally, but as one sweep over the stacked windows (the
    /// matrix–matrix view of `k` matrix–vector products).
    ///
    /// The static scheduler uses this for linear nodes whose steady-state
    /// plan fires them `k` times back to back: the ring buffer hands over
    /// one `(k−1)·pop + peek` slice and no per-firing window is ever
    /// materialized.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than `(k − 1)·pop + peek`.
    pub fn fire_batch(&self, input: &[f64], k: usize, out: &mut Vec<f64>, ops: &mut OpCounter) {
        let (e, o, u) = (self.node.peek(), self.node.pop(), self.node.push());
        if k == 0 {
            return;
        }
        let span = (k - 1) * o + e;
        assert!(
            input.len() >= span,
            "batch of {k} firings needs {span} items, got {}",
            input.len()
        );
        out.reserve(k * u);
        // Firing-major sweep over overlapping windows of one contiguous
        // slice: consecutive windows share `e − o` items, so the input
        // region stays cache-resident across firings without explicit
        // tiling. Accumulation order per output matches `fire` exactly,
        // which is what makes the results (and `ops` tallies) bit-equal.
        for f in 0..k {
            let w = &input[f * o..f * o + e];
            match self.strategy {
                MatMulStrategy::Unrolled => {
                    for j in 0..u {
                        let mut acc = self.node.offset(j);
                        for &(pos, c) in &self.unrolled[j] {
                            acc = ops.fma(acc, c, w[pos]);
                        }
                        out.push(acc);
                    }
                }
                MatMulStrategy::Diagonal => {
                    for j in 0..u {
                        let mut acc = self.node.offset(j);
                        if let Some((first, last)) = self.col_ranges[j] {
                            let row = self.dense.row(j);
                            for pos in first..=last {
                                acc = ops.fma(acc, row[pos], w[pos]);
                            }
                        }
                        out.push(acc);
                    }
                }
                MatMulStrategy::Blocked => {
                    // The dense sweep reads the window in place; the
                    // copy-in of `fire` exists only to model the ATLAS
                    // interface cost and performs no counted ops, so
                    // results and tallies stay identical without it.
                    for j in 0..u {
                        let row = self.dense.row(j);
                        let mut acc = self.node.offset(j);
                        for (x, c) in w.iter().zip(row) {
                            acc = ops.fma(acc, *c, *x);
                        }
                        out.push(acc);
                    }
                }
            }
        }
    }

    /// Runs over an input tape with channel semantics (testing helper).
    pub fn run_over(&mut self, input: &[f64], ops: &mut OpCounter) -> Vec<f64> {
        let (e, o) = (self.node.peek(), self.node.pop());
        assert!(o > 0, "run_over requires pop > 0");
        let mut out = Vec::new();
        let mut pos = 0;
        while pos + e <= input.len() {
            let window: Vec<f64> = input[pos..pos + e].to_vec();
            out.extend(self.fire(&window, ops));
            pos += o;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_node() -> LinearNode {
        // Coefficients: only positions 1 and 3 are non-zero.
        LinearNode::from_coeffs(
            5,
            1,
            1,
            |i, _| match i {
                1 => 2.0,
                3 => -1.0,
                _ => 0.0,
            },
            &[0.5],
        )
    }

    #[test]
    fn all_strategies_agree_on_results() {
        let node = sparse_node();
        let input: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let want = node.fire_sequence(&input);
        for strategy in [
            MatMulStrategy::Unrolled,
            MatMulStrategy::Diagonal,
            MatMulStrategy::Blocked,
        ] {
            let mut exec = LinearExec::new(node.clone(), strategy);
            let mut ops = OpCounter::new();
            let got = exec.run_over(&input, &mut ops);
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12, "{strategy:?}");
            }
        }
    }

    #[test]
    fn strategies_differ_in_multiplication_counts() {
        let node = sparse_node(); // nnz 2, range 1..=3 (3 wide), dense 5
        let window = [1.0, 2.0, 3.0, 4.0, 5.0];
        let count = |strategy| {
            let mut exec = LinearExec::new(node.clone(), strategy);
            let mut ops = OpCounter::new();
            exec.fire(&window, &mut ops);
            ops.mults()
        };
        assert_eq!(count(MatMulStrategy::Unrolled), 2);
        assert_eq!(count(MatMulStrategy::Diagonal), 3);
        assert_eq!(count(MatMulStrategy::Blocked), 5);
    }

    #[test]
    fn fire_batch_is_bit_identical_to_repeated_fire() {
        for node in [
            sparse_node(),
            LinearNode::fir(&[0.5, -1.25, 3.0, 0.0, 7.5]),
            LinearNode::from_coeffs(
                4,
                2,
                3,
                |i, j| (i * 3 + j) as f64 * 0.37 - 1.0,
                &[1.0, -2.0, 0.25],
            ),
        ] {
            let input: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
            for strategy in [
                MatMulStrategy::Unrolled,
                MatMulStrategy::Diagonal,
                MatMulStrategy::Blocked,
            ] {
                let mut exec = LinearExec::new(node.clone(), strategy);
                let k = (input.len() - node.peek()) / node.pop() + 1;
                let mut want = Vec::new();
                let mut ops_a = OpCounter::new();
                for f in 0..k {
                    let w = &input[f * node.pop()..f * node.pop() + node.peek()];
                    want.extend(exec.fire(w, &mut ops_a));
                }
                let mut got = Vec::new();
                let mut ops_b = OpCounter::new();
                exec.fire_batch(&input, k, &mut got, &mut ops_b);
                // Bit-identical outputs AND identical operation tallies.
                assert_eq!(got.len(), want.len(), "{strategy:?}");
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{strategy:?}");
                }
                assert_eq!(ops_a, ops_b, "{strategy:?}");
            }
        }
    }

    #[test]
    fn multi_output_push_order() {
        let node = LinearNode::from_coeffs(
            2,
            2,
            2,
            |i, j| if i == j { (j + 1) as f64 } else { 0.0 },
            &[0.0, 100.0],
        );
        let mut exec = LinearExec::new(node, MatMulStrategy::Unrolled);
        let mut ops = OpCounter::new();
        let out = exec.fire(&[3.0, 5.0], &mut ops);
        assert_eq!(out, vec![3.0, 110.0]);
    }

    #[test]
    fn zero_column_outputs_just_the_offset() {
        let node = LinearNode::from_coeffs(3, 1, 1, |_, _| 0.0, &[7.0]);
        for strategy in [
            MatMulStrategy::Unrolled,
            MatMulStrategy::Diagonal,
            MatMulStrategy::Blocked,
        ] {
            let mut exec = LinearExec::new(node.clone(), strategy);
            let mut ops = OpCounter::new();
            assert_eq!(exec.fire(&[1.0, 2.0, 3.0], &mut ops), vec![7.0]);
        }
    }
}
