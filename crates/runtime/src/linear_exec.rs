//! Direct (time-domain) execution of linear nodes.
//!
//! Four kernels execute a linear node; the first three reproduce the
//! code-generation strategies the paper measures, the fourth is the
//! production tier:
//!
//! * [`MatMulStrategy::Unrolled`] — the default for small nodes: "an
//!   unrolled arithmetic expression" per output that multiplies only the
//!   non-zero coefficients (§5.2).
//! * [`MatMulStrategy::Diagonal`] — the indexed loop of Figure 5-7 used
//!   for large nodes: per column, the leading and trailing zero runs are
//!   skipped but interior zeros are still multiplied.
//! * [`MatMulStrategy::Blocked`] — the ATLAS stand-in (§5.4): a dense
//!   kernel over a transposed, contiguous copy of the matrix with an
//!   explicit copy-in of the window. Like the real ATLAS experiment, it
//!   trades interface overhead for a better inner loop and performs the
//!   *full* dense multiply (no zero skipping).
//! * [`MatMulStrategy::Simd`] — the vectorized tier: the dense sweep with
//!   eight independent accumulators per output over `f64` chunks, which
//!   breaks the serial dependency chain of the scalar kernels; uncounted
//!   execution dispatches to an explicit AVX kernel with the identical
//!   accumulation structure when the CPU supports it. Batched execution
//!   additionally register-blocks four firings at a time over the stacked
//!   windows so each coefficient row is swept once per block.
//!
//! All kernels are generic over [`Tally`]: instantiated with
//! [`streamlin_support::CountOps`] they tally every operation (the
//! measured experiment), with [`streamlin_support::NoCount`] they
//! monomorphize to bare arithmetic (the shipped kernel). The numerical
//! results are bit-identical either way.

use streamlin_matrix::Matrix;
use streamlin_support::Tally;

use streamlin_core::node::LinearNode;

/// Which matrix-multiply code the runtime "generates" for a linear node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatMulStrategy {
    /// Zero-skipping unrolled expressions (the paper's default).
    #[default]
    Unrolled,
    /// Figure 5-7's loop: per-column `firstNonZero..=lastNonZero`.
    Diagonal,
    /// Dense transposed kernel with copy-in — the ATLAS substitute.
    Blocked,
    /// Dense vectorized kernel: 8 accumulators per output (AVX when the
    /// CPU has it), 4 firings per batch block. The production tier of
    /// `ExecMode::Fast`.
    Simd,
}

impl MatMulStrategy {
    /// Short label used in tables, bench ids and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            MatMulStrategy::Unrolled => "unrolled",
            MatMulStrategy::Diagonal => "diagonal",
            MatMulStrategy::Blocked => "blocked",
            MatMulStrategy::Simd => "simd",
        }
    }
}

/// Dot product with eight independent accumulators over 8-wide chunks —
/// the [`MatMulStrategy::Simd`] inner kernel. The independent partial
/// sums break the serial add chain; under [`CountOps`] every
/// multiply-add pair and every combining add is tallied exactly as the
/// generated SIMD code executes them. The accumulation structure is
/// fixed — lane `l` sums positions `8i + l`, lanes combine as
/// `b[l] = acc[l] + acc[l+4]` then `(b0+b1) + (b2+b3)`, then the scalar
/// tail — which is what makes single-firing, batched, scalar and
/// [`avx_dot`] execution all bit-identical.
///
/// Uncounted tallies (`!T::COUNTING`) dispatch to [`avx_dot`] when the
/// CPU supports AVX: the identical computation on 4-wide registers (two
/// vector accumulators = the eight scalar lanes, unfused multiply-add,
/// same combine order), detected once at [`LinearExec::new`].
///
/// [`NoCount`]: streamlin_support::NoCount
/// [`CountOps`]: streamlin_support::CountOps
#[inline]
fn simd_dot<T: Tally>(row: &[f64], w: &[f64], ops: &mut T, use_avx: bool) -> f64 {
    debug_assert_eq!(row.len(), w.len());
    #[cfg(target_arch = "x86_64")]
    if !T::COUNTING && use_avx {
        // SAFETY: `use_avx` is only set when runtime detection confirmed
        // the `avx` target feature (see `LinearExec::new`).
        return unsafe { avx_dot(row, w) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_avx;
    let split = row.len() - row.len() % 8;
    let (row8, row_tail) = row.split_at(split);
    let (w8, w_tail) = w.split_at(split);
    let mut acc = [0.0f64; 8];
    for (r, x) in row8.chunks_exact(8).zip(w8.chunks_exact(8)) {
        for l in 0..8 {
            acc[l] = ops.fma(acc[l], r[l], x[l]);
        }
    }
    let mut s = if split == 0 {
        0.0 // no lanes ran: nothing to combine, nothing to tally
    } else {
        let b0 = ops.add(acc[0], acc[4]);
        let b1 = ops.add(acc[1], acc[5]);
        let b2 = ops.add(acc[2], acc[6]);
        let b3 = ops.add(acc[3], acc[7]);
        let lo = ops.add(b0, b1);
        let hi = ops.add(b2, b3);
        ops.add(lo, hi)
    };
    for (&c, &x) in row_tail.iter().zip(w_tail) {
        s = ops.fma(s, c, x);
    }
    s
}

/// The AVX twin of [`simd_dot`]'s scalar loop: two 4-wide vector
/// accumulators hold the eight lanes, multiplies and adds are separate
/// (unfused — Rust never enables floating-point contraction) and the
/// combine order matches the scalar path, so the result is bit-identical.
///
/// # Safety
///
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn avx_dot(row: &[f64], w: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let split = row.len() - row.len() % 8;
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    while i < split {
        let r0 = _mm256_loadu_pd(row.as_ptr().add(i));
        let x0 = _mm256_loadu_pd(w.as_ptr().add(i));
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(r0, x0));
        let r1 = _mm256_loadu_pd(row.as_ptr().add(i + 4));
        let x1 = _mm256_loadu_pd(w.as_ptr().add(i + 4));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(r1, x1));
        i += 8;
    }
    let mut s = if split == 0 {
        0.0
    } else {
        // b[l] = acc[l] + acc[l+4], then (b0+b1) + (b2+b3) — the scalar
        // combine order, executed on the same values.
        let b = _mm256_add_pd(acc0, acc1);
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), b);
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    };
    for k in split..row.len() {
        s += row[k] * w[k];
    }
    s
}

/// A compiled linear node: the node plus strategy-specific precomputation.
#[derive(Debug, Clone)]
pub struct LinearExec {
    node: LinearNode,
    strategy: MatMulStrategy,
    /// Per output `j` (natural order): the non-zero terms `(pos, coeff)`.
    unrolled: Vec<Vec<(usize, f64)>>,
    /// Per output `j`: the `firstNonZero..=lastNonZero` window positions.
    col_ranges: Vec<Option<(usize, usize)>>,
    /// Row-major `push × peek` copy: row `j` holds output `j`'s
    /// coefficients by window position (the "transposed" dense layout).
    dense: Matrix,
    /// Reusable aligned input buffer for the blocked kernel.
    buffer: Vec<f64>,
    /// Runtime AVX support (checked once; used by the `Simd` kernel).
    use_avx: bool,
}

impl LinearExec {
    /// Prepares a node for execution.
    pub fn new(node: LinearNode, strategy: MatMulStrategy) -> Self {
        let (e, u) = (node.peek(), node.push());
        let mut unrolled = Vec::with_capacity(u);
        let mut col_ranges = Vec::with_capacity(u);
        for j in 0..u {
            let mut terms = Vec::new();
            let mut first = None;
            let mut last = None;
            for pos in 0..e {
                let c = node.coeff(pos, j);
                if c != 0.0 {
                    terms.push((pos, c));
                    first.get_or_insert(pos);
                    last = Some(pos);
                }
            }
            unrolled.push(terms);
            col_ranges.push(first.zip(last));
        }
        let dense = Matrix::from_fn(u, e, |j, pos| node.coeff(pos, j));
        #[cfg(target_arch = "x86_64")]
        let use_avx = std::arch::is_x86_feature_detected!("avx");
        #[cfg(not(target_arch = "x86_64"))]
        let use_avx = false;
        LinearExec {
            buffer: vec![0.0; e],
            node,
            strategy,
            unrolled,
            col_ranges,
            dense,
            use_avx,
        }
    }

    /// The node being executed.
    pub fn node(&self) -> &LinearNode {
        &self.node
    }

    /// The selected strategy.
    pub fn strategy(&self) -> MatMulStrategy {
        self.strategy
    }

    /// Fires once on a window (`window[i] = peek(i)`), returning outputs
    /// in push order. Operation counts depend on the strategy, exactly as
    /// the corresponding generated code would execute.
    ///
    /// # Panics
    ///
    /// Panics if the window length differs from the peek rate.
    pub fn fire<T: Tally>(&mut self, window: &[f64], ops: &mut T) -> Vec<f64> {
        assert_eq!(
            window.len(),
            self.node.peek(),
            "window must equal the peek rate"
        );
        let u = self.node.push();
        let mut out = Vec::with_capacity(u);
        match self.strategy {
            MatMulStrategy::Unrolled => {
                for j in 0..u {
                    let mut acc = self.node.offset(j);
                    for &(pos, c) in &self.unrolled[j] {
                        acc = ops.fma(acc, c, window[pos]);
                    }
                    out.push(acc);
                }
            }
            MatMulStrategy::Diagonal => {
                for j in 0..u {
                    let mut acc = self.node.offset(j);
                    if let Some((first, last)) = self.col_ranges[j] {
                        let row = self.dense.row(j);
                        for pos in first..=last {
                            acc = ops.fma(acc, row[pos], window[pos]);
                        }
                    }
                    out.push(acc);
                }
            }
            MatMulStrategy::Blocked => {
                // Copy-in (the ATLAS interface overhead the paper blames
                // for its mixed results), then a dense row-major sweep.
                self.buffer.copy_from_slice(window);
                for j in 0..u {
                    let row = self.dense.row(j);
                    let mut acc = self.node.offset(j);
                    for (x, c) in self.buffer.iter().zip(row) {
                        acc = ops.fma(acc, *c, *x);
                    }
                    out.push(acc);
                }
            }
            MatMulStrategy::Simd => {
                for j in 0..u {
                    let v = simd_dot(self.dense.row(j), window, ops, self.use_avx);
                    out.push(finish_output(v, self.node.offset(j), ops));
                }
            }
        }
        out
    }

    /// Fires `k` consecutive times over one contiguous input span: window
    /// `w` of firing `f` is `input[f·pop + w]`, and the outputs of all `k`
    /// firings are appended to `out` in firing-major push order — exactly
    /// the bytes `k` calls to [`LinearExec::fire`] would produce, and the
    /// same `ops` tally, but as one sweep over the stacked windows (the
    /// matrix–matrix view of `k` matrix–vector products).
    ///
    /// The static scheduler uses this for linear nodes whose steady-state
    /// plan fires them `k` times back to back: the ring buffer hands over
    /// one `(k−1)·pop + peek` slice and no per-firing window is ever
    /// materialized. Under [`MatMulStrategy::Simd`] the sweep is
    /// additionally register-blocked: four firings at a time share each
    /// coefficient row, and each firing's dot product runs the 4-lane
    /// kernel, so the block keeps 4 × 4 partial products in flight.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than `(k − 1)·pop + peek`.
    pub fn fire_batch<T: Tally>(&self, input: &[f64], k: usize, out: &mut Vec<f64>, ops: &mut T) {
        let (e, o, u) = (self.node.peek(), self.node.pop(), self.node.push());
        if k == 0 {
            return;
        }
        let span = (k - 1) * o + e;
        assert!(
            input.len() >= span,
            "batch of {k} firings needs {span} items, got {}",
            input.len()
        );
        out.reserve(k * u);
        // Firing-major sweep over overlapping windows of one contiguous
        // slice: consecutive windows share `e − o` items, so the input
        // region stays cache-resident across firings without explicit
        // tiling. Accumulation order per output matches `fire` exactly,
        // which is what makes the results (and `ops` tallies) bit-equal.
        match self.strategy {
            MatMulStrategy::Unrolled => {
                for f in 0..k {
                    let w = &input[f * o..f * o + e];
                    for j in 0..u {
                        let mut acc = self.node.offset(j);
                        for &(pos, c) in &self.unrolled[j] {
                            acc = ops.fma(acc, c, w[pos]);
                        }
                        out.push(acc);
                    }
                }
            }
            MatMulStrategy::Diagonal => {
                for f in 0..k {
                    let w = &input[f * o..f * o + e];
                    for j in 0..u {
                        let mut acc = self.node.offset(j);
                        if let Some((first, last)) = self.col_ranges[j] {
                            let row = self.dense.row(j);
                            for pos in first..=last {
                                acc = ops.fma(acc, row[pos], w[pos]);
                            }
                        }
                        out.push(acc);
                    }
                }
            }
            MatMulStrategy::Blocked => {
                // The dense sweep reads the window in place; the
                // copy-in of `fire` exists only to model the ATLAS
                // interface cost and performs no counted ops, so
                // results and tallies stay identical without it.
                for f in 0..k {
                    let w = &input[f * o..f * o + e];
                    for j in 0..u {
                        let row = self.dense.row(j);
                        let mut acc = self.node.offset(j);
                        for (x, c) in w.iter().zip(row) {
                            acc = ops.fma(acc, *c, *x);
                        }
                        out.push(acc);
                    }
                }
            }
            MatMulStrategy::Simd => {
                let base = out.len();
                out.resize(base + k * u, 0.0);
                let dst = &mut out[base..];
                let mut f = 0;
                // Register-blocked: each coefficient row is swept once
                // for four stacked windows before moving to the next
                // output. Per-firing accumulation is `simd_dot`, so the
                // values (and tallies) match `fire` bit for bit.
                while f + 4 <= k {
                    let w0 = &input[f * o..f * o + e];
                    let w1 = &input[(f + 1) * o..(f + 1) * o + e];
                    let w2 = &input[(f + 2) * o..(f + 2) * o + e];
                    let w3 = &input[(f + 3) * o..(f + 3) * o + e];
                    for j in 0..u {
                        let row = self.dense.row(j);
                        let b = self.node.offset(j);
                        let avx = self.use_avx;
                        dst[f * u + j] = finish_output(simd_dot(row, w0, ops, avx), b, ops);
                        dst[(f + 1) * u + j] = finish_output(simd_dot(row, w1, ops, avx), b, ops);
                        dst[(f + 2) * u + j] = finish_output(simd_dot(row, w2, ops, avx), b, ops);
                        dst[(f + 3) * u + j] = finish_output(simd_dot(row, w3, ops, avx), b, ops);
                    }
                    f += 4;
                }
                while f < k {
                    let w = &input[f * o..f * o + e];
                    for j in 0..u {
                        let v = simd_dot(self.dense.row(j), w, ops, self.use_avx);
                        dst[f * u + j] = finish_output(v, self.node.offset(j), ops);
                    }
                    f += 1;
                }
            }
        }
    }

    /// Runs over an input tape with channel semantics (testing helper).
    pub fn run_over<T: Tally>(&mut self, input: &[f64], ops: &mut T) -> Vec<f64> {
        let (e, o) = (self.node.peek(), self.node.pop());
        assert!(o > 0, "run_over requires pop > 0");
        let mut out = Vec::new();
        let mut pos = 0;
        while pos + e <= input.len() {
            out.extend(self.fire(&input[pos..pos + e], ops));
            pos += o;
        }
        out
    }
}

/// Applies output `j`'s constant offset to a finished dot product. A zero
/// offset is skipped uncounted — generated code folds `+ 0.0` away, and
/// skipping it also preserves the sign of an exact `-0.0` dot product.
#[inline]
fn finish_output<T: Tally>(v: f64, offset: f64, ops: &mut T) -> f64 {
    if offset != 0.0 {
        ops.add(v, offset)
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlin_support::{NoCount, OpCounter};

    const ALL_STRATEGIES: [MatMulStrategy; 4] = [
        MatMulStrategy::Unrolled,
        MatMulStrategy::Diagonal,
        MatMulStrategy::Blocked,
        MatMulStrategy::Simd,
    ];

    fn sparse_node() -> LinearNode {
        // Coefficients: only positions 1 and 3 are non-zero.
        LinearNode::from_coeffs(
            5,
            1,
            1,
            |i, _| match i {
                1 => 2.0,
                3 => -1.0,
                _ => 0.0,
            },
            &[0.5],
        )
    }

    #[test]
    fn all_strategies_agree_on_results() {
        let node = sparse_node();
        let input: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let want = node.fire_sequence(&input);
        for strategy in ALL_STRATEGIES {
            let mut exec = LinearExec::new(node.clone(), strategy);
            let mut ops = OpCounter::new();
            let got = exec.run_over(&input, &mut ops);
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12, "{strategy:?}");
            }
        }
    }

    #[test]
    fn strategies_differ_in_multiplication_counts() {
        let node = sparse_node(); // nnz 2, range 1..=3 (3 wide), dense 5
        let window = [1.0, 2.0, 3.0, 4.0, 5.0];
        let count = |strategy| {
            let mut exec = LinearExec::new(node.clone(), strategy);
            let mut ops = OpCounter::new();
            exec.fire(&window, &mut ops);
            ops.mults()
        };
        assert_eq!(count(MatMulStrategy::Unrolled), 2);
        assert_eq!(count(MatMulStrategy::Diagonal), 3);
        assert_eq!(count(MatMulStrategy::Blocked), 5);
        assert_eq!(count(MatMulStrategy::Simd), 5); // dense, like Blocked
    }

    #[test]
    fn fire_batch_is_bit_identical_to_repeated_fire() {
        for node in [
            sparse_node(),
            LinearNode::fir(&[0.5, -1.25, 3.0, 0.0, 7.5]),
            LinearNode::from_coeffs(
                4,
                2,
                3,
                |i, j| (i * 3 + j) as f64 * 0.37 - 1.0,
                &[1.0, -2.0, 0.25],
            ),
        ] {
            let input: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
            for strategy in ALL_STRATEGIES {
                let mut exec = LinearExec::new(node.clone(), strategy);
                let k = (input.len() - node.peek()) / node.pop() + 1;
                let mut want = Vec::new();
                let mut ops_a = OpCounter::new();
                for f in 0..k {
                    let w = &input[f * node.pop()..f * node.pop() + node.peek()];
                    want.extend(exec.fire(w, &mut ops_a));
                }
                let mut got = Vec::new();
                let mut ops_b = OpCounter::new();
                exec.fire_batch(&input, k, &mut got, &mut ops_b);
                // Bit-identical outputs AND identical operation tallies.
                assert_eq!(got.len(), want.len(), "{strategy:?}");
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{strategy:?}");
                }
                assert_eq!(ops_a, ops_b, "{strategy:?}");
            }
        }
    }

    #[test]
    fn nocount_matches_countops_bit_for_bit() {
        let node = LinearNode::from_coeffs(
            7,
            2,
            2,
            |i, j| ((i * 5 + j * 3) % 11) as f64 * 0.43 - 2.0,
            &[0.125, -3.5],
        );
        let input: Vec<f64> = (0..150).map(|i| (i as f64 * 1.1).cos() * 5.0).collect();
        for strategy in ALL_STRATEGIES {
            let mut counted_exec = LinearExec::new(node.clone(), strategy);
            let mut free_exec = LinearExec::new(node.clone(), strategy);
            let mut counted = OpCounter::new();
            let mut free = NoCount;
            let a = counted_exec.run_over(&input, &mut counted);
            let b = free_exec.run_over(&input, &mut free);
            assert_eq!(a.len(), b.len(), "{strategy:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{strategy:?}");
            }
            assert!(counted.flops() > 0, "{strategy:?}");
        }
    }

    #[test]
    fn simd_handles_all_tail_lengths() {
        // peek 1..=9 covers empty lanes, exact chunks and every tail.
        for e in 1..=9usize {
            let node = LinearNode::from_coeffs(e, 1, 1, |i, _| (i + 1) as f64 * 0.5, &[2.0]);
            let input: Vec<f64> = (0..e + 20).map(|i| (i as f64 * 0.9).sin()).collect();
            let want = node.fire_sequence(&input);
            let mut exec = LinearExec::new(node, MatMulStrategy::Simd);
            let got = exec.run_over(&input, &mut NoCount);
            assert_eq!(got.len(), want.len(), "peek {e}");
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12, "peek {e}");
            }
        }
    }

    #[test]
    fn multi_output_push_order() {
        let node = LinearNode::from_coeffs(
            2,
            2,
            2,
            |i, j| if i == j { (j + 1) as f64 } else { 0.0 },
            &[0.0, 100.0],
        );
        let mut exec = LinearExec::new(node, MatMulStrategy::Unrolled);
        let mut ops = OpCounter::new();
        let out = exec.fire(&[3.0, 5.0], &mut ops);
        assert_eq!(out, vec![3.0, 110.0]);
    }

    #[test]
    fn zero_column_outputs_just_the_offset() {
        let node = LinearNode::from_coeffs(3, 1, 1, |_, _| 0.0, &[7.0]);
        for strategy in ALL_STRATEGIES {
            let mut exec = LinearExec::new(node.clone(), strategy);
            let mut ops = OpCounter::new();
            assert_eq!(exec.fire(&[1.0, 2.0, 3.0], &mut ops), vec![7.0]);
        }
    }
}
