//! Execution engine for `streamlin` stream programs.
//!
//! This crate plays the role of the paper's uniprocessor backend plus its
//! runtime library (§5.1): it lowers an optimized stream
//! ([`streamlin_core::OptStream`]) to a flat graph of nodes connected by
//! FIFO channels and executes it until the program has produced a requested
//! number of outputs, measuring wall-clock time. Execution is generic over
//! [`streamlin_support::Tally`]: under [`measure::ExecMode::Measured`]
//! every floating-point operation is tallied through
//! [`streamlin_support::OpCounter`] (the DynamoRIO substitute); under
//! [`measure::ExecMode::Fast`] the same engines monomorphize over
//! [`streamlin_support::NoCount`] — bit-identical outputs, no accounting,
//! vectorized linear kernels ([`linear_exec::MatMulStrategy::Simd`]).
//!
//! Node executors:
//!
//! * **original filters** run in the slot-resolved work-function
//!   interpreter ([`streamlin_graph::lower`], with a tape-connected
//!   host): storage resolved to `Vec<Cell>` slots at elaboration, no name
//!   hashing on the firing path;
//! * **linear nodes** run as direct matrix-vector products with a choice of
//!   [`linear_exec::MatMulStrategy`] — the default zero-skipping column
//!   loops of the paper's code generator (Figure 5-7) or the cache-blocked
//!   dense kernel standing in for ATLAS (§5.4);
//! * **frequency nodes** and **redundancy nodes** wrap the executors from
//!   `streamlin-core` (plus the decimator stage for `pop > 1`);
//! * **splitters/joiners** move items according to their weights.
//!
//! Two schedulers execute the flat graph:
//!
//! * the **static plan engine** (the default): [`plan`] compiles the
//!   steady-state solution of the balance equations into a fixed firing
//!   sequence — an init phase for peek prologues and `initWork`, then one
//!   repeated steady cycle — with exactly-sized [`ring`] buffers in a
//!   single slab, batching consecutive linear-node firings into blocked
//!   multiplies;
//! * the **data-driven engine** (the fallback, and `Scheduler::Dynamic`):
//!   any node with enough input (and bounded output backlog) may fire —
//!   this is what runs graphs the plan compiler rejects, e.g. feedback
//!   loops.
//!
//! On top of the static plan sits the **pipeline-parallel executor**
//! ([`measure::profile_threads`], `streamlinc --threads N`): [`partition`]
//! cuts the planned graph into cost-balanced contiguous stages and
//! [`parallel`] runs each stage's slice of the schedule on its own
//! pooled worker thread ([`pool`] keeps the threads across runs), handing
//! items across boundaries through the lock-free SPSC rings of
//! [`ring::SharedRings`] — printed outputs stay bit-identical to the
//! single-threaded plan for every thread count, and tallies/firing
//! counts are identical across thread counts.
//!
//! When the cost model's dominant node is stateless or a linear/frequency
//! kernel, **data-parallel fission** ([`fission`],
//! [`measure::profile_fission`], `streamlinc --fission auto|off|N`)
//! rewrites the flat graph to `W` round-robin duplicates behind a
//! synthesized splitter/joiner pair before partitioning, so a graph
//! dominated by one node can still use every stage — with the same
//! bit-identity and tally/firing invariance contract across widths.
//!
//! Execution stops when the requested number of program outputs (captured
//! `print`/`println` values) has been produced. Both schedulers execute
//! identical firing semantics, so their printed output is bit-identical.
//!
//! Everything above is additionally generic over a telemetry
//! [`streamlin_support::Probe`] on the same zero-cost pattern as the
//! tally: production runs instantiate [`streamlin_support::NoProbe`]
//! (every record site compiles away — bit-identical outputs, unchanged
//! throughput), while [`measure::profile_recorded`] instantiates
//! [`streamlin_support::Recorder`] and captures compile-phase spans,
//! per-stage busy/stall time, ring occupancy high-water marks and
//! full/empty stall counts, coordinator quantum waits, and per-node
//! firing costs against the cost model — exported as a human summary
//! (`streamlinc --metrics`) or a Chrome trace-event timeline
//! (`--trace-out`, validated by [`telemetry::validate_trace`]).
//!
//! # Examples
//!
//! ```
//! use streamlin_core::opt::OptStream;
//! use streamlin_runtime::measure::profile;
//!
//! let p = streamlin_lang::parse(
//!     "void->void pipeline Main { add S(); add K(); }
//!      void->float filter S { float x; work push 1 { push(x++); } }
//!      float->void filter K { work pop 1 { println(2 * pop()); } }",
//! )
//! .unwrap();
//! let g = streamlin_graph::elaborate(&p).unwrap();
//! let opt = OptStream::from_graph(&g);
//! let prof = profile(&opt, 5, Default::default()).unwrap();
//! assert_eq!(prof.outputs, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
//! ```

pub mod engine;
pub mod fission;
pub mod flat;
pub mod linear_exec;
pub mod measure;
pub mod parallel;
pub mod partition;
pub mod plan;
pub mod pool;
pub mod ring;
pub mod telemetry;

pub use engine::{Engine, RunError};
pub use fission::{fiss_bottleneck, fissability, Fission, FissionInfo};
pub use flat::{set_bytecode_tier, set_cert_elision};
pub use linear_exec::MatMulStrategy;
pub use measure::{
    profile, profile_fission, profile_mode, profile_recorded, profile_sched, profile_supervised,
    profile_threads, ExecMode, Profile, Scheduler, Supervision,
};
pub use parallel::{
    parse_quantum, resolve_quantum, resolve_quantum_checked, run_pipeline, run_pipeline_probed,
    run_pipeline_quantized, run_pipeline_supervised, PipelineOutcome, PipelineSession,
    CYCLE_QUANTUM,
};
pub use partition::{partition, Partition};
pub use plan::{ExecPlan, PlanEngine, PlanError};
pub use telemetry::{validate_trace, TraceShape};
