//! Fixed-capacity ring buffers over one contiguous slab.
//!
//! The static scheduler ([`crate::plan`]) knows every channel's maximum
//! occupancy at compile time, so channels need no growth path: all of them
//! live side by side in a single `Vec<f64>` allocated once per program
//! ([`RingSet`]). Peeked windows are served as contiguous slices — directly
//! from the slab in the common case, via a copy into a shared scratch
//! buffer in the rare case where a window wraps around its ring's end.
//! This replaces the dynamic engine's per-channel `VecDeque`s (and its
//! per-firing window allocation) on the hot path.

/// Per-channel ring metadata; the items live in the shared slab.
#[derive(Debug, Clone, Copy)]
struct Chan {
    /// First slab index of this ring.
    off: usize,
    /// Ring capacity in items.
    cap: usize,
    /// Index of the oldest item, relative to `off`.
    head: usize,
    /// Current occupancy.
    len: usize,
}

/// All channels of a program: one slab, one scratch buffer.
#[derive(Debug, Clone)]
pub struct RingSet {
    slab: Vec<f64>,
    chans: Vec<Chan>,
    scratch: Vec<f64>,
}

impl RingSet {
    /// Allocates rings with the given exact capacities and preloads the
    /// initial items (feedback `enqueue`s).
    ///
    /// # Panics
    ///
    /// Panics if initial items exceed their channel's capacity.
    pub fn new(caps: &[usize], initial: &[(usize, Vec<f64>)]) -> Self {
        let mut chans = Vec::with_capacity(caps.len());
        let mut off = 0;
        for &cap in caps {
            chans.push(Chan {
                off,
                cap,
                head: 0,
                len: 0,
            });
            off += cap;
        }
        let mut set = RingSet {
            slab: vec![0.0; off],
            chans,
            scratch: vec![0.0; caps.iter().copied().max().unwrap_or(0)],
        };
        for (chan, items) in initial {
            set.produce(*chan, items);
        }
        set
    }

    /// Current occupancy of a channel.
    pub fn len(&self, chan: usize) -> usize {
        self.chans[chan].len
    }

    /// True when the channel holds no items.
    pub fn is_empty(&self, chan: usize) -> bool {
        self.chans[chan].len == 0
    }

    /// The oldest `n` items of a channel as one contiguous slice (borrowed
    /// from the slab, or assembled in the scratch buffer on wrap). The
    /// items are *not* consumed; follow with [`RingSet::consume`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` items are buffered.
    pub fn window(&mut self, chan: usize, n: usize) -> &[f64] {
        let c = self.chans[chan];
        assert!(n <= c.len, "window({n}) exceeds occupancy {}", c.len);
        if c.head + n <= c.cap {
            &self.slab[c.off + c.head..c.off + c.head + n]
        } else {
            let first = c.cap - c.head;
            self.scratch[..first].copy_from_slice(&self.slab[c.off + c.head..c.off + c.cap]);
            self.scratch[first..n].copy_from_slice(&self.slab[c.off..c.off + n - first]);
            &self.scratch[..n]
        }
    }

    /// Drops the oldest `n` items.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` items are buffered.
    pub fn consume(&mut self, chan: usize, n: usize) {
        let c = &mut self.chans[chan];
        assert!(n <= c.len, "consume({n}) exceeds occupancy {}", c.len);
        c.head += n;
        if c.head >= c.cap {
            c.head -= c.cap;
        }
        c.len -= n;
    }

    /// Appends items.
    ///
    /// # Panics
    ///
    /// Panics if the items would exceed the channel's capacity (the plan
    /// sizes rings exactly, so this indicates a scheduling bug).
    pub fn produce(&mut self, chan: usize, items: &[f64]) {
        let c = self.chans[chan];
        assert!(
            c.len + items.len() <= c.cap,
            "produce({}) overflows ring of capacity {} at occupancy {}",
            items.len(),
            c.cap,
            c.len
        );
        let mut tail = c.head + c.len;
        if tail >= c.cap {
            tail -= c.cap;
        }
        let first = items.len().min(c.cap - tail);
        self.slab[c.off + tail..c.off + tail + first].copy_from_slice(&items[..first]);
        self.slab[c.off..c.off + items.len() - first].copy_from_slice(&items[first..]);
        self.chans[chan].len += items.len();
    }

    /// Pops the oldest item.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty.
    pub fn pop_one(&mut self, chan: usize) -> f64 {
        let c = self.chans[chan];
        assert!(c.len > 0, "pop_one on empty channel");
        let v = self.slab[c.off + c.head];
        self.consume(chan, 1);
        v
    }

    /// Appends one item.
    ///
    /// # Panics
    ///
    /// Panics on overflow, like [`RingSet::produce`].
    pub fn push_one(&mut self, chan: usize, v: f64) {
        self.produce(chan, &[v]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_round_trips() {
        let mut r = RingSet::new(&[4], &[]);
        r.produce(0, &[1.0, 2.0, 3.0]);
        assert_eq!(r.window(0, 2), &[1.0, 2.0]);
        r.consume(0, 2);
        r.produce(0, &[4.0, 5.0, 6.0]);
        assert_eq!(r.len(0), 4);
        assert_eq!(r.window(0, 4), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn wrapped_windows_are_assembled_in_scratch() {
        let mut r = RingSet::new(&[4], &[]);
        r.produce(0, &[1.0, 2.0, 3.0, 4.0]);
        r.consume(0, 3);
        r.produce(0, &[5.0, 6.0, 7.0]); // wraps: slab now [5,6,7,4], head=3
        assert_eq!(r.window(0, 4), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn initial_items_are_preloaded() {
        let mut r = RingSet::new(&[2, 3], &[(1, vec![9.0, 8.0])]);
        assert!(r.is_empty(0));
        assert_eq!(r.pop_one(1), 9.0);
        assert_eq!(r.pop_one(1), 8.0);
    }

    #[test]
    #[should_panic(expected = "overflows ring")]
    fn overflow_is_a_bug_not_a_growth_path() {
        let mut r = RingSet::new(&[2], &[]);
        r.produce(0, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn many_channels_share_the_slab() {
        let mut r = RingSet::new(&[1, 2, 3], &[]);
        r.push_one(0, 1.0);
        r.produce(1, &[2.0, 3.0]);
        r.produce(2, &[4.0, 5.0, 6.0]);
        assert_eq!(r.pop_one(0), 1.0);
        assert_eq!(r.window(1, 2), &[2.0, 3.0]);
        assert_eq!(r.window(2, 3), &[4.0, 5.0, 6.0]);
    }
}
