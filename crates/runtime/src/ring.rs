//! Fixed-capacity ring buffers over one contiguous slab.
//!
//! The static scheduler ([`crate::plan`]) knows every channel's maximum
//! occupancy at compile time, so channels need no growth path: all of them
//! live side by side in a single `Vec<f64>` allocated once per program
//! ([`RingSet`]). Peeked windows are served as contiguous slices — directly
//! from the slab in the common case, via a copy into a per-channel scratch
//! buffer in the rare case where a window wraps around its ring's end.
//! This replaces the dynamic engine's per-channel `VecDeque`s (and its
//! per-firing window allocation) on the hot path.
//!
//! The pipeline-parallel executor ([`crate::parallel`]) adds a second
//! flavor: [`SharedRings`], single-producer/single-consumer rings over one
//! shared slab with atomic head/tail counters, carrying items across stage
//! boundaries between worker threads without locks.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-channel ring metadata; the items live in the shared slab.
#[derive(Debug, Clone, Copy)]
struct Chan {
    /// First slab index of this ring.
    off: usize,
    /// Ring capacity in items.
    cap: usize,
    /// Index of the oldest item, relative to `off`.
    head: usize,
    /// Current occupancy.
    len: usize,
}

/// All channels of a program: one slab, per-channel wrap scratch.
///
/// Scratch buffers are per channel (allocated lazily, only for channels
/// whose windows ever wrap) so that two channels served by the same
/// `RingSet` — or a channel whose window is still borrowed while another
/// is assembled — can never alias a single shared scratch buffer. The
/// pipeline partitioner relies on this when it splits a graph's channels
/// across stage-local ring sets.
#[derive(Debug, Clone)]
pub struct RingSet {
    slab: Vec<f64>,
    chans: Vec<Chan>,
    scratch: Vec<Vec<f64>>,
}

impl RingSet {
    /// Allocates rings with the given exact capacities and preloads the
    /// initial items (feedback `enqueue`s).
    ///
    /// # Panics
    ///
    /// Panics if initial items exceed their channel's capacity.
    pub fn new(caps: &[usize], initial: &[(usize, Vec<f64>)]) -> Self {
        let mut chans = Vec::with_capacity(caps.len());
        let mut off = 0;
        for &cap in caps {
            chans.push(Chan {
                off,
                cap,
                head: 0,
                len: 0,
            });
            off += cap;
        }
        let mut set = RingSet {
            slab: vec![0.0; off],
            chans,
            scratch: vec![Vec::new(); caps.len()],
        };
        for (chan, items) in initial {
            set.produce(*chan, items);
        }
        set
    }

    /// Current occupancy of a channel.
    pub fn len(&self, chan: usize) -> usize {
        self.chans[chan].len
    }

    /// True when the channel holds no items.
    pub fn is_empty(&self, chan: usize) -> bool {
        self.chans[chan].len == 0
    }

    /// The oldest `n` items of a channel as one contiguous slice (borrowed
    /// from the slab, or assembled in the channel's own scratch buffer on
    /// wrap). The items are *not* consumed; follow with
    /// [`RingSet::consume`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` items are buffered.
    pub fn window(&mut self, chan: usize, n: usize) -> &[f64] {
        let c = self.chans[chan];
        assert!(n <= c.len, "window({n}) exceeds occupancy {}", c.len);
        if c.head + n <= c.cap {
            &self.slab[c.off + c.head..c.off + c.head + n]
        } else {
            let scratch = &mut self.scratch[chan];
            if scratch.len() < c.cap {
                scratch.resize(c.cap, 0.0);
            }
            let first = c.cap - c.head;
            scratch[..first].copy_from_slice(&self.slab[c.off + c.head..c.off + c.cap]);
            scratch[first..n].copy_from_slice(&self.slab[c.off..c.off + n - first]);
            &scratch[..n]
        }
    }

    /// Drops the oldest `n` items.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` items are buffered.
    pub fn consume(&mut self, chan: usize, n: usize) {
        let c = &mut self.chans[chan];
        assert!(n <= c.len, "consume({n}) exceeds occupancy {}", c.len);
        c.head += n;
        if c.head >= c.cap {
            c.head -= c.cap;
        }
        c.len -= n;
    }

    /// Appends items.
    ///
    /// # Panics
    ///
    /// Panics if the items would exceed the channel's capacity (the plan
    /// sizes rings exactly, so this indicates a scheduling bug).
    pub fn produce(&mut self, chan: usize, items: &[f64]) {
        let c = self.chans[chan];
        assert!(
            c.len + items.len() <= c.cap,
            "produce({}) overflows ring of capacity {} at occupancy {}",
            items.len(),
            c.cap,
            c.len
        );
        let mut tail = c.head + c.len;
        if tail >= c.cap {
            tail -= c.cap;
        }
        let first = items.len().min(c.cap - tail);
        self.slab[c.off + tail..c.off + tail + first].copy_from_slice(&items[..first]);
        self.slab[c.off..c.off + items.len() - first].copy_from_slice(&items[first..]);
        self.chans[chan].len += items.len();
    }

    /// Pops the oldest item.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty.
    pub fn pop_one(&mut self, chan: usize) -> f64 {
        let c = self.chans[chan];
        assert!(c.len > 0, "pop_one on empty channel");
        let v = self.slab[c.off + c.head];
        self.consume(chan, 1);
        v
    }

    /// Appends one item.
    ///
    /// # Panics
    ///
    /// Panics on overflow, like [`RingSet::produce`].
    pub fn push_one(&mut self, chan: usize, v: f64) {
        self.produce(chan, &[v]);
    }
}

/// Head/tail counter on its own cache line so the producer's tail stores
/// and the consumer's head stores never false-share.
#[derive(Debug, Default)]
#[repr(align(128))]
struct PaddedCounter(AtomicUsize);

/// Endpoints of one SPSC channel. `head`/`tail` are monotonically
/// increasing item counts (never wrapped); the slab index is `count %
/// cap`. Occupancy is `tail - head`.
#[derive(Debug)]
struct SharedChan {
    off: usize,
    cap: usize,
    /// Items consumed so far (written only by the consumer thread).
    head: PaddedCounter,
    /// Items produced so far (written only by the producer thread).
    tail: PaddedCounter,
}

/// Lock-free single-producer/single-consumer rings over one shared slab —
/// the stage-boundary channels of the pipeline-parallel executor.
///
/// Same design as [`RingSet`] (all channels side by side in one slab,
/// exact capacities known up front) with the head/tail bookkeeping made
/// atomic: for every channel, exactly one thread produces and exactly one
/// thread consumes, so a release store on the producer's tail and an
/// acquire load on the consumer's side (and vice versa for backpressure)
/// are the only synchronization items ever need. Capacities are sized by
/// the partitioner so workers synchronize once per steady-iteration
/// batch, not per firing.
///
/// Channels with capacity 0 are placeholders (non-boundary channels keep
/// their global id); producing to or consuming from them is a bug.
#[derive(Debug)]
pub struct SharedRings {
    /// Per-element `UnsafeCell`s (same in-memory representation as `f64`)
    /// so item reads and writes go through interior-mutability raw
    /// pointers — no `&mut` over the slab is ever formed, which keeps
    /// concurrent producer writes and consumer reads of *disjoint*
    /// regions within Rust's aliasing rules.
    slab: Box<[UnsafeCell<f64>]>,
    chans: Vec<SharedChan>,
}

// SAFETY: the slab is only accessed through `produce` (writes the
// [tail, head+cap) region, called by the channel's single producer) and
// `consume` (reads the [head, tail) region, called by the single
// consumer). The two regions are disjoint, all access is through
// `UnsafeCell` raw pointers (no references to the items are retained
// across the handoff), and the acquire/release pairs on head/tail order
// the data accesses against the index handoff.
unsafe impl Sync for SharedRings {}
unsafe impl Send for SharedRings {}

impl SharedRings {
    /// Allocates rings with the given capacities (0 = unused placeholder).
    pub fn new(caps: &[usize]) -> Self {
        let mut chans = Vec::with_capacity(caps.len());
        let mut off = 0;
        for &cap in caps {
            chans.push(SharedChan {
                off,
                cap,
                head: PaddedCounter::default(),
                tail: PaddedCounter::default(),
            });
            off += cap;
        }
        SharedRings {
            slab: (0..off).map(|_| UnsafeCell::new(0.0)).collect(),
            chans,
        }
    }

    /// Capacity of one channel.
    pub fn capacity(&self, chan: usize) -> usize {
        self.chans[chan].cap
    }

    /// Items currently in flight on one channel (telemetry sampling).
    ///
    /// The head/tail counters are monotonic, so `tail - head` is exact at
    /// some instant between the two loads; either endpoint may race one
    /// produce/consume, which is fine for occupancy *sampling* (high-water
    /// marks, trace counters) and must not be used for flow control —
    /// `produce`/`consume` re-read their own counters with the proper
    /// ordering.
    pub fn occupancy(&self, chan: usize) -> usize {
        let c = &self.chans[chan];
        let head = c.head.0.load(Ordering::Acquire);
        let tail = c.tail.0.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Raw base pointer of one channel's ring. `UnsafeCell<f64>` has the
    /// same in-memory representation as `f64`, so element pointers may be
    /// used as `*mut f64`/`*const f64` directly.
    fn ring_ptr(&self, c: &SharedChan) -> *mut f64 {
        self.slab[c.off..].as_ptr() as *mut f64
    }

    /// Appends as many of `items` as the ring currently has space for and
    /// returns how many were written (0 when full — the producer spins or
    /// yields and retries with the rest). Producer side only.
    pub fn produce(&self, chan: usize, items: &[f64]) -> usize {
        let c = &self.chans[chan];
        debug_assert!(c.cap > 0, "produce on a zero-capacity shared ring");
        // Acquire pairs with the consumer's release store of `head`: once
        // we observe the space, the consumer's reads of it are complete.
        let head = c.head.0.load(Ordering::Acquire);
        let tail = c.tail.0.load(Ordering::Relaxed);
        let n = items.len().min(c.cap - (tail - head));
        if n == 0 {
            return 0;
        }
        let start = tail % c.cap;
        let first = n.min(c.cap - start);
        // SAFETY: [tail, tail + n) is unoccupied (checked against head
        // above), this thread is the channel's only producer, and the
        // writes go through `UnsafeCell` pointers (no `&mut` is formed).
        unsafe {
            let ring = self.ring_ptr(c);
            std::ptr::copy_nonoverlapping(items.as_ptr(), ring.add(start), first);
            std::ptr::copy_nonoverlapping(items.as_ptr().add(first), ring, n - first);
        }
        // Release publishes the item writes to the consumer's acquire.
        c.tail.0.store(tail + n, Ordering::Release);
        n
    }

    /// Hands up to `max` buffered items to `f` (as up to two slices, in
    /// FIFO order — the second is the wrapped tail), then marks them
    /// consumed. Returns how many items were passed (0 when empty — the
    /// consumer spins or yields and retries). Consumer side only.
    pub fn consume(&self, chan: usize, max: usize, f: impl FnOnce(&[f64], &[f64])) -> usize {
        let c = &self.chans[chan];
        debug_assert!(c.cap > 0, "consume on a zero-capacity shared ring");
        // Acquire pairs with the producer's release store of `tail`.
        let tail = c.tail.0.load(Ordering::Acquire);
        let head = c.head.0.load(Ordering::Relaxed);
        let n = max.min(tail - head);
        if n == 0 {
            return 0;
        }
        let start = head % c.cap;
        let first = n.min(c.cap - start);
        // SAFETY: [head, head + n) is occupied (checked against tail
        // above), this thread is the channel's only consumer, and the
        // producer never writes an occupied region — the shared slices
        // below alias only cells the producer will not touch until the
        // `head` release-store after `f` returns.
        unsafe {
            let ring = self.ring_ptr(c) as *const f64;
            f(
                std::slice::from_raw_parts(ring.add(start), first),
                std::slice::from_raw_parts(ring, n - first),
            );
        }
        // Release publishes the freed space to the producer's acquire.
        c.head.0.store(head + n, Ordering::Release);
        n
    }
}

/// Bounded exponential backoff for blocked boundary-ring operations.
///
/// The pipeline executor's original wait loop span pure spin with an
/// occasional `yield_now`, which on an oversubscribed or wedged host
/// burns a core for as long as the peer stays silent (BENCH_pr6 measured
/// a median 61% of worker time in ring spin-waits on degraded rows).
/// This ramp keeps the low-latency spin for short waits but caps the
/// damage of long ones: spin briefly (skipped entirely when the host has
/// a single core, where spinning can only delay the peer), then yield,
/// then sleep with exponentially growing bounded naps. The cap keeps a
/// torn-down worker responsive to the supervisor's poison flag.
#[derive(Debug)]
pub struct Backoff {
    /// Single-core host: spinning cannot help, go straight to yields.
    solo: bool,
    step: u32,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 96;
    const YIELD_LIMIT: u32 = 16;
    /// Longest single nap, in microseconds (2^8); short enough that a
    /// poisoned worker notices teardown promptly.
    const SLEEP_CAP_EXP: u32 = 8;

    /// A fresh ramp. `solo` marks a single-core host.
    pub fn new(solo: bool) -> Self {
        Backoff { solo, step: 0 }
    }

    /// Wait once, escalating on each successive call: spin → yield →
    /// bounded exponential sleep.
    pub fn wait(&mut self) {
        let step = self.step;
        self.step = step.saturating_add(1);
        let spin_limit = if self.solo { 0 } else { Self::SPIN_LIMIT };
        if step < spin_limit {
            std::hint::spin_loop();
            return;
        }
        let past = step - spin_limit;
        if past < Self::YIELD_LIMIT {
            std::thread::yield_now();
            return;
        }
        let exp = (past - Self::YIELD_LIMIT).min(Self::SLEEP_CAP_EXP);
        std::thread::sleep(std::time::Duration::from_micros(1 << exp));
    }

    /// Restart the ramp after progress.
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_round_trips() {
        let mut r = RingSet::new(&[4], &[]);
        r.produce(0, &[1.0, 2.0, 3.0]);
        assert_eq!(r.window(0, 2), &[1.0, 2.0]);
        r.consume(0, 2);
        r.produce(0, &[4.0, 5.0, 6.0]);
        assert_eq!(r.len(0), 4);
        assert_eq!(r.window(0, 4), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn wrapped_windows_are_assembled_in_scratch() {
        let mut r = RingSet::new(&[4], &[]);
        r.produce(0, &[1.0, 2.0, 3.0, 4.0]);
        r.consume(0, 3);
        r.produce(0, &[5.0, 6.0, 7.0]); // wraps: slab now [5,6,7,4], head=3
        assert_eq!(r.window(0, 4), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn initial_items_are_preloaded() {
        let mut r = RingSet::new(&[2, 3], &[(1, vec![9.0, 8.0])]);
        assert!(r.is_empty(0));
        assert_eq!(r.pop_one(1), 9.0);
        assert_eq!(r.pop_one(1), 8.0);
    }

    #[test]
    #[should_panic(expected = "overflows ring")]
    fn overflow_is_a_bug_not_a_growth_path() {
        let mut r = RingSet::new(&[2], &[]);
        r.produce(0, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn many_channels_share_the_slab() {
        let mut r = RingSet::new(&[1, 2, 3], &[]);
        r.push_one(0, 1.0);
        r.produce(1, &[2.0, 3.0]);
        r.produce(2, &[4.0, 5.0, 6.0]);
        assert_eq!(r.pop_one(0), 1.0);
        assert_eq!(r.window(1, 2), &[2.0, 3.0]);
        assert_eq!(r.window(2, 3), &[4.0, 5.0, 6.0]);
    }

    fn drain(s: &SharedRings, chan: usize, max: usize) -> Vec<f64> {
        let mut out = Vec::new();
        s.consume(chan, max, |a, b| {
            out.extend_from_slice(a);
            out.extend_from_slice(b);
        });
        out
    }

    #[test]
    fn spsc_ring_round_trips_in_fifo_order() {
        let s = SharedRings::new(&[4]);
        assert_eq!(s.produce(0, &[1.0, 2.0, 3.0]), 3);
        assert_eq!(drain(&s, 0, 2), &[1.0, 2.0]);
        // Wraps: writes land at slab positions 3, 0.
        assert_eq!(s.produce(0, &[4.0, 5.0, 6.0]), 3);
        assert_eq!(s.produce(0, &[7.0]), 0, "ring is full");
        assert_eq!(drain(&s, 0, usize::MAX), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(drain(&s, 0, usize::MAX), Vec::<f64>::new());
    }

    #[test]
    fn spsc_partial_produce_reports_written_count() {
        let s = SharedRings::new(&[2, 3]);
        assert_eq!(s.produce(1, &[1.0, 2.0, 3.0, 4.0]), 3);
        assert_eq!(drain(&s, 1, 1), &[1.0]);
        assert_eq!(s.produce(1, &[4.0, 5.0]), 1);
        assert_eq!(drain(&s, 1, usize::MAX), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn spsc_cross_thread_stream_is_lossless() {
        const N: usize = 100_000;
        let s = SharedRings::new(&[7]);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut sent = 0usize;
                while sent < N {
                    let batch: Vec<f64> = (sent..(sent + 13).min(N)).map(|i| i as f64).collect();
                    let mut off = 0;
                    while off < batch.len() {
                        let n = s.produce(0, &batch[off..]);
                        off += n;
                        if n == 0 {
                            std::thread::yield_now();
                        }
                    }
                    sent += batch.len();
                }
            });
            let mut got = Vec::with_capacity(N);
            while got.len() < N {
                if s.consume(0, usize::MAX, |a, b| {
                    got.extend_from_slice(a);
                    got.extend_from_slice(b);
                }) == 0
                {
                    std::thread::yield_now();
                }
            }
            for (i, v) in got.iter().enumerate() {
                assert_eq!(*v, i as f64);
            }
        });
    }

    #[test]
    fn backoff_ramps_and_stays_bounded() {
        // The ramp must terminate in bounded naps (never longer than the
        // cap) and must reset cleanly; drive it far past every threshold.
        for solo in [false, true] {
            let mut b = Backoff::new(solo);
            let t0 = std::time::Instant::now();
            for _ in 0..(Backoff::SPIN_LIMIT + Backoff::YIELD_LIMIT + 24) {
                b.wait();
            }
            // 24 sleeps capped at 2^8 µs each ≈ 6 ms; allow generous slack.
            assert!(t0.elapsed() < std::time::Duration::from_secs(2));
            b.reset();
            assert_eq!(b.step, 0);
        }
    }
}
