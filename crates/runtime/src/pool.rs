//! A persistent, self-healing worker-thread pool for the pipeline
//! executor.
//!
//! PR 4 spawned one scoped thread per stage per run, which is fine for
//! long runs but dominates sub-millisecond ones (thread spawn is tens of
//! microseconds — several steady cycles of a small graph). This module
//! keeps the threads: a [`PipelinePool`] owns parked workers that serve
//! one boxed job at a time, and [`crate::parallel::run_pipeline`] draws
//! its stage workers from a process-wide pool, returning them when the
//! run finishes.
//!
//! Three properties keep this safe under `cargo test`'s in-process
//! concurrency and under injected faults:
//!
//! * a run *acquires all its stage workers atomically* (spawning fresh
//!   ones when the idle list runs short), so two concurrent pipeline
//!   runs can never each hold half of the threads they need and stall
//!   each other;
//! * job panics are normally contained *inside* the job (the pipeline's
//!   `worker_main` wraps stage execution in `catch_unwind`); a panic
//!   that escapes that containment leaves the worker in an unknown
//!   state, so the thread retires itself instead of parking again —
//!   and the pool *self-heals*: acquisition and release detect dead
//!   workers via a liveness token and replace them with fresh spawns,
//!   so one poisoned worker no longer degrades the pool for the process
//!   lifetime;
//! * the supervisor can [`retire_global`] a run's whole complement when
//!   a teardown abandoned workers mid-job (watchdog trip with a thread
//!   that never reported), guaranteeing the next run starts from known-
//!   good threads.
//!
//! Pooling changes scheduling only, never data: each stage's state is
//! moved into its job exactly as it was moved into a scoped thread
//! before, so outputs, tallies and firing counts are untouched —
//! `tests/pool_reuse.rs` pins that two back-to-back runs on one pool
//! print identical bits without spawning new threads for the second,
//! and that a fault-killed worker is respawned on the next acquisition.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, OnceLock};

use streamlin_support::FaultPlan;

/// A unit of work shipped to a pooled thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One parked worker thread, addressed by its job channel.
pub(crate) struct PoolThread {
    tx: Sender<Job>,
    /// Liveness token: the worker loop holds the only other strong
    /// reference, so `strong_count > 1` ⇔ the thread is still serving.
    alive: Arc<()>,
}

impl PoolThread {
    /// Runs `job` on this worker (queued; the thread executes jobs in
    /// order). Dropping all handles to the channel retires the thread.
    pub(crate) fn run(&self, job: Job) {
        // A send fails only if the worker thread died; acquisition
        // filters dead workers, and the supervisor's liveness checks
        // cover a death after hand-off.
        let _ = self.tx.send(job);
    }

    /// Whether the worker loop is still running (its liveness token is
    /// dropped on any exit path, including an uncontained job panic).
    pub(crate) fn is_alive(&self) -> bool {
        Arc::strong_count(&self.alive) > 1
    }
}

/// A reusable set of worker threads.
pub struct PipelinePool {
    idle: Vec<PoolThread>,
    spawned: usize,
    retired: usize,
}

impl PipelinePool {
    /// An empty pool; threads are spawned on first demand.
    pub const fn new() -> Self {
        PipelinePool {
            idle: Vec::new(),
            spawned: 0,
            retired: 0,
        }
    }

    /// Total threads ever spawned by this pool (a second run that reuses
    /// the pool leaves this unchanged — the regression handle for the
    /// "pools are spawned per run" caveat).
    pub fn spawned(&self) -> usize {
        self.spawned
    }

    /// Workers currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.idle.len()
    }

    /// Workers dropped dead or abandoned (self-healing counter: each one
    /// was replaced by a fresh spawn on the acquisition that needed it).
    pub fn retired(&self) -> usize {
        self.retired
    }

    /// Takes `n` workers out of the pool, spawning the shortfall. Dead
    /// parked workers (a prior job's panic escaped containment) are
    /// discarded and replaced — the pool self-heals here rather than
    /// handing a run a thread that will never serve its job.
    pub(crate) fn acquire(&mut self, n: usize) -> Vec<PoolThread> {
        let mut taken = Vec::with_capacity(n);
        while taken.len() < n {
            match self.idle.pop() {
                Some(t) if t.is_alive() => taken.push(t),
                Some(_) => self.retired += 1,
                None => {
                    taken.push(spawn_worker());
                    self.spawned += 1;
                }
            }
        }
        taken
    }

    /// Returns workers to the pool for the next run, dropping any that
    /// died while serving.
    pub(crate) fn release(&mut self, threads: Vec<PoolThread>) {
        for t in threads {
            if t.is_alive() {
                self.idle.push(t);
            } else {
                self.retired += 1;
            }
        }
    }

    /// Drops a run's whole complement without re-parking it: used when a
    /// teardown abandoned workers mid-job (their state is unknown).
    pub(crate) fn retire(&mut self, threads: Vec<PoolThread>) {
        self.retired += threads.len();
        // Dropping the handles closes the job channels; each thread
        // exits after finishing whatever it is still running.
        drop(threads);
    }
}

impl Default for PipelinePool {
    fn default() -> Self {
        Self::new()
    }
}

fn spawn_worker() -> PoolThread {
    let (tx, rx) = channel::<Job>();
    let alive = Arc::new(());
    let token = Arc::clone(&alive);
    std::thread::Builder::new()
        .name("streamlin-pipeline".into())
        .spawn(move || {
            // Dropped on every exit path; `is_alive` watches the count.
            let _token = token;
            while let Ok(job) = rx.recv() {
                if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                    // Stage execution contains its own panics inside the
                    // job (`worker_main`); one that reaches here left the
                    // worker in an unknown state. Retire the thread — the
                    // pool respawns a replacement at the next acquisition
                    // instead of parking a poisoned worker forever.
                    break;
                }
            }
        })
        .expect("spawning a pipeline worker thread");
    PoolThread { tx, alive }
}

/// The process-wide pool [`crate::parallel::run_pipeline`] draws from.
fn global() -> &'static Mutex<PipelinePool> {
    static POOL: OnceLock<Mutex<PipelinePool>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(PipelinePool::new()))
}

/// Acquires `n` workers from the process-wide pool.
pub(crate) fn acquire_global(n: usize) -> Vec<PoolThread> {
    global().lock().expect("pipeline pool poisoned").acquire(n)
}

/// Fault-checked acquisition: an armed [`FaultPlan`] may refuse the whole
/// run (exercising the supervisor's pool-exhaustion fallback); the
/// production plan compiles down to plain [`acquire_global`].
pub(crate) fn acquire_global_faulted<F: FaultPlan>(
    n: usize,
    fault: &F,
) -> Result<Vec<PoolThread>, String> {
    if F::ARMED {
        if let Some(reason) = fault.pool_refuse() {
            return Err(reason);
        }
    }
    Ok(acquire_global(n))
}

/// Returns workers to the process-wide pool.
pub(crate) fn release_global(threads: Vec<PoolThread>) {
    global()
        .lock()
        .expect("pipeline pool poisoned")
        .release(threads);
}

/// Retires a run's workers without re-parking them (supervisor teardown
/// after an abandoned run).
pub(crate) fn retire_global(threads: Vec<PoolThread>) {
    global()
        .lock()
        .expect("pipeline pool poisoned")
        .retire(threads);
}

/// Threads ever spawned by the process-wide pool. Repeated
/// [`crate::measure::profile_threads`] runs reuse them, so this is stable
/// across back-to-back runs of the same shape.
pub fn global_spawned() -> usize {
    global().lock().expect("pipeline pool poisoned").spawned()
}

/// Workers currently parked in the process-wide pool (telemetry: how much
/// of an acquisition was served from the pool vs freshly spawned).
pub fn global_idle() -> usize {
    global().lock().expect("pipeline pool poisoned").idle()
}

/// Workers the process-wide pool has retired (died or abandoned); the
/// self-healing counterpart to [`global_spawned`].
pub fn global_retired() -> usize {
    global().lock().expect("pipeline pool poisoned").retired()
}
