//! A persistent worker-thread pool for the pipeline executor.
//!
//! PR 4 spawned one scoped thread per stage per run, which is fine for
//! long runs but dominates sub-millisecond ones (thread spawn is tens of
//! microseconds — several steady cycles of a small graph). This module
//! keeps the threads: a [`PipelinePool`] owns parked workers that serve
//! one boxed job at a time, and [`crate::parallel::run_pipeline`] draws
//! its stage workers from a process-wide pool, returning them when the
//! run finishes.
//!
//! Two properties keep this safe under `cargo test`'s in-process
//! concurrency:
//!
//! * a run *acquires all its stage workers atomically* (spawning fresh
//!   ones when the idle list runs short), so two concurrent pipeline
//!   runs can never each hold half of the threads they need and stall
//!   each other;
//! * a panicking job is contained by the worker loop (the thread
//!   survives and returns to the pool), mirroring the panic containment
//!   the pipeline protocol already has per stage.
//!
//! Pooling changes scheduling only, never data: each stage's state is
//! moved into its job exactly as it was moved into a scoped thread
//! before, so outputs, tallies and firing counts are untouched —
//! `tests/pool_reuse.rs` pins that two back-to-back runs on one pool
//! print identical bits without spawning new threads for the second.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Mutex, OnceLock};

/// A unit of work shipped to a pooled thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One parked worker thread, addressed by its job channel.
pub(crate) struct PoolThread {
    tx: Sender<Job>,
}

impl PoolThread {
    /// Runs `job` on this worker (queued; the thread executes jobs in
    /// order). Dropping all handles to the channel retires the thread.
    pub(crate) fn run(&self, job: Job) {
        // A send can only fail if the worker thread died, which the
        // catch_unwind in its loop prevents; the pipeline protocol's
        // disconnect handling covers the impossible remainder.
        let _ = self.tx.send(job);
    }
}

/// A reusable set of worker threads.
pub struct PipelinePool {
    idle: Vec<PoolThread>,
    spawned: usize,
}

impl PipelinePool {
    /// An empty pool; threads are spawned on first demand.
    pub const fn new() -> Self {
        PipelinePool {
            idle: Vec::new(),
            spawned: 0,
        }
    }

    /// Total threads ever spawned by this pool (a second run that reuses
    /// the pool leaves this unchanged — the regression handle for the
    /// "pools are spawned per run" caveat).
    pub fn spawned(&self) -> usize {
        self.spawned
    }

    /// Workers currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.idle.len()
    }

    /// Takes `n` workers out of the pool, spawning the shortfall.
    pub(crate) fn acquire(&mut self, n: usize) -> Vec<PoolThread> {
        let mut taken = Vec::with_capacity(n);
        while taken.len() < n {
            match self.idle.pop() {
                Some(t) => taken.push(t),
                None => {
                    taken.push(spawn_worker());
                    self.spawned += 1;
                }
            }
        }
        taken
    }

    /// Returns workers to the pool for the next run.
    pub(crate) fn release(&mut self, threads: Vec<PoolThread>) {
        self.idle.extend(threads);
    }
}

impl Default for PipelinePool {
    fn default() -> Self {
        Self::new()
    }
}

fn spawn_worker() -> PoolThread {
    let (tx, rx) = channel::<Job>();
    std::thread::Builder::new()
        .name("streamlin-pipeline".into())
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                // Contain job panics so the thread stays reusable; the
                // pipeline coordinator observes the failure through its
                // own result channels.
                let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
            }
        })
        .expect("spawning a pipeline worker thread");
    PoolThread { tx }
}

/// The process-wide pool [`crate::parallel::run_pipeline`] draws from.
fn global() -> &'static Mutex<PipelinePool> {
    static POOL: OnceLock<Mutex<PipelinePool>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(PipelinePool::new()))
}

/// Acquires `n` workers from the process-wide pool.
pub(crate) fn acquire_global(n: usize) -> Vec<PoolThread> {
    global().lock().expect("pipeline pool poisoned").acquire(n)
}

/// Returns workers to the process-wide pool.
pub(crate) fn release_global(threads: Vec<PoolThread>) {
    global()
        .lock()
        .expect("pipeline pool poisoned")
        .release(threads);
}

/// Threads ever spawned by the process-wide pool. Repeated
/// [`crate::measure::profile_threads`] runs reuse them, so this is stable
/// across back-to-back runs of the same shape.
pub fn global_spawned() -> usize {
    global().lock().expect("pipeline pool poisoned").spawned()
}

/// Workers currently parked in the process-wide pool (telemetry: how much
/// of an acquisition was served from the pool vs freshly spawned).
pub fn global_idle() -> usize {
    global().lock().expect("pipeline pool poisoned").idle()
}
