//! Static steady-state execution plans (the schedule compiler).
//!
//! StreamIt programs run under a schedule resolved entirely at compile
//! time (§2.1 of the paper): the balance equations give every node a fixed
//! repetition count per steady-state cycle, an initialization phase
//! satisfies peek prologues and `initWork` phases, and channel occupancies
//! are periodic — so buffer sizes are known exactly before the first item
//! flows. This module compiles a [`crate::flat::FlatGraph`] into that
//! form:
//!
//! * [`compile`] solves the flat balance equations (via
//!   [`streamlin_graph::steady::balance`]), topologically orders the
//!   nodes, derives an **init schedule** (extra upstream firings that build
//!   up each consumer's `peek − pop` lookahead slack, plus every firing
//!   whose rates differ from the steady phase, e.g. `initWork`), then
//!   symbolically executes init + one steady cycle to compute **exact
//!   per-channel capacities** — yielding an [`ExecPlan`].
//! * [`PlanEngine`] executes a plan over [`crate::ring::RingSet`] ring
//!   buffers in one contiguous slab: no readiness polling, no `VecDeque`
//!   shuffling, no per-firing window allocation. Consecutive firings of a
//!   linear node become one blocked multiply
//!   ([`crate::linear_exec::LinearExec::fire_batch`]).
//!
//! Graphs the compiler cannot schedule — feedback loops (cyclic, never
//! collapsed per §3.3/§7.1), zero-rate channels, or inconsistent rates —
//! are reported as [`PlanError`]s; [`crate::measure::profile`] falls back
//! to the data-driven [`crate::engine::Engine`] for those.
//!
//! The firing *semantics* are shared with the dynamic engine (same
//! slot-resolved work-function interpreter via
//! [`crate::engine::run_work_phase`], same kernels, same operation
//! counting), so a program's printed output is bit-identical under either
//! scheduler; the equivalence suite in `tests/sched_equivalence.rs` pins
//! that down for every benchmark.

use streamlin_graph::steady::{balance, RateEdge};
use streamlin_support::{NoProbe, OpCounter, Probe, Tally};

use crate::engine::{interp_phase_rates, run_work_phase, RunError};
use crate::fission::FissKernel;
use crate::flat::{FlatGraph, FlatNode, NodeKind};
use crate::ring::RingSet;

/// Per-channel capacity bound (matches the dynamic engine's safety net).
const CAP_LIMIT: u64 = 1 << 24;
/// Bound on the whole slab, across all channels.
const SLAB_LIMIT: u64 = 1 << 26;
/// Bound on firings per steady cycle (keeps plans and runs tractable).
const FIRINGS_LIMIT: u64 = 1 << 26;

/// Why a graph has no static plan (the caller falls back to the
/// data-driven scheduler).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The graph contains a cycle (feedback loops stay data-driven).
    Cyclic,
    /// The balance equations have no consistent solution.
    Unschedulable(String),
    /// The plan exists but exceeds implementation bounds.
    TooLarge(String),
    /// A structural invariant of flattening is violated.
    Malformed(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Cyclic => write!(f, "graph has a feedback cycle"),
            PlanError::Unschedulable(m) => write!(f, "not statically schedulable: {m}"),
            PlanError::TooLarge(m) => write!(f, "plan exceeds bounds: {m}"),
            PlanError::Malformed(m) => write!(f, "malformed flat graph: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// `times` consecutive firings of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Node index in the flat graph.
    pub node: usize,
    /// Consecutive firings.
    pub times: u32,
}

/// A compiled schedule: run `init` once, then repeat `steady` forever.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPlan {
    /// Initialization firings (peek prologues, `initWork` phases).
    pub init: Vec<Step>,
    /// One steady-state cycle, in topological order.
    pub steady: Vec<Step>,
    /// Exact per-channel capacity (the maximum occupancy over init plus
    /// one steady cycle — and therefore over the whole run).
    pub caps: Vec<usize>,
}

impl ExecPlan {
    /// Firings per steady cycle.
    pub fn steady_firings(&self) -> u64 {
        self.steady.iter().map(|s| s.times as u64).sum()
    }

    /// Firings in the init phase.
    pub fn init_firings(&self) -> u64 {
        self.init.iter().map(|s| s.times as u64).sum()
    }

    /// Total buffer slots across all channels.
    pub fn buffer_slots(&self) -> usize {
        self.caps.iter().sum()
    }

    /// One-line description for logs and the CLI.
    pub fn summary(&self) -> String {
        format!(
            "{} init + {} steady firings/cycle over {} channels ({} buffer slots)",
            self.init_firings(),
            self.steady_firings(),
            self.caps.len(),
            self.buffer_slots()
        )
    }
}

/// `(peek, pop)` per input channel and pushes per output channel for one
/// firing phase of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Phase {
    pub(crate) in_peek: Vec<u64>,
    pub(crate) in_pop: Vec<u64>,
    pub(crate) out_push: Vec<u64>,
}

/// A node's rate signature: the steady phase, plus a distinct first-firing
/// phase when one exists (`initWork`, frequency priming).
#[derive(Debug, Clone)]
pub(crate) struct Rates {
    pub(crate) steady: Phase,
    pub(crate) first: Option<Phase>,
}

impl Rates {
    /// The phase of firing `idx` (0-based since node creation).
    pub(crate) fn phase(&self, first_firing: bool) -> &Phase {
        match (&self.first, first_firing) {
            (Some(f), true) => f,
            _ => &self.steady,
        }
    }

    fn has_distinct_first(&self) -> bool {
        self.first.as_ref().is_some_and(|f| *f != self.steady)
    }
}

fn phase_for(node: &FlatNode, peek: u64, pop: u64, push: u64) -> Phase {
    Phase {
        in_peek: if node.inputs.is_empty() {
            vec![]
        } else {
            vec![peek.max(pop)]
        },
        in_pop: if node.inputs.is_empty() {
            vec![]
        } else {
            vec![pop]
        },
        out_push: if node.outputs.is_empty() {
            vec![]
        } else {
            vec![push]
        },
    }
}

pub(crate) fn node_rates(node: &FlatNode) -> Rates {
    match &node.kind {
        NodeKind::Interp(s) => {
            let w = &s.inst.work;
            let steady = phase_for(node, w.peek as u64, w.pop as u64, w.push as u64);
            let first = s
                .inst
                .init_work
                .as_ref()
                .filter(|_| s.first)
                .map(|iw| phase_for(node, iw.peek as u64, iw.pop as u64, iw.push as u64));
            Rates { steady, first }
        }
        NodeKind::Linear(exec) => {
            let n = exec.node();
            Rates {
                steady: phase_for(node, n.peek() as u64, n.pop() as u64, n.push() as u64),
                first: None,
            }
        }
        NodeKind::Redund(exec) => {
            let n = exec.spec().node();
            Rates {
                steady: phase_for(node, n.peek() as u64, n.pop() as u64, n.push() as u64),
                first: None,
            }
        }
        NodeKind::Freq(exec) => {
            let spec = exec.spec();
            let (peek, pop, push) = spec.work_rates();
            let steady = phase_for(node, peek as u64, pop as u64, push as u64);
            let first = spec
                .init_work_rates()
                .map(|(pe, po, pu)| phase_for(node, pe as u64, po as u64, pu as u64));
            Rates { steady, first }
        }
        NodeKind::Decimator { pop, push } => Rates {
            steady: phase_for(node, *pop as u64, *pop as u64, *push as u64),
            first: None,
        },
        NodeKind::Periodic { .. } => Rates {
            steady: phase_for(node, 0, 0, 1),
            first: None,
        },
        NodeKind::PrintSink { pop } | NodeKind::DiscardSink { pop } => Rates {
            steady: phase_for(node, *pop as u64, *pop as u64, 0),
            first: None,
        },
        NodeKind::FissSplit(sp) => {
            let steady = Phase {
                in_peek: vec![(sp.steady_pop() + sp.suffix) as u64],
                in_pop: vec![sp.steady_pop() as u64],
                out_push: vec![sp.chunk_len() as u64; node.outputs.len()],
            };
            let first = (sp.first_share > 0 && sp.first).then(|| {
                let mut out_push = vec![0u64; node.outputs.len()];
                out_push[0] = (sp.first_share + sp.suffix) as u64;
                Phase {
                    in_peek: vec![(sp.first_share + sp.suffix) as u64],
                    in_pop: vec![sp.first_share as u64],
                    out_push,
                }
            });
            Rates { steady, first }
        }
        NodeKind::FissWorker(fw) => {
            let steady = phase_for(
                node,
                fw.chunk_len() as u64,
                fw.chunk_len() as u64,
                (fw.batch * fw.push) as u64,
            );
            let first = (fw.first_fires > 0 && fw.first).then(|| {
                phase_for(
                    node,
                    fw.first_chunk_len() as u64,
                    fw.first_chunk_len() as u64,
                    fw.first_pushes() as u64,
                )
            });
            Rates { steady, first }
        }
        NodeKind::FissJoin(fj) => {
            let steady = Phase {
                in_peek: vec![fj.weight as u64; node.inputs.len()],
                in_pop: vec![fj.weight as u64; node.inputs.len()],
                out_push: vec![(fj.width * fj.weight) as u64],
            };
            let first = (fj.first_take > 0 && fj.first).then(|| {
                let mut in_pop = vec![0u64; node.inputs.len()];
                in_pop[0] = fj.first_take as u64;
                Phase {
                    in_peek: in_pop.clone(),
                    in_pop,
                    out_push: vec![fj.first_take as u64],
                }
            });
            Rates { steady, first }
        }
        NodeKind::Duplicate => Rates {
            steady: Phase {
                in_peek: vec![1],
                in_pop: vec![1],
                out_push: vec![1; node.outputs.len()],
            },
            first: None,
        },
        NodeKind::SplitRR(w) => Rates {
            steady: Phase {
                in_peek: vec![w.iter().map(|&x| x as u64).sum()],
                in_pop: vec![w.iter().map(|&x| x as u64).sum()],
                out_push: w.iter().map(|&x| x as u64).collect(),
            },
            first: None,
        },
        NodeKind::JoinRR(w) => Rates {
            steady: Phase {
                in_peek: w.iter().map(|&x| x as u64).collect(),
                in_pop: w.iter().map(|&x| x as u64).collect(),
                out_push: vec![w.iter().map(|&x| x as u64).sum()],
            },
            first: None,
        },
    }
}

/// Items a batch of `k` firings needs buffered on input slot `s` before it
/// starts (the peak of `consumed-so-far + peek` over the batch).
pub(crate) fn batch_need(rates: &Rates, first_firing: bool, k: u64, s: usize) -> u64 {
    if k == 0 {
        return 0;
    }
    let fp = rates.phase(first_firing);
    let sp = &rates.steady;
    let mut need = fp.in_peek[s];
    if k >= 2 {
        need = need.max(fp.in_pop[s] + (k - 2) * sp.in_pop[s] + sp.in_peek[s]);
    }
    need
}

/// Items a batch of `k` firings pops from input slot `s` in total.
pub(crate) fn batch_pop(rates: &Rates, first_firing: bool, k: u64, s: usize) -> u64 {
    if k == 0 {
        return 0;
    }
    let fp = rates.phase(first_firing);
    fp.in_pop[s] + (k - 1) * rates.steady.in_pop[s]
}

/// Items a batch of `k` firings pushes to output slot `s` in total.
pub(crate) fn batch_push(rates: &Rates, first_firing: bool, k: u64, s: usize) -> u64 {
    if k == 0 {
        return 0;
    }
    let fp = rates.phase(first_firing);
    fp.out_push[s] + (k - 1) * rates.steady.out_push[s]
}

/// Minimal firings of a producer (whose first firing may still be pending
/// when `fired` is false) so that its pushes on output slot `s` cover
/// `deficit` items. `None` when no number of firings can (zero steady
/// push). Shared by the init-phase derivation and the demand-driven steady
/// generator so the two can never disagree.
fn fires_to_cover(rates: &Rates, fired: bool, s: usize, deficit: u64) -> Option<u64> {
    debug_assert!(deficit > 0, "no firings needed for a zero deficit");
    let first_push = rates.phase(!fired).out_push[s];
    let steady_push = rates.steady.out_push[s];
    if first_push >= deficit {
        Some(1)
    } else if steady_push == 0 {
        None
    } else {
        Some(1 + (deficit - first_push).div_ceil(steady_push))
    }
}

/// Compiles a flat graph into a static execution plan.
///
/// # Errors
///
/// See [`PlanError`]; the caller is expected to fall back to the dynamic
/// engine on failure.
pub fn compile(flat: &FlatGraph) -> Result<ExecPlan, PlanError> {
    let n = flat.nodes.len();
    let rates: Vec<Rates> = flat.nodes.iter().map(node_rates).collect();

    // Channel endpoints: (node, slot) of the producer and the consumer.
    let mut prod: Vec<Option<(usize, usize)>> = vec![None; flat.num_channels];
    let mut cons: Vec<Option<(usize, usize)>> = vec![None; flat.num_channels];
    for (i, node) in flat.nodes.iter().enumerate() {
        for (s, &c) in node.outputs.iter().enumerate() {
            if prod[c].replace((i, s)).is_some() {
                return Err(PlanError::Malformed(format!(
                    "channel {c} has two producers"
                )));
            }
        }
        for (s, &c) in node.inputs.iter().enumerate() {
            if cons[c].replace((i, s)).is_some() {
                return Err(PlanError::Malformed(format!(
                    "channel {c} has two consumers"
                )));
            }
        }
    }
    let mut edges = Vec::with_capacity(flat.num_channels);
    let mut endpoints = Vec::with_capacity(flat.num_channels);
    for c in 0..flat.num_channels {
        let (p, ps) =
            prod[c].ok_or_else(|| PlanError::Malformed(format!("channel {c} has no producer")))?;
        let (q, qs) =
            cons[c].ok_or_else(|| PlanError::Malformed(format!("channel {c} has no consumer")))?;
        edges.push(RateEdge {
            from: p,
            to: q,
            push: rates[p].steady.out_push[ps],
            pop: rates[q].steady.in_pop[qs],
        });
        endpoints.push(((p, ps), (q, qs)));
    }
    for e in &edges {
        if e.push == 0 || e.pop == 0 {
            return Err(PlanError::Unschedulable(format!(
                "channel {} -> {} has a zero steady rate",
                e.from, e.to
            )));
        }
    }

    // Repetition vector.
    let reps = balance(n, &edges).map_err(|e| PlanError::Unschedulable(e.message))?;
    let total: u64 = reps.iter().sum();
    if total > FIRINGS_LIMIT || reps.iter().any(|&q| q > u32::MAX as u64) {
        return Err(PlanError::TooLarge(format!(
            "{total} firings per steady cycle"
        )));
    }

    // Topological order (Kahn); a leftover node means a cycle.
    let mut indeg = vec![0usize; n];
    for e in &edges {
        indeg[e.to] += 1;
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut topo = Vec::with_capacity(n);
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ei, e) in edges.iter().enumerate() {
        out_edges[e.from].push(ei);
    }
    while let Some(i) = ready.pop() {
        topo.push(i);
        for &ei in &out_edges[i] {
            let t = edges[ei].to;
            indeg[t] -= 1;
            if indeg[t] == 0 {
                ready.push(t);
            }
        }
    }
    if topo.len() != n {
        return Err(PlanError::Cyclic);
    }

    // Init repetition counts, consumers before producers: every node whose
    // first firing has distinct rates must fire during init; a producer
    // fires enough extra times to cover its consumers' init consumption
    // plus their steady lookahead slack (peek − pop).
    let mut init_fires = vec![0u64; n];
    let mut initial_items = vec![0u64; flat.num_channels];
    for (c, items) in &flat.initial {
        initial_items[*c] = items.len() as u64;
    }
    for &j in topo.iter().rev() {
        let mut k = u64::from(rates[j].has_distinct_first());
        for &ei in &out_edges[j] {
            let ((_, ps), (q, qs)) = endpoints[ei];
            let c = flat.nodes[j].outputs[ps];
            let slack = rates[q].steady.in_peek[qs] - rates[q].steady.in_pop[qs];
            let consumed = batch_pop(&rates[q], true, init_fires[q], qs);
            let needed_on_chan = batch_need(&rates[q], true, init_fires[q], qs)
                .max(consumed + slack)
                .saturating_sub(initial_items[c]);
            if needed_on_chan == 0 {
                continue;
            }
            // Minimal fires of j so its (first + steady) pushes cover it.
            let fires = fires_to_cover(&rates[j], false, ps, needed_on_chan).ok_or_else(|| {
                PlanError::Unschedulable(format!(
                    "node {} cannot supply its consumer's init prologue",
                    flat.nodes[j].name
                ))
            })?;
            k = k.max(fires);
        }
        if k > u32::MAX as u64 {
            return Err(PlanError::TooLarge("init phase too long".into()));
        }
        init_fires[j] = k;
    }

    // Symbolic execution of init + one steady cycle: validates the
    // schedule and records each channel's exact maximum occupancy.
    //
    // The init phase runs topo-batched (a one-time cost). The steady cycle
    // is generated *demand-driven*: sinks are pulled one firing at a time,
    // each pull recursively firing producers in the largest batch that
    // covers the remaining demand. That keeps contiguous runs (so linear
    // nodes still batch) while giving the schedule the same fine
    // interleaving the data-driven engine discovers at run time — which is
    // what lets the plan engine stop a few steps past the requested output
    // count instead of overshooting by a whole cycle (frequency-heavy
    // graphs can emit thousands of outputs per cycle).
    let mut sim = Sim {
        flat,
        rates: &rates,
        prod: &prod,
        occ: initial_items.clone(),
        max_occ: initial_items,
        fired: vec![false; n],
        budget: init_fires.clone(),
        seq: Vec::new(),
        depth: 0,
    };
    for &i in &topo {
        if init_fires[i] > 0 {
            sim.fire_batch(i, init_fires[i])?;
        }
    }
    let init = std::mem::take(&mut sim.seq);
    let post_init = sim.occ.clone();
    sim.budget.copy_from_slice(&reps);
    let sinks: Vec<usize> = (0..n)
        .filter(|&i| flat.nodes[i].outputs.is_empty())
        .collect();
    if sinks.is_empty() {
        return Err(PlanError::Unschedulable("graph has no sink".into()));
    }
    loop {
        let mut any = false;
        for &s in &sinks {
            if sim.budget[s] > 0 {
                sim.pull(s, 1)?;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    // Nodes whose output the sinks drew from *buffered* slack (built up by
    // the init phase) still owe firings this cycle: replenish in topo
    // order so every channel returns to its periodic occupancy.
    for &i in &topo {
        let owed = sim.budget[i];
        if owed > 0 {
            sim.pull(i, owed)?;
        }
    }
    if let Some(i) = (0..n).find(|&i| sim.budget[i] > 0) {
        return Err(PlanError::Unschedulable(format!(
            "node {} has {} unconsumed firings per cycle",
            flat.nodes[i].name, sim.budget[i]
        )));
    }
    if sim.occ != post_init {
        return Err(PlanError::Unschedulable(
            "steady cycle does not restore channel occupancies".into(),
        ));
    }
    if sim.max_occ.iter().sum::<u64>() > SLAB_LIMIT {
        return Err(PlanError::TooLarge(
            "total buffering exceeds the slab bound".into(),
        ));
    }
    Ok(ExecPlan {
        init,
        steady: sim.seq,
        caps: sim.max_occ.into_iter().map(|v| v as usize).collect(),
    })
}

/// Symbolic executor used by [`compile`]: tracks occupancies, firing
/// budgets and high-water marks while recording the firing sequence.
struct Sim<'a> {
    flat: &'a FlatGraph,
    rates: &'a [Rates],
    /// Per channel: `(producer node, output slot)`.
    prod: &'a [Option<(usize, usize)>],
    occ: Vec<u64>,
    max_occ: Vec<u64>,
    fired: Vec<bool>,
    budget: Vec<u64>,
    seq: Vec<Step>,
    depth: usize,
}

impl Sim<'_> {
    /// Fires node `i` exactly `k` consecutive times, assuming its inputs
    /// are already buffered (the init phase, and the leaf of a pull).
    fn fire_batch(&mut self, i: usize, k: u64) -> Result<(), PlanError> {
        let first = !self.fired[i];
        let node = &self.flat.nodes[i];
        for (s, &c) in node.inputs.iter().enumerate() {
            let need = batch_need(&self.rates[i], first, k, s);
            if self.occ[c] < need {
                return Err(PlanError::Unschedulable(format!(
                    "node {} needs {need} items buffered but only {} arrive",
                    node.name, self.occ[c]
                )));
            }
            self.occ[c] -= batch_pop(&self.rates[i], first, k, s);
        }
        for (s, &c) in node.outputs.iter().enumerate() {
            self.occ[c] += batch_push(&self.rates[i], first, k, s);
            self.max_occ[c] = self.max_occ[c].max(self.occ[c]);
            if self.occ[c] > CAP_LIMIT {
                return Err(PlanError::TooLarge(format!(
                    "channel of {} needs {} items buffered",
                    node.name, self.occ[c]
                )));
            }
        }
        if self.budget[i] < k {
            return Err(PlanError::Unschedulable(format!(
                "node {} is demanded beyond its repetition count",
                node.name
            )));
        }
        self.budget[i] -= k;
        self.fired[i] = true;
        match self.seq.last_mut() {
            Some(last) if last.node == i && (last.times as u64 + k) <= u32::MAX as u64 => {
                last.times += k as u32;
            }
            _ => self.seq.push(Step {
                node: i,
                times: k as u32,
            }),
        }
        Ok(())
    }

    /// Fires node `i` in a batch of `k`, first recursively pulling every
    /// producer whose channel lacks the items the batch needs.
    fn pull(&mut self, i: usize, k: u64) -> Result<(), PlanError> {
        self.depth += 1;
        if self.depth > 100_000 {
            return Err(PlanError::TooLarge("pull recursion too deep".into()));
        }
        for s in 0..self.flat.nodes[i].inputs.len() {
            let c = self.flat.nodes[i].inputs[s];
            // Recompute after each upstream pull; the loop is bounded
            // because every pull strictly raises the channel's occupancy.
            loop {
                let need = batch_need(&self.rates[i], !self.fired[i], k, s);
                if self.occ[c] >= need {
                    break;
                }
                let deficit = need - self.occ[c];
                let (p, ps) = self.prod[c].expect("validated above");
                let t = fires_to_cover(&self.rates[p], self.fired[p], ps, deficit).ok_or_else(
                    || {
                        PlanError::Unschedulable(format!(
                            "node {} cannot supply {}",
                            self.flat.nodes[p].name, self.flat.nodes[i].name
                        ))
                    },
                )?;
                self.pull(p, t)?;
            }
        }
        self.fire_batch(i, k)?;
        self.depth -= 1;
        Ok(())
    }
}

/// Mutable run state, kept apart from the nodes so a firing can borrow
/// both (mirrors the dynamic engine's split).
#[derive(Debug)]
pub(crate) struct PlanState<T> {
    pub(crate) rings: RingSet,
    pub(crate) printed: Vec<f64>,
    pub(crate) ops: T,
    pub(crate) firings: u64,
    /// Reusable staging buffer for batched outputs.
    pub(crate) out_buf: Vec<f64>,
}

/// Executes a compiled [`ExecPlan`] over ring buffers, generic over the
/// [`Tally`] its arithmetic threads through ([`OpCounter`] for the
/// measured experiment, [`streamlin_support::NoCount`] for production
/// execution).
#[derive(Debug)]
pub struct PlanEngine<T: Tally = OpCounter> {
    nodes: Vec<FlatNode>,
    plan: ExecPlan,
    state: PlanState<T>,
    init_done: bool,
    /// Next steady step to execute (the cycle position survives across
    /// calls, so a run can stop a few firings past the requested output
    /// count and resume mid-cycle later).
    cursor: usize,
    /// Firings of `steady[cursor]` already executed.
    partial: u32,
    /// Output count when the cursor last wrapped (progress detection).
    printed_at_wrap: usize,
}

impl<T: Tally + Default> PlanEngine<T> {
    /// Instantiates a flat graph under a plan compiled from it.
    pub fn new(flat: FlatGraph, plan: ExecPlan) -> Self {
        let rings = RingSet::new(&plan.caps, &flat.initial);
        PlanEngine {
            nodes: flat.nodes,
            plan,
            state: PlanState {
                rings,
                printed: Vec::new(),
                ops: T::default(),
                firings: 0,
                out_buf: Vec::new(),
            },
            init_done: false,
            cursor: 0,
            partial: 0,
            printed_at_wrap: 0,
        }
    }
}

impl<T: Tally> PlanEngine<T> {
    /// The compiled plan this engine runs.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Values printed so far (the program's output stream).
    pub fn printed(&self) -> &[f64] {
        &self.state.printed
    }

    /// The tally so far (use [`Tally::counts`] for the numbers; a
    /// `NoCount` engine reports all-zero tallies).
    pub fn ops(&self) -> &T {
        &self.state.ops
    }

    /// Total node firings so far.
    pub fn firings(&self) -> u64 {
        self.state.firings
    }

    /// Guard against programs that never print: how many consecutive
    /// output-less steady cycles to tolerate before giving up. A filter
    /// may legitimately print only every k-th cycle (conditional
    /// `println`s), so this is generous; the dynamic engine's equivalent
    /// backstop is its channel-capacity ceiling.
    const MAX_SILENT_CYCLES: u32 = 1 << 16;

    /// Runs the steady schedule (after the one-time init phase) until the
    /// program has printed at least `n` values, stopping at the exact
    /// firing that crosses the threshold — the cycle position is kept so a
    /// later call resumes mid-cycle.
    ///
    /// # Errors
    ///
    /// Propagates evaluation/rate errors from work functions, and reports
    /// a deadlock if [`Self::MAX_SILENT_CYCLES`] consecutive steady cycles
    /// produce no output (the program can never reach `n`).
    pub fn run_until_outputs(&mut self, n: usize) -> Result<(), RunError> {
        self.run_probed(n, &mut NoProbe)
    }

    /// [`Self::run_until_outputs`] with a telemetry [`Probe`]: every
    /// firing batch becomes a span on lane 1 and local ring occupancy is
    /// sampled after each batch. Monomorphized over [`NoProbe`] this is
    /// exactly the uninstrumented loop — every record site is behind the
    /// compile-time-false `P::ENABLED` guard.
    ///
    /// # Errors
    ///
    /// As [`Self::run_until_outputs`].
    pub fn run_probed<P: Probe>(&mut self, n: usize, probe: &mut P) -> Result<(), RunError> {
        if !self.init_done {
            self.init_done = true;
            for si in 0..self.plan.init.len() {
                let step = self.plan.init[si];
                let t0 = probe.now();
                exec_batch(
                    &mut self.nodes[step.node],
                    step.times,
                    &mut self.state,
                    usize::MAX,
                )?;
                if P::ENABLED {
                    probe.batch(1, step.node, step.times, t0);
                }
            }
            self.printed_at_wrap = self.state.printed.len();
        }
        let mut silent_cycles = 0u32;
        while self.state.printed.len() < n {
            let step = self.plan.steady[self.cursor];
            let remaining = step.times - self.partial;
            let t0 = probe.now();
            let done = exec_batch(&mut self.nodes[step.node], remaining, &mut self.state, n)?;
            if P::ENABLED {
                probe.batch(1, step.node, done, t0);
                let ts = probe.now();
                for &c in &self.nodes[step.node].outputs {
                    probe.ring_depth(c, self.state.rings.len(c), ts);
                    probe.ring_cap(c, self.plan.caps[c]);
                }
            }
            if done < remaining {
                self.partial += done; // the print target interrupted the batch
            } else {
                self.partial = 0;
                self.cursor += 1;
                if self.cursor == self.plan.steady.len() {
                    self.cursor = 0;
                    if self.state.printed.len() == self.printed_at_wrap {
                        silent_cycles += 1;
                        if silent_cycles >= Self::MAX_SILENT_CYCLES {
                            return Err(RunError::Deadlock {
                                detail: format!(
                                    "{silent_cycles} consecutive steady cycles produced no \
                                     program output"
                                ),
                            });
                        }
                    } else {
                        silent_cycles = 0;
                        self.printed_at_wrap = self.state.printed.len();
                    }
                }
            }
        }
        Ok(())
    }
}

/// Fires one node up to `times` consecutive times over the ring buffers.
/// Nodes that can print (interpreted filters) stop as soon as `stop_at`
/// outputs exist — exactly like the data-driven engine's between-firing
/// check — and report how many firings actually ran; all other node kinds
/// always complete the batch.
pub(crate) fn exec_batch<T: Tally>(
    node: &mut FlatNode,
    times: u32,
    state: &mut PlanState<T>,
    stop_at: usize,
) -> Result<u32, RunError> {
    let input = node.inputs.first().copied();
    let output = node.outputs.first().copied();
    match &mut node.kind {
        NodeKind::Interp(interp) => {
            for done in 0..times {
                if state.printed.len() >= stop_at {
                    return Ok(done);
                }
                let (peek, _, _) = interp_phase_rates(interp);
                let window: &[f64] = match input {
                    Some(c) => state.rings.window(c, peek),
                    None => &[],
                };
                let (popped, pushed) =
                    run_work_phase(interp, window, &mut state.printed, &mut state.ops)?;
                state.firings += 1;
                if let Some(c) = input {
                    state.rings.consume(c, popped);
                }
                if let Some(c) = output {
                    state.rings.produce(c, &pushed);
                }
            }
            Ok(times)
        }
        NodeKind::Linear(exec) => {
            state.firings += times as u64;
            let k = times as usize;
            let (peek, pop) = (exec.node().peek(), exec.node().pop());
            state.out_buf.clear();
            match input {
                Some(c) => {
                    let span = (k - 1) * pop + peek;
                    let window = state.rings.window(c, span);
                    exec.fire_batch(window, k, &mut state.out_buf, &mut state.ops);
                    state.rings.consume(c, k * pop);
                }
                None => exec.fire_batch(&[], k, &mut state.out_buf, &mut state.ops),
            }
            if let Some(c) = output {
                state.rings.produce(c, &state.out_buf);
            }
            Ok(times)
        }
        NodeKind::Redund(exec) => {
            state.firings += times as u64;
            let (peek, pop) = (exec.spec().node().peek(), exec.spec().node().pop());
            for _ in 0..times {
                let window: &[f64] = match input {
                    Some(c) => state.rings.window(c, peek),
                    None => &[],
                };
                let out = exec.fire(window, &mut state.ops);
                if let Some(c) = input {
                    state.rings.consume(c, pop);
                }
                if let Some(c) = output {
                    state.rings.produce(c, &out);
                }
            }
            Ok(times)
        }
        NodeKind::Freq(exec) => {
            state.firings += times as u64;
            for _ in 0..times {
                let (peek, pop, _push) = exec.current_rates();
                let window: &[f64] = match input {
                    Some(c) => state.rings.window(c, peek),
                    None => &[],
                };
                let out = exec.fire(window, &mut state.ops);
                if let Some(c) = input {
                    state.rings.consume(c, pop);
                }
                if let Some(c) = output {
                    state.rings.produce(c, &out);
                }
            }
            Ok(times)
        }
        NodeKind::Decimator { pop, push } => {
            state.firings += times as u64;
            let (pop, push) = (*pop, *push);
            let c_in = input.expect("decimators always have an input");
            for _ in 0..times {
                let window = state.rings.window(c_in, pop);
                state.out_buf.clear();
                state.out_buf.extend_from_slice(&window[..push]);
                state.rings.consume(c_in, pop);
                if let Some(c) = output {
                    state.rings.produce(c, &state.out_buf);
                }
            }
            Ok(times)
        }
        NodeKind::Periodic { values, pos } => {
            state.firings += times as u64;
            state.out_buf.clear();
            for _ in 0..times {
                state.out_buf.push(values[*pos]);
                *pos = (*pos + 1) % values.len();
            }
            if let Some(c) = output {
                state.rings.produce(c, &state.out_buf);
            }
            Ok(times)
        }
        NodeKind::PrintSink { pop } => {
            let pop = *pop;
            let c_in = input.expect("sinks always have an input");
            // Every firing prints exactly `pop` items, so the number of
            // firings before the print target interrupts the batch is
            // known up front — run them as one slice append.
            let deficit = stop_at.saturating_sub(state.printed.len());
            if deficit == 0 {
                return Ok(0);
            }
            let run = (times as usize).min(deficit.div_ceil(pop)) as u32;
            let span = run as usize * pop;
            let PlanState { rings, printed, .. } = state;
            printed.extend_from_slice(rings.window(c_in, span));
            state.rings.consume(c_in, span);
            state.firings += run as u64;
            Ok(run)
        }
        NodeKind::DiscardSink { pop } => {
            state.firings += times as u64;
            let c_in = input.expect("sinks always have an input");
            state.rings.consume(c_in, *pop * times as usize);
            Ok(times)
        }
        // The synthesized fission plumbing moves items without arithmetic
        // and deliberately does NOT count as firings: the workers count
        // the original node's firings, so fission leaves the program's
        // firing totals (and tallies) invariant across widths.
        NodeKind::FissSplit(sp) => {
            let c_in = input.expect("splitters always have an input");
            for _ in 0..times {
                if std::mem::take(&mut sp.first) && sp.first_share > 0 {
                    // Distinct first firing: the windows of the unfissed
                    // plan's init firings go to worker 0 alone; their
                    // tail doubles as the first carried priming prefix.
                    let span = sp.first_share + sp.suffix;
                    let window = state.rings.window(c_in, span);
                    sp.scratch.clear();
                    sp.scratch.extend_from_slice(window);
                    state.rings.consume(c_in, sp.first_share);
                    state.rings.produce(node.outputs[0], &sp.scratch);
                    if sp.prefix > 0 {
                        sp.carry.clear();
                        sp.carry
                            .extend_from_slice(&sp.scratch[sp.first_share - sp.prefix..]);
                    }
                    continue;
                }
                let total = sp.steady_pop();
                {
                    let window = state.rings.window(c_in, total + sp.suffix);
                    sp.scratch.clear();
                    sp.scratch.extend_from_slice(window);
                }
                state.rings.consume(c_in, total);
                for (k, &out) in node.outputs.iter().enumerate() {
                    if sp.prefix > 0 {
                        if k == 0 {
                            state.rings.produce(out, &sp.carry);
                        } else {
                            let start = k * sp.share - sp.prefix;
                            state.rings.produce(out, &sp.scratch[start..k * sp.share]);
                        }
                    }
                    let start = k * sp.share;
                    state
                        .rings
                        .produce(out, &sp.scratch[start..start + sp.share + sp.suffix]);
                }
                if sp.prefix > 0 {
                    sp.carry.clear();
                    let tail = total - sp.prefix;
                    sp.carry.extend_from_slice(&sp.scratch[tail..total]);
                }
            }
            Ok(times)
        }
        NodeKind::FissWorker(fw) => {
            let c_in = input.expect("fission workers always have an input");
            for _ in 0..times {
                // The distinct first firing replays the unfissed init
                // batch (no priming prefix — the kernel's own first-firing
                // path runs naturally, and its internal state carries
                // across the contiguous batch); steady rounds prime from
                // the duplicated prefix when the kernel needs it.
                let first = std::mem::take(&mut fw.first) && fw.first_fires > 0;
                let (chunk, prefix, fires) = if first {
                    (fw.first_chunk_len(), 0, fw.first_fires)
                } else {
                    (fw.chunk_len(), fw.prefix, fw.batch)
                };
                let PlanState {
                    rings,
                    printed,
                    ops,
                    firings,
                    out_buf,
                } = state;
                let window = rings.window(c_in, chunk);
                out_buf.clear();
                match &mut fw.kernel {
                    FissKernel::Linear(exec) => exec.fire_batch(window, fires, out_buf, ops),
                    FissKernel::Freq(exec) => {
                        if prefix > 0 {
                            // Recompute the previous firing's edge
                            // partials from the duplicated prefix window —
                            // uncounted, like the unfissed node never
                            // performing this work at all.
                            let _ = exec.fire(&window[..prefix], &mut streamlin_support::NoCount);
                        }
                        for f in 0..fires {
                            let base = prefix + f * fw.pop;
                            let peek = exec.current_rates().0;
                            let out = exec.fire(&window[base..base + peek], ops);
                            out_buf.extend_from_slice(&out);
                        }
                    }
                    FissKernel::Interp(interp) => {
                        for f in 0..fires {
                            let base = f * fw.pop;
                            let (_, pushed) = run_work_phase(
                                interp,
                                &window[base..base + fw.peek],
                                printed,
                                ops,
                            )?;
                            out_buf.extend_from_slice(&pushed);
                        }
                    }
                }
                *firings += fires as u64;
                rings.consume(c_in, chunk);
                if let Some(c) = output {
                    rings.produce(c, out_buf);
                }
            }
            Ok(times)
        }
        NodeKind::FissJoin(fj) => {
            let c_out = output.expect("joiners always have an output");
            for _ in 0..times {
                if std::mem::take(&mut fj.first) && fj.first_take > 0 {
                    state.out_buf.clear();
                    {
                        let window = state.rings.window(node.inputs[0], fj.first_take);
                        state.out_buf.extend_from_slice(window);
                    }
                    state.rings.consume(node.inputs[0], fj.first_take);
                    state.rings.produce(c_out, &state.out_buf);
                    continue;
                }
                for &cin in &node.inputs {
                    state.out_buf.clear();
                    {
                        let window = state.rings.window(cin, fj.weight);
                        state.out_buf.extend_from_slice(window);
                    }
                    state.rings.consume(cin, fj.weight);
                    state.rings.produce(c_out, &state.out_buf);
                }
            }
            Ok(times)
        }
        NodeKind::Duplicate => {
            state.firings += times as u64;
            let c_in = input.expect("splitters always have an input");
            for _ in 0..times {
                let v = state.rings.pop_one(c_in);
                for &o in &node.outputs {
                    state.rings.push_one(o, v);
                }
            }
            Ok(times)
        }
        NodeKind::SplitRR(w) => {
            state.firings += times as u64;
            let c_in = input.expect("splitters always have an input");
            for _ in 0..times {
                for (k, &count) in w.iter().enumerate() {
                    for _ in 0..count {
                        let v = state.rings.pop_one(c_in);
                        state.rings.push_one(node.outputs[k], v);
                    }
                }
            }
            Ok(times)
        }
        NodeKind::JoinRR(w) => {
            state.firings += times as u64;
            let c_out = output.expect("joiners always have an output");
            for _ in 0..times {
                for (k, &count) in w.iter().enumerate() {
                    for _ in 0..count {
                        let v = state.rings.pop_one(node.inputs[k]);
                        state.rings.push_one(c_out, v);
                    }
                }
            }
            Ok(times)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::flatten;
    use crate::linear_exec::MatMulStrategy;
    use streamlin_core::opt::OptStream;

    fn flat_for(src: &str) -> FlatGraph {
        let p = streamlin_lang::parse(src).unwrap();
        let g = streamlin_graph::elaborate(&p).unwrap();
        flatten(&OptStream::from_graph(&g), MatMulStrategy::Unrolled).unwrap()
    }

    const RAMP: &str = "void->void pipeline Main { add S(); add G(); add K(); }
         void->float filter S { float x; work push 1 { push(x++); } }
         float->float filter G { work pop 1 push 1 { push(3 * pop()); } }
         float->void filter K { work pop 1 { println(pop()); } }";

    #[test]
    fn simple_pipeline_plans_one_firing_each() {
        let plan = compile(&flat_for(RAMP)).unwrap();
        assert!(plan.init.is_empty(), "{plan:?}");
        assert_eq!(plan.steady_firings(), 3);
        assert_eq!(plan.caps, vec![1, 1]);
    }

    #[test]
    fn plan_engine_matches_dynamic_output() {
        let flat = flat_for(RAMP);
        let plan = compile(&flat).unwrap();
        let mut e = PlanEngine::<OpCounter>::new(flat, plan);
        e.run_until_outputs(4).unwrap();
        assert_eq!(&e.printed()[..4], &[0.0, 3.0, 6.0, 9.0]);
        assert!(e.ops().mults() >= 4);
    }

    #[test]
    fn peek_prologue_gets_init_firings() {
        // D peeks 3, pops 1: the source must prime 2 items of slack.
        let flat = flat_for(
            "void->void pipeline Main { add S(); add D(); add K(); }
             void->float filter S { float x; work push 1 { push(x++); } }
             float->float filter D {
                 work peek 3 pop 1 push 1 { push(peek(2) - peek(0)); pop(); }
             }
             float->void filter K { work pop 1 { println(pop()); } }",
        );
        let plan = compile(&flat).unwrap();
        assert_eq!(plan.init_firings(), 2, "{plan:?}");
        // Channel S->D holds the 2-item prologue plus the in-cycle item.
        assert_eq!(plan.caps[0], 3);
        let mut e = PlanEngine::<OpCounter>::new(flat, plan);
        e.run_until_outputs(3).unwrap();
        assert_eq!(&e.printed()[..3], &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn init_work_phase_is_scheduled_in_init() {
        let flat = flat_for(
            "void->void pipeline Main { add S(); add P(); add K(); }
             void->float filter S { float x; work push 1 { push(x++); } }
             float->float filter P {
                 initWork pop 2 push 1 { push(pop() + pop()); }
                 work pop 1 push 1 { push(pop()); }
             }
             float->void filter K { work pop 1 { println(pop()); } }",
        );
        let plan = compile(&flat).unwrap();
        assert!(plan.init_firings() >= 1, "{plan:?}");
        let mut e = PlanEngine::<OpCounter>::new(flat, plan);
        e.run_until_outputs(3).unwrap();
        // Same semantics as the dynamic engine's init_work test.
        assert_eq!(&e.printed()[..3], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn multirate_pipeline_balances_firings() {
        let flat = flat_for(
            "void->void pipeline Main { add S(); add E(); add C(); add K(); }
             void->float filter S { work push 1 { push(1.0); } }
             float->float filter E { work pop 1 push 3 { push(pop()); push(0); push(0); } }
             float->float filter C { work pop 2 push 1 { push(pop()); pop(); } }
             float->void filter K { work pop 1 { println(pop()); } }",
        );
        let plan = compile(&flat).unwrap();
        // E pushes 3, C pops 2: q = [2, 2, 3, 3].
        assert_eq!(plan.steady_firings(), 10, "{plan:?}");
        let mut e = PlanEngine::<OpCounter>::new(flat, plan);
        e.run_until_outputs(6).unwrap();
        assert_eq!(e.printed()[0], 1.0);
    }

    #[test]
    fn splitjoin_round_trip_matches_dynamic() {
        let flat = flat_for(
            "void->void pipeline Main { add S(); add SJ(); add K(); }
             void->float filter S { float x; work push 1 { push(x++); } }
             float->float splitjoin SJ {
                 split duplicate;
                 add G(10.0); add G(100.0);
                 join roundrobin;
             }
             float->float filter G(float k) { work pop 1 push 1 { push(k * pop()); } }
             float->void filter K { work pop 2 { println(pop()); println(pop()); } }",
        );
        let plan = compile(&flat).unwrap();
        let mut e = PlanEngine::<OpCounter>::new(flat, plan);
        e.run_until_outputs(4).unwrap();
        assert_eq!(&e.printed()[..4], &[0.0, 0.0, 10.0, 100.0]);
    }

    #[test]
    fn feedback_loops_are_rejected_as_cyclic() {
        let flat = flat_for(
            "void->void pipeline Main { add S(); add FB(); add K(); }
             void->float filter S { float x; work push 1 { push(x++); } }
             float->void filter K { work pop 1 { println(pop()); } }
             float->float feedbackloop FB {
                 join roundrobin(1, 1);
                 body Adder();
                 loop Id();
                 split duplicate;
                 enqueue 0;
             }
             float->float filter Adder { work pop 2 push 1 { push(pop() + pop()); } }
             float->float filter Id { work pop 1 push 1 { push(pop()); } }",
        );
        assert_eq!(compile(&flat).unwrap_err(), PlanError::Cyclic);
    }

    #[test]
    fn conditionally_printing_sinks_survive_silent_cycles() {
        // The sink prints only every third firing, so two out of three
        // steady cycles produce no output — that must not be mistaken for
        // a deadlock (the dynamic engine runs this program fine).
        let flat = flat_for(
            "void->void pipeline Main { add S(); add K(); }
             void->float filter S { float x; work push 1 { push(x++); } }
             float->void filter K {
                 int c;
                 work pop 1 {
                     c++;
                     if (c % 3 == 0) println(pop()); else pop();
                 }
             }",
        );
        let plan = compile(&flat).unwrap();
        let mut e = PlanEngine::<OpCounter>::new(flat, plan);
        e.run_until_outputs(3).unwrap();
        assert_eq!(&e.printed()[..3], &[2.0, 5.0, 8.0]);
    }

    #[test]
    fn rate_violation_is_still_reported() {
        let flat = flat_for(
            "void->void pipeline Main { add S(); add K(); }
             void->float filter S { float x; work push 2 { push(x); if (x > 0.5) push(x); x = x + 1; } }
             float->void filter K { work pop 1 { println(pop()); } }",
        );
        let plan = compile(&flat).unwrap();
        let mut e = PlanEngine::<OpCounter>::new(flat, plan);
        let err = e.run_until_outputs(1).unwrap_err();
        assert!(matches!(err, RunError::RateViolation(_)), "{err}");
    }
}
